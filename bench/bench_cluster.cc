// Cluster scaling and chaos benchmark: bench_net's load generator pointed
// at a self-contained cluster — N in-process backend servers behind an
// in-process Router — swept over cluster sizes, with an optional mid-run
// backend kill/restart. Writes BENCH_cluster.json with per-size throughput
// and the scaling efficiency vs a single backend.
//
// Every run double-checks the cluster's core contracts and exits nonzero
// on a violation, so this is also the CI cluster smoke gate:
//   * exactly-once — every score request the router acked as applied
//     resolves exactly once (a result or a typed failure), even across a
//     backend SIGKILL and rejoin;
//   * bitwise parity — every successful score equals the single-process
//     engine's score at the same (session, arrival-prefix) bit for bit,
//     no matter which backend served it or how often the session moved;
//   * with --kill_backend=1, the router must actually observe the
//     failover (backend_failovers >= 1) and recover the rejoined backend.
//
// Flags: --cluster_sizes=1,2,4  cluster sizes to sweep (default "1,2,4")
//        --sessions=N           replayed sessions per run (default 48)
//        --score_every=N        mid-session score cadence (default 8)
//        --connections=N        client connections/threads (default 4)
//        --batch=N              events per INGEST_BATCH (default 48)
//        --kill_backend=0|1     kill+restart a backend mid-run at the
//                               largest swept size (default 0)
//        --json=PATH            output (default BENCH_cluster.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/ring.h"
#include "cluster/router.h"
#include "core/model.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/stopwatch.h"

namespace cluster = tpgnn::cluster;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace net = tpgnn::net;
namespace serve = tpgnn::serve;

namespace {

// Every engine in the bench — backends, restarts, and the single-process
// reference — serves this model, the precondition for bitwise parity.
constexpr uint64_t kModelSeed = 5;

core::TpGnnConfig BenchConfig() {
  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;
  return config;
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

std::vector<int> ParseSizes(const std::string& csv) {
  std::vector<int> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      sizes.push_back(std::stoi(item));
    }
  }
  return sizes;
}

// One in-process backend: engine + server + poll thread, restartable on a
// fixed port (the "supervisor brings the process back" half of chaos).
class Backend {
 public:
  explicit Backend(int port) : engine_(BenchConfig(), kModelSeed, {}) {
    net::ServerOptions options;
    options.port = port;
    for (int attempt = 0; attempt < 50 && server_ == nullptr; ++attempt) {
      auto server = std::make_unique<net::Server>(&engine_, options);
      if (server->Start().ok()) {
        server_ = std::move(server);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (server_ == nullptr) {
      std::fprintf(stderr, "backend start failed (port %d)\n", port);
      std::exit(1);
    }
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~Backend() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  // SIGKILL stand-in: hard-stop with no GOODBYE and no drain.
  void Kill() { server_->Abort(); }

  int port() const { return server_->port(); }

 private:
  serve::InferenceEngine engine_;
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

// (session_id, edges_scored) -> logit; scoring is a pure function of the
// session's arrival prefix, so this table is the parity oracle for every
// cluster size and every chaos run.
using ScoreTable = std::map<std::pair<uint64_t, int64_t>, float>;

// The engine scores asynchronously (micro-batching), so a replayed score
// may legitimately see MORE edges than had arrived when it was enqueued.
// The oracle therefore scores after EVERY Begin/Edge prefix — whatever
// prefix the cluster's pump lands on, the table has its bits.
ScoreTable BuildReference(const std::vector<serve::Event>& events) {
  serve::InferenceEngine engine(BenchConfig(), kModelSeed, {});
  ScoreTable table;
  std::vector<serve::ScoreResult> results;
  std::map<uint64_t, int64_t> edges_seen;

  auto score_now = [&](uint64_t session_id) {
    serve::Event score;
    score.kind = serve::Event::Kind::kScore;
    score.session_id = session_id;
    results.clear();
    if (tpgnn::Status s = engine.Ingest(score); !s.ok()) {
      std::fprintf(stderr, "reference score failed: %s\n",
                   s.ToString().c_str());
      std::exit(1);
    }
    engine.Flush(&results);
    if (results.size() != 1 || !results[0].status.ok()) {
      std::fprintf(stderr, "reference score did not resolve cleanly\n");
      std::exit(1);
    }
    table[{session_id, edges_seen[session_id]}] = results[0].logit;
  };

  for (const serve::Event& event : events) {
    if (event.kind != serve::Event::Kind::kBegin &&
        event.kind != serve::Event::Kind::kEdge) {
      continue;  // Scores are replaced by the every-prefix sweep; no Ends,
                 // so late async scores still find a live session here.
    }
    if (tpgnn::Status s = engine.Ingest(event); !s.ok()) {
      std::fprintf(stderr, "reference ingest failed: %s\n",
                   s.ToString().c_str());
      std::exit(1);
    }
    if (event.kind == serve::Event::Kind::kEdge) {
      ++edges_seen[event.session_id];
    }
    score_now(event.session_id);
  }
  return table;
}

struct SharedStats {
  std::atomic<uint64_t> events_sent{0};
  std::atomic<uint64_t> scores_sent{0};  // Scores in ACKED prefixes.
  std::atomic<uint64_t> scores_ok{0};
  std::atomic<uint64_t> scores_failed{0};
  std::atomic<uint64_t> overloads{0};
  std::atomic<uint64_t> errors{0};
  std::mutex mu;
  ScoreTable scores;  // Guarded by mu.
};

size_t CountScores(const std::vector<serve::Event>& events, size_t limit) {
  size_t scores = 0;
  for (size_t i = 0; i < limit && i < events.size(); ++i) {
    if (events[i].kind == serve::Event::Kind::kScore) {
      ++scores;
    }
  }
  return scores;
}

// One connection's traffic through the router: batched frames, overload
// retries, applied-prefix score accounting (bench_net's contract — only a
// score the server acked as applied owes us a result).
void RunConnection(const net::ClientOptions& options,
                   const std::vector<serve::Event>& events, size_t batch_size,
                   SharedStats* stats) {
  net::Client client(options);
  if (tpgnn::Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    stats->errors.fetch_add(1);
    return;
  }

  auto collect = [&]() {
    for (const serve::ScoreResult& result : client.TakeResults()) {
      if (result.status.ok()) {
        stats->scores_ok.fetch_add(1);
        std::lock_guard<std::mutex> lock(stats->mu);
        stats->scores[{result.session_id, result.edges_scored}] = result.logit;
      } else {
        stats->scores_failed.fetch_add(1);
      }
    }
  };

  size_t pos = 0;
  int stalls = 0;
  while (pos < events.size()) {
    const size_t take = std::min(batch_size, events.size() - pos);
    const std::vector<serve::Event> slice(
        events.begin() + static_cast<ptrdiff_t>(pos),
        events.begin() + static_cast<ptrdiff_t>(pos + take));
    uint64_t applied = 0;
    tpgnn::Status st = client.IngestBatch(slice, &applied);
    stats->events_sent.fetch_add(applied);
    stats->scores_sent.fetch_add(
        CountScores(slice, static_cast<size_t>(applied)));
    pos += static_cast<size_t>(applied);
    if (st.ok()) {
      collect();
      stalls = 0;
      continue;
    }
    if (st.code() == tpgnn::StatusCode::kOverloaded) {
      stats->overloads.fetch_add(1);
      if (client.inflight_scores() > 0) {
        if (tpgnn::Status d = client.DrainResults(); !d.ok()) {
          std::fprintf(stderr, "drain failed: %s\n", d.ToString().c_str());
          stats->errors.fetch_add(1);
          return;
        }
      }
      collect();
      if (applied == 0) {
        // Ring momentarily empty (mid-failover): back off instead of
        // hammering the router's shed path.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      stalls = applied > 0 ? 0 : stalls + 1;
      if (stalls > 600) {
        std::fprintf(stderr, "stuck in overload, giving up\n");
        stats->errors.fetch_add(1);
        return;
      }
      continue;
    }
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    stats->errors.fetch_add(1);
    return;
  }
  if (tpgnn::Status s = client.DrainResults(); !s.ok()) {
    std::fprintf(stderr, "final drain failed: %s\n", s.ToString().c_str());
    stats->errors.fetch_add(1);
  }
  collect();
}

struct RunResult {
  int backends = 0;
  double wall_seconds = 0.0;
  uint64_t events = 0;
  uint64_t scores_sent = 0;
  uint64_t scores_ok = 0;
  uint64_t scores_failed = 0;
  uint64_t overloads = 0;
  uint64_t errors = 0;
  size_t parity_mismatches = 0;
  bool killed = false;
  cluster::ClusterCounters counters;
};

// Runs the full event stream through an N-backend cluster; with `kill`,
// hard-kills the busiest backend mid-run and restarts it on the same port.
RunResult RunCluster(int num_backends, bool kill,
                     const std::vector<std::vector<serve::Event>>& per_conn,
                     size_t batch, const ScoreTable& reference) {
  RunResult out;
  out.backends = num_backends;
  out.killed = kill;

  std::vector<std::unique_ptr<Backend>> backends;
  std::vector<cluster::BackendConfig> configs;
  for (int i = 0; i < num_backends; ++i) {
    backends.push_back(std::make_unique<Backend>(/*port=*/0));
    configs.push_back({"b" + std::to_string(i), "127.0.0.1",
                       backends.back()->port()});
  }

  cluster::RouterOptions options;
  // Fast failure detection so the chaos run's recovery fits the bench.
  options.registry.probe_interval_seconds = 0.2;
  options.registry.probe_timeout_seconds = 0.5;
  options.registry.reconnect_backoff_seconds = 0.1;
  options.registry.reconnect_backoff_max_seconds = 0.5;
  cluster::Router router(configs, options);
  if (tpgnn::Status s = router.Start(); !s.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::thread router_thread([&router] { router.Run(); });
  while (router.connected_backends() < static_cast<size_t>(num_backends)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  net::ClientOptions client_options;
  client_options.port = router.port();

  uint64_t total_events = 0;
  for (const auto& events : per_conn) {
    total_events += events.size();
  }

  SharedStats stats;
  std::atomic<bool> workers_done{false};
  tpgnn::Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(per_conn.size());
  for (const auto& events : per_conn) {
    workers.emplace_back(RunConnection, client_options, std::cref(events),
                         batch, &stats);
  }

  std::thread killer;
  if (kill) {
    killer = std::thread([&] {
      // Wait until the stream is mid-flight, then kill the backend that
      // owns the most sessions and bring it back on the same port.
      while (stats.events_sent.load() < total_events / 2 &&
             stats.errors.load() == 0 && !workers_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (stats.errors.load() != 0 || workers_done.load()) {
        return;  // The run is already over (or broken); nothing to kill.
      }
      cluster::HashRing ring(options.vnodes_per_backend);
      for (const auto& config : configs) {
        ring.AddBackend(config.name);
      }
      std::vector<size_t> owned(static_cast<size_t>(num_backends), 0);
      for (const auto& events : per_conn) {
        for (const serve::Event& event : events) {
          if (event.kind == serve::Event::Kind::kBegin) {
            const std::string* owner = ring.OwnerOf(event.session_id);
            for (int i = 0; i < num_backends; ++i) {
              if (*owner == configs[static_cast<size_t>(i)].name) {
                ++owned[static_cast<size_t>(i)];
              }
            }
          }
        }
      }
      const size_t victim = static_cast<size_t>(std::distance(
          owned.begin(), std::max_element(owned.begin(), owned.end())));
      const int port = backends[victim]->port();
      std::printf("chaos: killing backend %s (%zu sessions)\n",
                  configs[victim].name.c_str(), owned[victim]);
      backends[victim]->Kill();
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      backends[victim] = std::make_unique<Backend>(port);
      std::printf("chaos: backend restarted on port %d\n", port);
    });
  }

  for (std::thread& worker : workers) {
    worker.join();
  }
  workers_done.store(true);
  if (killer.joinable()) {
    killer.join();
  }
  out.wall_seconds = clock.ElapsedSeconds();

  router.RequestShutdown();
  router_thread.join();
  out.counters = router.counters();  // Safe: poll thread has exited.

  out.events = stats.events_sent.load();
  out.scores_sent = stats.scores_sent.load();
  out.scores_ok = stats.scores_ok.load();
  out.scores_failed = stats.scores_failed.load();
  out.overloads = stats.overloads.load();
  out.errors = stats.errors.load();

  // Bitwise parity: every successful score must equal the single-process
  // reference at its (session, prefix).
  for (const auto& [key, logit] : stats.scores) {
    const auto it = reference.find(key);
    if (it == reference.end() || it->second != logit) {
      ++out.parity_mismatches;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int> sizes =
      ParseSizes(FlagValue(argc, argv, "cluster_sizes", "1,2,4"));
  const int64_t sessions = FlagInt(argc, argv, "sessions", 48);
  const int64_t score_every = FlagInt(argc, argv, "score_every", 8);
  const int64_t connections = FlagInt(argc, argv, "connections", 4);
  const int64_t batch = FlagInt(argc, argv, "batch", 48);
  const bool kill_backend = FlagInt(argc, argv, "kill_backend", 0) != 0;
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_cluster.json");
  if (sizes.empty()) {
    std::fprintf(stderr, "usage: bench_cluster --cluster_sizes=1,2,4 ...\n");
    return 2;
  }

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/17);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);

  const ScoreTable reference = BuildReference(replayer.events());

  // Session affinity: all events of a session ride one connection.
  std::vector<std::vector<serve::Event>> per_conn(
      static_cast<size_t>(connections));
  for (const serve::Event& event : replayer.events()) {
    per_conn[event.session_id % static_cast<uint64_t>(connections)].push_back(
        event);
  }
  std::printf("cluster sweep over %zu sizes: %zu sessions, %zu events, "
              "%zu score requests, %lld connections (%u cores)\n",
              sizes.size(), replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests(),
              static_cast<long long>(connections),
              std::thread::hardware_concurrency());

  std::vector<RunResult> runs;
  for (size_t i = 0; i < sizes.size(); ++i) {
    const bool kill = kill_backend && i + 1 == sizes.size() && sizes[i] > 1;
    runs.push_back(RunCluster(sizes[i], kill, per_conn,
                              static_cast<size_t>(batch), reference));
    const RunResult& r = runs.back();
    std::printf("backends=%d%s  %8.0f events/s  scores %llu ok / %llu "
                "failed  overloads %llu  failovers %llu\n",
                r.backends, r.killed ? " (chaos)" : "",
                r.events / r.wall_seconds,
                static_cast<unsigned long long>(r.scores_ok),
                static_cast<unsigned long long>(r.scores_failed),
                static_cast<unsigned long long>(r.overloads),
                static_cast<unsigned long long>(r.counters.backend_failovers));
  }

  // A list of entries keyed by bench+variant, the shape
  // bench/check_bench.py gates (like BENCH_alloc.json's variants).
  const double base_throughput = runs[0].events / runs[0].wall_seconds;
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const double throughput = r.events / r.wall_seconds;
    if (i > 0) out << ",\n ";
    out << "{\"bench\": \"cluster\", \"variant\": \"backends=" << r.backends
        << (r.killed ? "_chaos" : "") << "\""
        << ", \"backends\": " << r.backends
        << ", \"chaos\": " << (r.killed ? "true" : "false")
        << ", \"cores\": " << std::thread::hardware_concurrency()
        << ", \"sessions\": " << replayer.num_sessions()
        << ", \"connections\": " << connections
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"events_per_second\": " << throughput
        << ", \"speedup_vs_1\": " << throughput / base_throughput
        << ", \"scaling_efficiency\": "
        << throughput / (base_throughput * r.backends)
        << ", \"scores_ok\": " << r.scores_ok
        << ", \"scores_failed\": " << r.scores_failed
        << ", \"overloads\": " << r.overloads
        << ", \"parity_mismatches\": " << r.parity_mismatches
        << ", \"backend_failovers\": " << r.counters.backend_failovers
        << ", \"sessions_replayed\": " << r.counters.sessions_replayed
        << ", \"sessions_migrated\": " << r.counters.sessions_migrated
        << ", \"scores_reissued\": " << r.counters.scores_reissued
        << ", \"scores_failed_over\": " << r.counters.scores_failed_over
        << "}";
  }
  out << "]";
  std::ofstream file(json_path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  file << out.str() << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  // --- Smoke gates: any violation fails the binary -----------------------
  int failures = 0;
  for (const RunResult& r : runs) {
    if (r.errors > 0) {
      std::fprintf(stderr, "FAIL backends=%d: %llu connection errors\n",
                   r.backends, static_cast<unsigned long long>(r.errors));
      ++failures;
    }
    if (r.scores_ok == 0) {
      std::fprintf(stderr, "FAIL backends=%d: no session was scored\n",
                   r.backends);
      ++failures;
    }
    // Exactly-once: every acked score resolved, once.
    if (r.scores_ok + r.scores_failed != r.scores_sent) {
      std::fprintf(stderr,
                   "FAIL backends=%d: exactly-once violated (%llu acked, "
                   "%llu resolved)\n",
                   r.backends,
                   static_cast<unsigned long long>(r.scores_sent),
                   static_cast<unsigned long long>(r.scores_ok +
                                                   r.scores_failed));
      ++failures;
    }
    if (r.parity_mismatches > 0) {
      std::fprintf(stderr, "FAIL backends=%d: %zu parity mismatches\n",
                   r.backends, r.parity_mismatches);
      ++failures;
    }
    if (!r.killed && r.scores_failed > 0) {
      std::fprintf(stderr,
                   "FAIL backends=%d: %llu scores failed without chaos\n",
                   r.backends,
                   static_cast<unsigned long long>(r.scores_failed));
      ++failures;
    }
    if (r.killed && r.counters.backend_failovers == 0) {
      std::fprintf(stderr,
                   "FAIL backends=%d: kill ran but no failover observed\n",
                   r.backends);
      ++failures;
    }
  }
  if (failures > 0) {
    return 1;
  }
  std::printf("cluster smoke: exactly-once and bitwise parity held over "
              "%zu runs%s\n",
              runs.size(), kill_backend ? " (with backend kill/restart)" : "");
  return 0;
}
