// Micro-benchmarks for the complexity analysis of Sec. IV-E:
//   temporal propagation SUM:  O(m k)
//   temporal propagation GRU:  O(m k^2)
//   global temporal extractor: O(m d^2)
// Measured with google-benchmark; the reported time should scale linearly
// in m for all three, linearly in k for SUM, and quadratically in k (resp.
// d) for the GRU-based components.

#include <benchmark/benchmark.h>

#include "core/global_extractor.h"
#include "core/temporal_propagation.h"
#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace core = tpgnn::core;
namespace graph = tpgnn::graph;
using tpgnn::Rng;

namespace {

graph::TemporalGraph MakeChainGraph(int64_t nodes, int64_t edges,
                                    uint64_t seed) {
  Rng rng(seed);
  graph::TemporalGraph g(nodes, 3);
  for (int64_t v = 0; v < nodes; ++v) {
    g.SetNodeFeature(v, {rng.UniformFloat(-1, 1), rng.UniformFloat(-1, 1),
                         rng.UniformFloat(-1, 1)});
  }
  for (int64_t e = 0; e < edges; ++e) {
    g.AddEdge(rng.UniformInt(0, nodes - 1), rng.UniformInt(0, nodes - 1),
              static_cast<double>(e + 1));
  }
  return g;
}

core::TpGnnConfig PropConfig(core::Updater updater, int64_t k) {
  core::TpGnnConfig config;
  config.updater = updater;
  config.embed_dim = k;
  return config;
}

void BM_TemporalPropagationSum_Edges(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(1);
  core::TemporalPropagation prop(PropConfig(core::Updater::kSum, 32), rng);
  graph::TemporalGraph g = MakeChainGraph(32, m, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.Forward(g, order));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_TemporalPropagationSum_Edges)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity(benchmark::oN);

void BM_TemporalPropagationGru_Edges(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(1);
  core::TemporalPropagation prop(PropConfig(core::Updater::kGru, 32), rng);
  graph::TemporalGraph g = MakeChainGraph(32, m, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.Forward(g, order));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_TemporalPropagationGru_Edges)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity(benchmark::oN);

void BM_TemporalPropagationSum_Hidden(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(1);
  core::TemporalPropagation prop(PropConfig(core::Updater::kSum, k), rng);
  graph::TemporalGraph g = MakeChainGraph(32, 96, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.Forward(g, order));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_TemporalPropagationSum_Hidden)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oN);

void BM_TemporalPropagationGru_Hidden(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(1);
  core::TemporalPropagation prop(PropConfig(core::Updater::kGru, k), rng);
  graph::TemporalGraph g = MakeChainGraph(32, 96, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.Forward(g, order));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_TemporalPropagationGru_Hidden)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oNSquared);

void BM_GlobalExtractor_Edges(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(1);
  core::GlobalTemporalExtractor extractor(32, 32, rng);
  graph::TemporalGraph g = MakeChainGraph(32, m, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::Tensor h =
      tpgnn::tensor::Tensor::Uniform({32, 32}, -1, 1, rng);
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Forward(h, order));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_GlobalExtractor_Edges)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity(benchmark::oN);

void BM_GlobalExtractor_Hidden(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(1);
  core::GlobalTemporalExtractor extractor(32, d, rng);
  graph::TemporalGraph g = MakeChainGraph(32, 96, 2);
  const auto order = g.ChronologicalEdges();
  tpgnn::tensor::Tensor h =
      tpgnn::tensor::Tensor::Uniform({32, 32}, -1, 1, rng);
  tpgnn::tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Forward(h, order));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_GlobalExtractor_Hidden)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
