#ifndef TPGNN_BENCH_ABLATION_COMMON_H_
#define TPGNN_BENCH_ABLATION_COMMON_H_

#include <vector>

#include "bench_util.h"

// Shared driver for the ablation studies of Figs. 3 and 4: the variants
// {rand, w/o tem, temp, time2Vec, full} of Sec. V-F evaluated on the four
// ablation datasets (Forum-java, HDFS, Gowalla, Brightkite).

namespace tpgnn::bench {

inline void RunAblation(core::Updater updater) {
  const BenchSettings settings = LoadSettings();
  PrintHeader(updater == core::Updater::kSum
                  ? "Fig. 3: ablation study of TP-GNN-SUM"
                  : "Fig. 4: ablation study of TP-GNN-GRU",
              settings);
  const eval::ExperimentOptions options = MakeExperimentOptions(settings);

  const std::vector<core::Variant> variants = {
      core::Variant::kRand, core::Variant::kWithoutTem, core::Variant::kTemp,
      core::Variant::kTime2Vec, core::Variant::kFull};

  const std::vector<data::DatasetSpec> specs = {
      data::ForumJavaSpec(), data::HdfsSpec(), data::GowallaSpec(),
      data::BrightkiteSpec()};
  for (const data::DatasetSpec& spec : specs) {
    data::TrainTestSplit split = PrepareDataset(spec, settings);
    std::vector<eval::ExperimentResult> results;
    for (core::Variant variant : variants) {
      core::TpGnnConfig config = DefaultTpGnnConfig(updater, variant);
      results.push_back(eval::RunExperiment(TpGnnFactory(config), split.train,
                                            split.test, options));
    }
    eval::PrintResultsTable(spec.name, results);
  }
}

}  // namespace tpgnn::bench

#endif  // TPGNN_BENCH_ABLATION_COMMON_H_
