#ifndef TPGNN_BENCH_BENCH_UTIL_H_
#define TPGNN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "core/model.h"
#include "data/datasets.h"
#include "eval/experiment.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

// Shared plumbing for the experiment drivers in bench/. Every driver honours
// the same environment variables so the suite can be scaled from a quick CI
// pass up to paper-protocol runs:
//   TPGNN_GRAPHS       graphs generated per dataset (default 120)
//   TPGNN_SEEDS        independent training runs per model (default 2; paper: 5)
//   TPGNN_EPOCHS       training epochs (default 5; paper: 10)
//   TPGNN_NUM_THREADS  worker threads for (model, dataset, seed) cells
//                      (default: hardware concurrency; 1 = serial seed path)
//   TPGNN_BENCH_JSON   path of the machine-readable timing record
//                      (default BENCH_parallel.json in the working dir)

namespace tpgnn::bench {

struct BenchSettings {
  int64_t graphs_per_dataset = 240;
  int64_t seeds = 2;
  int64_t epochs = 10;
  float learning_rate = 3e-3f;
};

inline BenchSettings LoadSettings() {
  BenchSettings s;
  s.graphs_per_dataset = GetEnvInt("TPGNN_GRAPHS", 240);
  s.seeds = GetEnvInt("TPGNN_SEEDS", 2);
  s.epochs = GetEnvInt("TPGNN_EPOCHS", 10);
  // Learning rate in micro-units, e.g. TPGNN_LR_MICRO=1000 -> 1e-3.
  s.learning_rate =
      static_cast<float>(GetEnvInt("TPGNN_LR_MICRO", 3000)) * 1e-6f;
  return s;
}

// Generated, filtered (>= 3 interactions, Sec. V-A) and chronologically
// split (30/70, Sec. V-D) dataset.
inline data::TrainTestSplit PrepareDataset(const data::DatasetSpec& spec,
                                           const BenchSettings& settings,
                                           uint64_t seed = 7) {
  graph::GraphDataset dataset =
      data::MakeDataset(spec, settings.graphs_per_dataset, seed);
  dataset = data::FilterMinEdges(dataset, 3);
  return data::SplitDataset(dataset, 0.3);
}

// Paper defaults (Sec. V-D): d = 32, d_t = 6.
inline core::TpGnnConfig DefaultTpGnnConfig(core::Updater updater,
                                            core::Variant variant =
                                                core::Variant::kFull) {
  core::TpGnnConfig config;
  config.updater = updater;
  config.variant = variant;
  return config;
}

inline eval::ClassifierFactory TpGnnFactory(const core::TpGnnConfig& config) {
  return [config](uint64_t seed) {
    return std::make_unique<core::TpGnnModel>(config, seed);
  };
}

// Discrete baselines use 5 snapshots on the log datasets and 20 on the
// trajectory datasets (Sec. V-D).
inline baselines::BaselineSuiteOptions SuiteOptionsFor(
    const data::DatasetSpec& spec) {
  baselines::BaselineSuiteOptions options;
  options.num_snapshots =
      spec.flavor == data::DatasetFlavor::kLogSession ? 5 : 20;
  return options;
}

inline eval::ExperimentOptions MakeExperimentOptions(
    const BenchSettings& settings) {
  eval::ExperimentOptions options;
  options.num_seeds = settings.seeds;
  options.train.epochs = settings.epochs;
  // The paper trains at lr 1e-3 on ~50k-graph training sets; at this
  // repository's default 1000x-smaller scale the step count shrinks
  // accordingly, so the default learning rate is raised to compensate
  // (documented in EXPERIMENTS.md).
  options.train.learning_rate = settings.learning_rate;
  return options;
}

inline void PrintHeader(const std::string& title,
                        const BenchSettings& settings) {
  std::printf("#############################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# graphs/dataset=%lld seeds=%lld epochs=%lld threads=%d"
              " (env-tunable)\n",
              static_cast<long long>(settings.graphs_per_dataset),
              static_cast<long long>(settings.seeds),
              static_cast<long long>(settings.epochs),
              ThreadPool::DefaultNumThreads());
  std::printf("#############################################################\n");
  std::fflush(stdout);
}

// --- Parallel cell execution + timing record ------------------------------

// One independently timed (dataset, model) unit of work; seeds parallelize
// inside RunExperiment, so with T threads the harness keeps T cells/seeds in
// flight at once.
struct BenchCell {
  std::string dataset;
  std::string model;
  double seconds = 0.0;
};

// Runs every (model) cell of one dataset on the global pool and returns the
// results in model order (bit-identical to the serial loop; see
// eval::RunExperiment for the determinism argument).
inline std::vector<eval::ExperimentResult> RunCellsParallel(
    const std::string& dataset_name,
    const std::vector<std::pair<std::string, eval::ClassifierFactory>>& models,
    const data::TrainTestSplit& split, const eval::ExperimentOptions& options,
    std::vector<BenchCell>& cells) {
  struct Cell {
    eval::ExperimentResult result;
    double seconds = 0.0;
  };
  std::vector<Cell> run = ParallelMap<Cell>(
      ThreadPool::Global(), static_cast<int64_t>(models.size()), /*grain=*/1,
      [&](int64_t i) {
        Stopwatch watch;
        Cell cell;
        cell.result = eval::RunExperiment(models[static_cast<size_t>(i)].second,
                                          split.train, split.test, options);
        cell.seconds = watch.ElapsedSeconds();
        return cell;
      });
  std::vector<eval::ExperimentResult> results;
  results.reserve(run.size());
  for (size_t i = 0; i < run.size(); ++i) {
    cells.push_back({dataset_name, models[i].first, run[i].seconds});
    results.push_back(std::move(run[i].result));
  }
  return results;
}

// Appends this driver's run to the BENCH_parallel.json record (an array with
// one single-line object per driver; re-running a driver replaces its line).
// serial_seconds_est is the sum of per-cell wall times — what the run would
// have cost end to end on one thread.
inline void WriteBenchParallelJson(const std::string& driver,
                                   const std::vector<BenchCell>& cells,
                                   double wall_seconds) {
  const std::string path =
      GetEnvString("TPGNN_BENCH_JSON", "BENCH_parallel.json");
  double serial_est = 0.0;
  for (const BenchCell& c : cells) serial_est += c.seconds;

  std::ostringstream line;
  line << "{\"driver\": \"" << driver
       << "\", \"threads\": " << ThreadPool::DefaultNumThreads()
       << ", \"wall_seconds\": " << wall_seconds
       << ", \"serial_seconds_est\": " << serial_est << ", \"speedup\": "
       << (wall_seconds > 0.0 ? serial_est / wall_seconds : 0.0)
       << ", \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line << ", ";
    line << "{\"dataset\": \"" << cells[i].dataset << "\", \"model\": \""
         << cells[i].model << "\", \"seconds\": " << cells[i].seconds << "}";
  }
  line << "]}";

  // Keep the other drivers' lines; replace ours if present.
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string existing;
    const std::string marker = "{\"driver\": \"" + driver + "\"";
    while (std::getline(in, existing)) {
      if (existing.rfind("{\"driver\": ", 0) == 0 &&
          existing.rfind(marker, 0) != 0) {
        kept.push_back(existing);
      }
    }
  }
  kept.push_back(line.str());

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < kept.size(); ++i) {
    out << kept[i] << (i + 1 < kept.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::printf("[bench] %s: wall=%.2fs serial_est=%.2fs speedup=%.2fx "
              "threads=%d -> %s\n",
              driver.c_str(), wall_seconds, serial_est,
              wall_seconds > 0.0 ? serial_est / wall_seconds : 0.0,
              ThreadPool::DefaultNumThreads(), path.c_str());
  std::fflush(stdout);
}

}  // namespace tpgnn::bench

#endif  // TPGNN_BENCH_BENCH_UTIL_H_
