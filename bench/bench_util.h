#ifndef TPGNN_BENCH_BENCH_UTIL_H_
#define TPGNN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/baselines.h"
#include "core/model.h"
#include "data/datasets.h"
#include "eval/experiment.h"
#include "util/env.h"

// Shared plumbing for the experiment drivers in bench/. Every driver honours
// the same environment variables so the suite can be scaled from a quick CI
// pass up to paper-protocol runs:
//   TPGNN_GRAPHS  graphs generated per dataset (default 120)
//   TPGNN_SEEDS   independent training runs per model (default 2; paper: 5)
//   TPGNN_EPOCHS  training epochs (default 5; paper: 10)

namespace tpgnn::bench {

struct BenchSettings {
  int64_t graphs_per_dataset = 240;
  int64_t seeds = 2;
  int64_t epochs = 10;
  float learning_rate = 3e-3f;
};

inline BenchSettings LoadSettings() {
  BenchSettings s;
  s.graphs_per_dataset = GetEnvInt("TPGNN_GRAPHS", 240);
  s.seeds = GetEnvInt("TPGNN_SEEDS", 2);
  s.epochs = GetEnvInt("TPGNN_EPOCHS", 10);
  // Learning rate in micro-units, e.g. TPGNN_LR_MICRO=1000 -> 1e-3.
  s.learning_rate =
      static_cast<float>(GetEnvInt("TPGNN_LR_MICRO", 3000)) * 1e-6f;
  return s;
}

// Generated, filtered (>= 3 interactions, Sec. V-A) and chronologically
// split (30/70, Sec. V-D) dataset.
inline data::TrainTestSplit PrepareDataset(const data::DatasetSpec& spec,
                                           const BenchSettings& settings,
                                           uint64_t seed = 7) {
  graph::GraphDataset dataset =
      data::MakeDataset(spec, settings.graphs_per_dataset, seed);
  dataset = data::FilterMinEdges(dataset, 3);
  return data::SplitDataset(dataset, 0.3);
}

// Paper defaults (Sec. V-D): d = 32, d_t = 6.
inline core::TpGnnConfig DefaultTpGnnConfig(core::Updater updater,
                                            core::Variant variant =
                                                core::Variant::kFull) {
  core::TpGnnConfig config;
  config.updater = updater;
  config.variant = variant;
  return config;
}

inline eval::ClassifierFactory TpGnnFactory(const core::TpGnnConfig& config) {
  return [config](uint64_t seed) {
    return std::make_unique<core::TpGnnModel>(config, seed);
  };
}

// Discrete baselines use 5 snapshots on the log datasets and 20 on the
// trajectory datasets (Sec. V-D).
inline baselines::BaselineSuiteOptions SuiteOptionsFor(
    const data::DatasetSpec& spec) {
  baselines::BaselineSuiteOptions options;
  options.num_snapshots =
      spec.flavor == data::DatasetFlavor::kLogSession ? 5 : 20;
  return options;
}

inline eval::ExperimentOptions MakeExperimentOptions(
    const BenchSettings& settings) {
  eval::ExperimentOptions options;
  options.num_seeds = settings.seeds;
  options.train.epochs = settings.epochs;
  // The paper trains at lr 1e-3 on ~50k-graph training sets; at this
  // repository's default 1000x-smaller scale the step count shrinks
  // accordingly, so the default learning rate is raised to compensate
  // (documented in EXPERIMENTS.md).
  options.train.learning_rate = settings.learning_rate;
  return options;
}

inline void PrintHeader(const std::string& title,
                        const BenchSettings& settings) {
  std::printf("#############################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# graphs/dataset=%lld seeds=%lld epochs=%lld (env-tunable)\n",
              static_cast<long long>(settings.graphs_per_dataset),
              static_cast<long long>(settings.seeds),
              static_cast<long long>(settings.epochs));
  std::printf("#############################################################\n");
  std::fflush(stdout);
}

}  // namespace tpgnn::bench

#endif  // TPGNN_BENCH_BENCH_UTIL_H_
