// Regenerates the Sec. V-H / Fig. 7 case study: train TP-GNN-GRU on the
// Gowalla-flavoured trajectory dataset, pick a positive user-trajectory
// network, then (a) swap the timestamps of an early and a late movement and
// (b) flip the direction of a late movement. TP-GNN should recognize both
// modified trajectories as anomalous while keeping the original positive,
// because the modifications change the information flow (the set of
// influential nodes).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "data/negative_sampling.h"
#include "graph/influence.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;
using tpgnn::Rng;

namespace {

double ProbNormal(core::TpGnnModel& model, const graph::TemporalGraph& g) {
  Rng rng(0);
  const float logit = model.ForwardLogit(g, false, rng).item();
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit)));
}

int64_t InfluencerCount(const graph::TemporalGraph& g, int64_t node) {
  return static_cast<int64_t>(
      graph::InfluenceClosure(g).InfluencersOf(node).size());
}

}  // namespace

int main() {
  bench::BenchSettings settings = bench::LoadSettings();
  bench::PrintHeader("Fig. 7: trajectory case study", settings);

  data::TrainTestSplit split =
      bench::PrepareDataset(data::GowallaSpec(), settings);
  core::TpGnnModel model(bench::DefaultTpGnnConfig(core::Updater::kGru), 5);
  eval::TrainOptions train_options;
  train_options.epochs = settings.epochs;
  train_options.learning_rate = settings.learning_rate;
  train_options.seed = 5;
  eval::TrainClassifier(model, split.train, train_options);
  eval::Metrics metrics = eval::EvaluateClassifier(model, split.test);
  std::printf("trained TP-GNN-GRU: test F1=%.2f%%\n\n", 100.0 * metrics.f1);

  // Pick a positive trajectory from the test split.
  const graph::LabeledGraph* positive = nullptr;
  for (const auto& sample : split.test) {
    if (sample.label == 1 && sample.graph.num_edges() >= 10) {
      positive = &sample;
      break;
    }
  }
  if (positive == nullptr) {
    std::printf("no positive test trajectory found\n");
    return 1;
  }
  const graph::TemporalGraph& original = positive->graph;
  std::printf("trajectory: %lld POIs, %lld movements\n",
              static_cast<long long>(original.num_nodes()),
              static_cast<long long>(original.num_edges()));

  // (a) Swap the timestamps of an early and a late movement (the paper
  // swaps t=4.3 with t=14.5).
  graph::TemporalGraph swapped = original;
  {
    auto& edges = swapped.mutable_edges();
    const size_t early = edges.size() / 8;
    const size_t late = edges.size() - 1 - edges.size() / 8;
    std::swap(edges[early].time, edges[late].time);
  }

  // (b) Flip the direction of a late movement.
  graph::TemporalGraph flipped = original;
  {
    auto& edges = flipped.mutable_edges();
    auto& e = edges[edges.size() - 2];
    std::swap(e.src, e.dst);
  }

  // (c) Permute the trajectory's excursion loops in time (the anomaly
  // class the detector is trained on; (a)/(b) are the paper's minimal
  // single-edge edits).
  Rng block_rng(13);
  graph::TemporalGraph relocated = data::LoopSwapNegative(original, block_rng);

  const double p_original = ProbNormal(model, original);
  const double p_swapped = ProbNormal(model, swapped);
  const double p_flipped = ProbNormal(model, flipped);
  const double p_relocated = ProbNormal(model, relocated);
  std::printf("P(normal): original=%.3f  time-swapped=%.3f  "
              "direction-flipped=%.3f  loops-permuted=%.3f\n",
              p_original, p_swapped, p_flipped, p_relocated);
  std::printf("prediction: original=%s  time-swapped=%s  "
              "direction-flipped=%s  loops-permuted=%s\n",
              p_original > 0.5 ? "normal" : "anomalous",
              p_swapped > 0.5 ? "normal" : "anomalous",
              p_flipped > 0.5 ? "normal" : "anomalous",
              p_relocated > 0.5 ? "normal" : "anomalous");

  // Information-flow view: the modifications change influential-node sets.
  const int64_t last_dst = original.ChronologicalEdges().back().dst;
  std::printf("\n|influencers of the final POI (v%lld)|: original=%lld "
              "time-swapped=%lld direction-flipped=%lld\n",
              static_cast<long long>(last_dst),
              static_cast<long long>(InfluencerCount(original, last_dst)),
              static_cast<long long>(InfluencerCount(swapped, last_dst)),
              static_cast<long long>(InfluencerCount(flipped, last_dst)));
  return 0;
}
