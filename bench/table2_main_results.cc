// Regenerates Table II: F1 / Precision / Recall of the twelve baselines and
// TP-GNN-SUM / TP-GNN-GRU on all five datasets. The expected *shape*
// (paper): static models < discrete DGNNs < continuous DGNNs < TP-GNN.
//
// Scale with TPGNN_GRAPHS / TPGNN_SEEDS / TPGNN_EPOCHS; the paper protocol
// is 5 seeds and 10 epochs on the full datasets.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "util/env.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace baselines = tpgnn::baselines;

int main() {
  const bench::BenchSettings settings = bench::LoadSettings();
  bench::PrintHeader("Table II: dynamic graph classification", settings);
  const eval::ExperimentOptions options =
      bench::MakeExperimentOptions(settings);

  // Optional filters for quick partial runs, e.g.
  //   TPGNN_DATASETS=Gowalla TPGNN_MODELS=TGN,TP-GNN ./table2_main_results
  const std::string dataset_filter = tpgnn::GetEnvString("TPGNN_DATASETS", "");
  const std::string model_filter = tpgnn::GetEnvString("TPGNN_MODELS", "");
  auto matches = [](const std::string& filter, const std::string& name) {
    if (filter.empty()) return true;
    size_t start = 0;
    while (start <= filter.size()) {
      size_t comma = filter.find(',', start);
      if (comma == std::string::npos) comma = filter.size();
      if (name.find(filter.substr(start, comma - start)) !=
          std::string::npos) {
        return true;
      }
      start = comma + 1;
    }
    return false;
  };

  tpgnn::Stopwatch wall;
  std::vector<bench::BenchCell> cells;
  for (const data::DatasetSpec& spec : data::AllDatasetSpecs()) {
    if (!matches(dataset_filter, spec.name)) continue;
    data::TrainTestSplit split = bench::PrepareDataset(spec, settings);
    std::vector<std::pair<std::string, eval::ClassifierFactory>> models =
        baselines::AllBaselineFactories(bench::SuiteOptionsFor(spec));
    models.emplace_back(
        "TP-GNN-GRU",
        bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kGru)));
    models.emplace_back(
        "TP-GNN-SUM",
        bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kSum)));
    models.erase(std::remove_if(models.begin(), models.end(),
                                [&](const auto& entry) {
                                  return !matches(model_filter, entry.first);
                                }),
                 models.end());

    // Independent (model, seed) cells run concurrently on the pool; the
    // table prints in model order once the dataset's cells drain.
    std::vector<eval::ExperimentResult> results =
        bench::RunCellsParallel(spec.name, models, split, options, cells);
    eval::PrintResultsTable(spec.name, results);
  }
  bench::WriteBenchParallelJson("table2_main_results", cells,
                                wall.ElapsedSeconds());
  return 0;
}
