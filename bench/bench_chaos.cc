// Chaos benchmark: replays an EventReplayer stream through an in-process
// TCP server while a configurable failpoint mix fires, then verifies the
// serving stack's fault invariants and records throughput under chaos to
// BENCH_chaos.json. Exits nonzero on any invariant violation, which makes
// it usable as a CI gate and under sanitizers:
//
//   * every score request produces exactly one result;
//   * every OK result is bit-identical to the fault-free in-process
//     reference for its (session, prefix);
//   * every failed result carries the injected-fault marker;
//   * serve::Metrics error counters equal the injected fire counts exactly
//     (queues run uncapped so no genuine backpressure can contaminate the
//     accounting);
//   * state_refolds equals the shard.rescale forced-fallback fires times
//     the number of folded state components, and state_rescales equals a
//     replay of each session's successful-score sequence (the model runs
//     TimeBasis::kInvariant, so refolds happen only when injected and every
//     absorbed max move is a rescale).
//
// Flags: --seed=N        first failpoint seed (default 101)
//        --seeds=N       number of consecutive seeds to run (default 3)
//        --sessions=N    replayed sessions (default 8)
//        --score_every=N mid-session score cadence in edges (default 4)
//        --faults=SPEC   TPGNN_FAILPOINTS-syntax override of the default mix
//        --json=PATH     output (default BENCH_chaos.json)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace failpoint = tpgnn::failpoint;
namespace net = tpgnn::net;
namespace serve = tpgnn::serve;

namespace {

// All fault families that keep the exactly-once contract intact: partial
// I/O, dispatch delays, allocation pressure, queue rejections, begin
// rejections, and typed scoring failures. (Frame corruption tears the
// connection down by design and is exercised by tests/net/chaos_test.cc.)
constexpr char kDefaultFaults[] =
    "net.recv=0.15:short_io:7,net.send=0.15:short_io:5,"
    "net.send_all=0.1:short_io:9,net.recv_some=0.1:short_io:11,"
    "server.dispatch=0.02:delay:200,pool.acquire=0.2:alloc_fail,"
    "engine.score_enqueue=0.05:return_error,shard.begin=0.1:return_error,"
    "shard.score=0.05:return_error,shard.rescale=0.1:return_error";

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

core::TpGnnConfig SmallConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  // Serving formulation: replayed streams are chronological per session, so
  // every state_refold must come from the shard.rescale forced fallback and
  // every max-time move a score absorbs must count as a state_rescale —
  // which is what makes both counters exactly attributable below.
  config.time_basis = core::TimeBasis::kInvariant;
  return config;
}

// SmallConfig folds two state components per session (the SUM node state x
// and the time accumulator m), so one forced-fallback fire discards and
// replays exactly two folds.
constexpr uint64_t kFoldedComponents = 2;

constexpr uint64_t kModelSeed = 5;

struct PrefixScore {
  float logit = 0.0f;
  float probability = 0.0f;
};

// (session_id, edges ingested at scoring time) -> fault-free score.
using PrefixTable = std::map<std::pair<uint64_t, int64_t>, PrefixScore>;

// (session_id, edges ingested) -> max edge timestamp over that prefix.
// Drives the state_rescales simulation: a successful score rescales exactly
// when the previous successful score of its session finalized a nonempty
// fold at a different max time.
using PrefixMaxTable = std::map<std::pair<uint64_t, int64_t>, double>;

PrefixMaxTable BuildPrefixMax(const std::vector<serve::Event>& events) {
  PrefixMaxTable table;
  std::map<uint64_t, int64_t> edges_seen;
  std::map<uint64_t, double> running_max;
  for (const serve::Event& event : events) {
    if (event.kind == serve::Event::Kind::kBegin) {
      table[{event.session_id, 0}] = 0.0;
    } else if (event.kind == serve::Event::Kind::kEdge) {
      const int64_t count = ++edges_seen[event.session_id];
      double& mx = running_max[event.session_id];
      if (event.edge_time > mx) {
        mx = event.edge_time;
      }
      table[{event.session_id, count}] = mx;
    }
  }
  return table;
}

// Fault-free ground truth, built through the in-process engine with no
// failpoints armed: score every session after every edge so any networked
// prefix has a reference.
bool BuildPrefixTable(const std::vector<serve::Event>& events,
                      PrefixTable* table) {
  if (failpoint::ActiveCount() != 0) {
    std::fprintf(stderr, "reference table must be built fault-free\n");
    return false;
  }
  serve::InferenceEngine engine(SmallConfig(), kModelSeed, {});
  std::map<uint64_t, int64_t> edges_seen;
  std::vector<serve::ScoreResult> results;

  auto score_now = [&](uint64_t session_id) {
    serve::Event score;
    score.kind = serve::Event::Kind::kScore;
    score.session_id = session_id;
    results.clear();
    if (!engine.Ingest(score).ok()) {
      return false;
    }
    engine.Flush(&results);
    if (results.size() != 1 || !results[0].status.ok()) {
      return false;
    }
    (*table)[{session_id, edges_seen[session_id]}] = {results[0].logit,
                                                      results[0].probability};
    return true;
  };

  for (const serve::Event& event : events) {
    switch (event.kind) {
      case serve::Event::Kind::kBegin:
      case serve::Event::Kind::kEdge:
        if (!engine.Ingest(event).ok()) {
          return false;
        }
        if (event.kind == serve::Event::Kind::kEdge) {
          ++edges_seen[event.session_id];
        }
        if (!score_now(event.session_id)) {
          return false;
        }
        break;
      case serve::Event::Kind::kScore:
      case serve::Event::Kind::kEnd:
        break;
    }
  }
  return true;
}

struct SeedOutcome {
  uint64_t seed = 0;
  uint64_t total_fires = 0;
  uint64_t scores_ok = 0;
  uint64_t scores_failed = 0;
  double wall_seconds = 0.0;
  std::vector<std::string> violations;
};

// One full chaos replay under `seed`. Appends human-readable invariant
// violations; an empty list means the run passed.
SeedOutcome RunChaosSeed(uint64_t seed, const std::string& faults,
                         const std::vector<serve::Event>& events,
                         size_t num_score_requests, const PrefixTable& table,
                         const PrefixMaxTable& prefix_max) {
  SeedOutcome outcome;
  outcome.seed = seed;
  auto violation = [&outcome](std::string text) {
    outcome.violations.push_back(std::move(text));
  };

  // Uncapped queues: every overload counter increment must be attributable
  // to an injected fire, never to genuine backpressure.
  serve::EngineOptions engine_options;
  engine_options.max_pending_scores = 1u << 20;
  net::ServerOptions server_options;
  server_options.max_inflight_scores = 1u << 20;
  server_options.port = 0;

  serve::InferenceEngine engine(SmallConfig(), kModelSeed, engine_options);
  net::Server server(&engine, server_options);
  if (tpgnn::Status s = server.Start(); !s.ok()) {
    violation("server start failed: " + s.ToString());
    return outcome;
  }
  std::thread server_thread([&server] { server.Run(); });

  failpoint::ResetCounters();
  failpoint::SetSeed(seed);
  if (tpgnn::Status s = failpoint::InstallFromSpecString(faults); !s.ok()) {
    violation("bad --faults spec: " + s.ToString());
  }

  tpgnn::Stopwatch clock;
  std::vector<serve::ScoreResult> results;
  if (outcome.violations.empty()) {
    net::ClientOptions client_options;
    client_options.port = server.port();
    net::Client client(client_options);
    if (tpgnn::Status s = client.Connect(); !s.ok()) {
      violation("connect failed: " + s.ToString());
    } else if (tpgnn::Status s = client.IngestAll(events); !s.ok()) {
      violation("ingest failed: " + s.ToString());
    } else if (tpgnn::Status s = client.DrainResults(); !s.ok()) {
      violation("drain failed: " + s.ToString());
    }
    results = client.TakeResults();
  }
  outcome.wall_seconds = clock.ElapsedSeconds();

  // Disarm before reading counters so the accounting below is frozen.
  failpoint::ClearAll();
  outcome.total_fires = failpoint::TotalFires();

  for (const serve::ScoreResult& result : results) {
    if (!result.status.ok()) {
      ++outcome.scores_failed;
      if (result.status.message().find("injected fault") ==
          std::string::npos) {
        violation("failed score without injected-fault marker: " +
                  result.status.ToString());
      }
      continue;
    }
    ++outcome.scores_ok;
    const auto it = table.find({result.session_id, result.edges_scored});
    if (it == table.end()) {
      violation("score for unknown prefix: session " +
                std::to_string(result.session_id) + " edges " +
                std::to_string(result.edges_scored));
    } else if (it->second.logit != result.logit ||
               it->second.probability != result.probability) {
      violation("score diverges from fault-free reference: session " +
                std::to_string(result.session_id) + " edges " +
                std::to_string(result.edges_scored));
    }
  }
  if (results.size() != num_score_requests) {
    violation("expected " + std::to_string(num_score_requests) +
              " results, got " + std::to_string(results.size()));
  }

  const serve::Metrics& metrics = engine.metrics();
  const uint64_t expected_overloads =
      failpoint::FireCount("engine.score_enqueue") +
      failpoint::FireCount("shard.begin");
  if (metrics.overload_rejections.load() != expected_overloads) {
    violation("overload_rejections " +
              std::to_string(metrics.overload_rejections.load()) +
              " != injected " + std::to_string(expected_overloads));
  }
  if (metrics.scores_failed.load() != failpoint::FireCount("shard.score")) {
    violation("scores_failed " + std::to_string(metrics.scores_failed.load()) +
              " != injected " +
              std::to_string(failpoint::FireCount("shard.score")));
  }
  if (outcome.scores_failed != failpoint::FireCount("shard.score")) {
    violation("failed results " + std::to_string(outcome.scores_failed) +
              " != injected " +
              std::to_string(failpoint::FireCount("shard.score")));
  }
  if (metrics.protocol_errors.load() !=
      failpoint::FireCount("client.corrupt_frame")) {
    violation("protocol_errors " +
              std::to_string(metrics.protocol_errors.load()) +
              " != injected " +
              std::to_string(failpoint::FireCount("client.corrupt_frame")));
  }

  // Refold/rescale attribution. The invariant-basis model never refolds a
  // chronological stream on its own, so every refold is kFoldedComponents
  // discarded folds per shard.rescale fire. Rescales are deterministic in
  // which scores succeeded: replay each session's successful scores in
  // prefix order and count the absorbed max-time moves.
  const uint64_t expected_refolds =
      kFoldedComponents * failpoint::FireCount("shard.rescale");
  if (metrics.state_refolds.load() != expected_refolds) {
    violation("state_refolds " + std::to_string(metrics.state_refolds.load()) +
              " != " + std::to_string(kFoldedComponents) + " x " +
              std::to_string(failpoint::FireCount("shard.rescale")) +
              " injected shard.rescale fires");
  }
  std::map<uint64_t, std::vector<int64_t>> ok_prefixes;
  for (const serve::ScoreResult& result : results) {
    if (result.status.ok()) {
      ok_prefixes[result.session_id].push_back(result.edges_scored);
    }
  }
  uint64_t expected_rescales = 0;
  for (auto& [session_id, prefixes] : ok_prefixes) {
    std::sort(prefixes.begin(), prefixes.end());
    int64_t finalized_edges = 0;
    double finalized_max = 0.0;
    for (const int64_t edges : prefixes) {
      const auto it = prefix_max.find({session_id, edges});
      if (it == prefix_max.end()) {
        continue;  // Unknown prefix: already reported against the table.
      }
      if (finalized_edges > 0 && finalized_max != it->second) {
        ++expected_rescales;
      }
      finalized_edges = edges;
      finalized_max = it->second;
    }
  }
  if (metrics.state_rescales.load() != expected_rescales) {
    violation("state_rescales " +
              std::to_string(metrics.state_rescales.load()) +
              " != simulated " + std::to_string(expected_rescales));
  }

  server.RequestShutdown();
  server_thread.join();
  failpoint::ResetCounters();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t first_seed =
      static_cast<uint64_t>(FlagInt(argc, argv, "seed", 101));
  const int64_t num_seeds = FlagInt(argc, argv, "seeds", 3);
  const int64_t sessions = FlagInt(argc, argv, "sessions", 8);
  const int64_t score_every = FlagInt(argc, argv, "score_every", 4);
  const std::string faults =
      FlagValue(argc, argv, "faults", kDefaultFaults);
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_chaos.json");

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/19);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);

  failpoint::ClearAll();
  PrefixTable table;
  if (!BuildPrefixTable(replayer.events(), &table)) {
    std::fprintf(stderr, "failed to build fault-free reference\n");
    return 1;
  }
  const PrefixMaxTable prefix_max = BuildPrefixMax(replayer.events());
  std::printf("chaos: %zu sessions, %zu events, %zu score requests, "
              "faults=%s\n",
              replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests(), faults.c_str());

  std::vector<SeedOutcome> outcomes;
  size_t total_violations = 0;
  for (int64_t i = 0; i < num_seeds; ++i) {
    SeedOutcome outcome =
        RunChaosSeed(first_seed + static_cast<uint64_t>(i), faults,
                     replayer.events(), replayer.num_score_requests(), table,
                     prefix_max);
    std::printf("  seed %llu: %llu fires, %llu ok / %llu failed scores, "
                "%.3fs — %s\n",
                static_cast<unsigned long long>(outcome.seed),
                static_cast<unsigned long long>(outcome.total_fires),
                static_cast<unsigned long long>(outcome.scores_ok),
                static_cast<unsigned long long>(outcome.scores_failed),
                outcome.wall_seconds,
                outcome.violations.empty() ? "OK" : "VIOLATIONS");
    for (const std::string& violation : outcome.violations) {
      std::fprintf(stderr, "    %s\n", violation.c_str());
    }
    total_violations += outcome.violations.size();
    outcomes.push_back(std::move(outcome));
  }

  std::ostringstream out;
  out << "{\"bench\": \"chaos\", \"faults\": \"" << faults << "\""
      << ", \"sessions\": " << replayer.num_sessions()
      << ", \"events\": " << replayer.events().size()
      << ", \"score_requests\": " << replayer.num_score_requests()
      << ", \"violations\": " << total_violations << ", \"runs\": [";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const SeedOutcome& o = outcomes[i];
    out << (i == 0 ? "" : ", ") << "{\"seed\": " << o.seed
        << ", \"fires\": " << o.total_fires
        << ", \"scores_ok\": " << o.scores_ok
        << ", \"scores_failed\": " << o.scores_failed
        << ", \"wall_seconds\": " << o.wall_seconds
        << ", \"violations\": " << o.violations.size() << "}";
  }
  out << "]}";
  std::ofstream file(json_path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  file << out.str() << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (total_violations > 0) {
    std::fprintf(stderr, "chaos check failed: %zu invariant violations\n",
                 total_violations);
    return 1;
  }
  return 0;
}
