// Regenerates Table I: key statistics of the five (synthetic) datasets.
// The graph counts default to the paper's counts scaled by 1/1000; the
// negative ratio, average node/edge counts, and feature width follow the
// published statistics.

#include <cstdio>
#include <string>

#include "data/datasets.h"
#include "graph/stats.h"
#include "util/env.h"

namespace data = tpgnn::data;
namespace graph = tpgnn::graph;

int main() {
  const int64_t override_count = tpgnn::GetEnvInt("TPGNN_GRAPHS", 0);

  std::printf("Table I: key statistics of datasets used in experiments\n");
  std::printf("%-12s | %7s | %6s | %6s | %6s | %s\n", "Dataset", "Graphs",
              "Neg%", "AvgV", "AvgE", "#Feat");
  std::printf("%s\n", std::string(62, '-').c_str());
  for (const data::DatasetSpec& spec : data::AllDatasetSpecs()) {
    graph::GraphDataset dataset =
        data::MakeDataset(spec, override_count, /*seed=*/7);
    dataset = data::FilterMinEdges(dataset, 3);
    graph::DatasetStats stats = graph::ComputeDatasetStats(dataset);
    std::printf("%s\n", graph::FormatStatsRow(spec.name, stats).c_str());
  }
  std::printf(
      "\nPaper reference (Table I): Forum-java 172,443 / 32.5%% / 27 / 30;\n"
      "HDFS 130,344* / 29.8%% / 12 / 31; Gowalla 105,862 / 28.8%% / 72 / 117;\n"
      "FourSquare 347,848 / 30.3%% / 61 / 135; Brightkite 44,693 / 30.3%% / "
      "46 / 188.\n"
      "(*graph counts here are scaled by ~1/1000; override with "
      "TPGNN_GRAPHS)\n");
  return 0;
}
