// Regenerates the Fig. 1 motivating example: two session networks with
// IDENTICAL topology whose edges differ only in timestamps. An
// order-agnostic static GNN provably assigns both the same output; TP-GNN
// separates them, because the second (v7 -> v6) interaction happens after
// v9's information reached v7 only in the abnormal graph.
//
// The driver (1) shows the untrained-distinguishability contrast, (2) shows
// the influential-node analysis of Definition 4, and (3) trains both models
// on a jittered dataset of the two prototypes.

#include <cmath>
#include <cstdio>
#include <memory>

#include "baselines/static_gnn.h"
#include "bench_util.h"
#include "graph/influence.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;
namespace baselines = tpgnn::baselines;
using tpgnn::Rng;

namespace {

// Fig. 1 style session network over nodes v0..v9. `abnormal` moves the
// second (v7, v6) interaction after (v9, v8) -- same topology, different
// edge establishment order.
graph::TemporalGraph Fig1Graph(bool abnormal, Rng* jitter) {
  graph::TemporalGraph g(10, 3);
  for (int64_t v = 0; v < 10; ++v) {
    g.SetNodeFeature(v, {static_cast<float>(v) / 10.0f, 0.5f, 0.0f});
  }
  auto t = [&](double base) {
    return jitter != nullptr ? base + jitter->Uniform(0.0, 0.2) : base;
  };
  g.AddEdge(3, 1, t(1.0));
  g.AddEdge(2, 1, t(2.0));
  g.AddEdge(1, 0, t(3.0));
  g.AddEdge(0, 7, t(4.0));
  g.AddEdge(7, 6, t(4.9));
  g.AddEdge(7, 6, t(abnormal ? 7.4 : 5.5));  // The order-defining edge.
  g.AddEdge(9, 8, t(6.0));
  g.AddEdge(8, 7, t(7.0));
  g.AddEdge(0, 9, t(8.0));
  return g;
}

}  // namespace

int main() {
  bench::BenchSettings settings = bench::LoadSettings();
  bench::PrintHeader("Fig. 1: motivating example", settings);

  graph::TemporalGraph normal = Fig1Graph(false, nullptr);
  graph::TemporalGraph abnormal = Fig1Graph(true, nullptr);

  // (1) Untrained distinguishability.
  Rng rng(1);
  baselines::Gcn gcn({}, /*seed=*/3);
  const float gcn_normal = gcn.ForwardLogit(normal, false, rng).item();
  const float gcn_abnormal = gcn.ForwardLogit(abnormal, false, rng).item();
  std::printf("GCN logits:    normal=%.6f abnormal=%.6f -> %s\n", gcn_normal,
              gcn_abnormal,
              gcn_normal == gcn_abnormal ? "IDENTICAL (cannot distinguish)"
                                         : "different");
  core::TpGnnModel tpgnn(bench::DefaultTpGnnConfig(core::Updater::kSum), 3);
  const float tp_normal = tpgnn.ForwardLogit(normal, false, rng).item();
  const float tp_abnormal = tpgnn.ForwardLogit(abnormal, false, rng).item();
  std::printf("TP-GNN logits: normal=%.6f abnormal=%.6f -> %s\n", tp_normal,
              tp_abnormal,
              tp_normal == tp_abnormal ? "identical" : "DIFFERENT");

  // (2) Influential-node analysis (Definition 4).
  graph::InfluenceClosure closure_normal(normal);
  graph::InfluenceClosure closure_abnormal(abnormal);
  std::printf("v9 influential to v6?  normal: %s   abnormal: %s\n",
              closure_normal.Influences(9, 6) ? "yes" : "no",
              closure_abnormal.Influences(9, 6) ? "yes" : "no");
  std::printf("|influencers of v6|    normal: %zu   abnormal: %zu\n",
              closure_normal.InfluencersOf(6).size(),
              closure_abnormal.InfluencersOf(6).size());

  // (3) Train on jittered prototypes: TP-GNN separates, GCN cannot beat the
  // all-positive predictor.
  Rng data_rng(7);
  graph::GraphDataset dataset;
  for (int i = 0; i < 160; ++i) {
    const bool neg = data_rng.Bernoulli(0.3);
    dataset.push_back({Fig1Graph(neg, &data_rng), neg ? 0 : 1});
  }
  data::TrainTestSplit split = tpgnn::data::SplitDataset(dataset, 0.3);
  eval::TrainOptions train_options;
  train_options.epochs = settings.epochs;
  train_options.learning_rate = settings.learning_rate;
  train_options.seed = 1;

  core::TpGnnModel tp_trained(bench::DefaultTpGnnConfig(core::Updater::kSum),
                              11);
  eval::TrainClassifier(tp_trained, split.train, train_options);
  eval::Metrics tp_metrics = eval::EvaluateClassifier(tp_trained, split.test);

  baselines::Gcn gcn_trained({}, 11);
  eval::TrainClassifier(gcn_trained, split.train, train_options);
  eval::Metrics gcn_metrics =
      eval::EvaluateClassifier(gcn_trained, split.test);

  std::printf("\nAfter training on jittered Fig.1 prototypes:\n");
  std::printf("  TP-GNN-SUM  accuracy=%5.1f%%  F1=%5.1f%%\n",
              100.0 * tp_metrics.accuracy, 100.0 * tp_metrics.f1);
  std::printf("  GCN         accuracy=%5.1f%%  F1=%5.1f%%\n",
              100.0 * gcn_metrics.accuracy, 100.0 * gcn_metrics.f1);
  std::printf("  (all-positive predictor: accuracy=70.0%%, F1=82.4%%)\n");
  return 0;
}
