// Paper-scale streaming soak (DESIGN.md §4.9): runs the serve stack for
// minutes against a generated multi-tenant workload — overload waves,
// eviction churn, armed failpoints — while the soak harness continuously
// asserts exact accounting, bounded memory high-water marks, latency SLOs,
// and sampled bitwise offline parity. Writes BENCH_soak.json and exits
// nonzero if any invariant was violated, making it CI-gateable as-is.
//
// Environment knobs:
//   TPGNN_SOAK_SECONDS      minimum wall seconds (default 60)
//   TPGNN_SOAK_SESSIONS     minimum sessions begun (default 100000)
//   TPGNN_SOAK_PROFILE      paper | churn | wave | mini (default wave)
//   TPGNN_SOAK_SEED         workload seed (default 42)
//   TPGNN_SOAK_FAILPOINTS   failpoint spec ("" disables; default arms
//                           shard.begin + engine.score_enqueue lightly)
//   TPGNN_SOAK_CHECKPOINT   events between checkpoints (default 200000)
//   TPGNN_SOAK_WARMUP       events before memory baselines (default 4000000)
//   TPGNN_SOAK_SCORE_P99_US score-latency p99 SLO in us (default 12000)
//   TPGNN_SOAK_E2E_P99_US   e2e-latency p99 SLO in us (default 300000)
//   TPGNN_BENCH_SOAK_JSON   output path (default BENCH_soak.json)

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/config.h"
#include "util/env.h"
#include "workload/profiles.h"
#include "workload/soak.h"

namespace {

using tpgnn::workload::SoakCheckpoint;
using tpgnn::workload::SoakOptions;
using tpgnn::workload::SoakReport;
using tpgnn::workload::WorkloadOptions;

WorkloadOptions ProfileByName(const std::string& name, uint64_t seed) {
  if (name == "paper") return tpgnn::workload::PaperMixProfile(seed);
  if (name == "churn") return tpgnn::workload::EvictionChurnProfile(seed);
  if (name == "wave") return tpgnn::workload::OverloadWaveProfile(seed);
  if (name == "mini") return tpgnn::workload::MiniSoakProfile(seed);
  std::fprintf(stderr, "unknown TPGNN_SOAK_PROFILE '%s'\n", name.c_str());
  std::exit(2);
}

std::string ReportJson(const std::string& profile, const SoakReport& r) {
  const auto& m = r.final_metrics;
  std::ostringstream os;
  os << "[\n  {\"bench\": \"soak\", \"variant\": \"" << profile << "\""
     << ", \"wall_seconds\": " << r.wall_seconds
     << ", \"events\": " << r.events
     << ", \"events_per_second\": "
     << (r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds
                            : 0.0)
     << ", \"sessions\": " << r.sessions_started
     << ", \"scores_completed\": " << r.scores_completed
     << ", \"scores_per_second\": "
     << (r.wall_seconds > 0
             ? static_cast<double>(r.scores_completed) / r.wall_seconds
             : 0.0)
     << ", \"scores_failed\": " << r.scores_failed
     << ", \"events_shed\": " << r.events_shed
     << ", \"events_rejected\": " << r.events_rejected
     << ", \"overload_rejections\": " << m.overload_rejections
     << ", \"sessions_evicted\": " << m.sessions_evicted
     << ", \"failpoint_fires\": " << r.failpoint_fires
     << ", \"invariant_violations\": " << r.violations.size()
     << ", \"parity_checks\": " << r.parity_checks
     << ", \"parity_mismatches\": " << r.parity_mismatches
     << ", \"pool_bytes_peak\": " << m.pool_bytes_peak
     << ", \"arena_bytes_peak\": " << m.arena_bytes_peak
     << ", \"rss_peak_kb\": " << m.rss_peak_kb
     << ", \"score_p99_us\": " << m.score_latency.PercentileMicros(0.99)
     << ", \"e2e_p99_us\": " << m.e2e_latency.PercentileMicros(0.99)
     << ", \"checkpoints\": " << r.checkpoints.size() << "}\n]\n";
  return os.str();
}

}  // namespace

int main() {
  const int64_t seconds = tpgnn::GetEnvInt("TPGNN_SOAK_SECONDS", 60);
  const int64_t sessions = tpgnn::GetEnvInt("TPGNN_SOAK_SESSIONS", 100000);
  const std::string profile =
      tpgnn::GetEnvString("TPGNN_SOAK_PROFILE", "wave");
  const uint64_t seed =
      static_cast<uint64_t>(tpgnn::GetEnvInt("TPGNN_SOAK_SEED", 42));

  SoakOptions options;
  options.workload = ProfileByName(profile, seed);
  options.workload.num_sessions = 0;  // Unbounded; driver decides the end.
  options.min_sessions = static_cast<uint64_t>(sessions);
  options.min_wall_seconds = static_cast<double>(seconds);
  options.engine.num_shards = 8;
  options.engine.max_resident_sessions = 4096;
  options.engine.idle_ttl_seconds = 30.0;
  options.engine.max_pending_scores = 512;
  options.engine.max_batch = 128;
  // Paper-default model dims (d=32, d_t=6) — this is the serving-scale
  // config every other serve bench runs.
  options.config = tpgnn::core::TpGnnConfig();
  options.checkpoint_every_events =
      static_cast<uint64_t>(tpgnn::GetEnvInt("TPGNN_SOAK_CHECKPOINT", 200000));
  // RSS ramps for the first few million events while the allocator's
  // per-thread arenas and free lists grow to their steady-state high-water;
  // the memory baselines are only meaningful after that ramp. A 60s run at
  // paper scale ingests ~10M events, so 4M leaves most of the run under an
  // armed bound.
  options.warmup_events =
      static_cast<uint64_t>(tpgnn::GetEnvInt("TPGNN_SOAK_WARMUP", 4000000));
  options.slos.score_p99_us = static_cast<double>(
      tpgnn::GetEnvInt("TPGNN_SOAK_SCORE_P99_US", 12000));
  options.slos.e2e_p99_us = static_cast<double>(
      tpgnn::GetEnvInt("TPGNN_SOAK_E2E_P99_US", 300000));
  options.failpoint_spec = tpgnn::GetEnvString(
      "TPGNN_SOAK_FAILPOINTS",
      "shard.begin=0.001:return_error,engine.score_enqueue=0.001:return_error");
  options.failpoint_seed = seed;
  options.on_checkpoint = [](const SoakCheckpoint& cp) {
    std::printf(
        "[soak] t=%7.1fs events=%-10llu sessions=%-8llu scores=%-9llu "
        "resident=%-5llu rss=%llukB parity=%llu/%llu violations=%llu\n",
        cp.wall_seconds, static_cast<unsigned long long>(cp.events),
        static_cast<unsigned long long>(cp.sessions_begun),
        static_cast<unsigned long long>(cp.scores_completed),
        static_cast<unsigned long long>(cp.resident_sessions),
        static_cast<unsigned long long>(cp.rss_peak_kb),
        static_cast<unsigned long long>(cp.parity_checks -
                                        cp.parity_mismatches),
        static_cast<unsigned long long>(cp.parity_checks),
        static_cast<unsigned long long>(cp.violations));
    std::fflush(stdout);
  };

  std::printf("soak: profile=%s seed=%llu min=%llds/%lld sessions fp='%s'\n",
              profile.c_str(), static_cast<unsigned long long>(seed),
              static_cast<long long>(seconds),
              static_cast<long long>(sessions),
              options.failpoint_spec.c_str());
  const SoakReport report = tpgnn::workload::RunSoak(options);

  const std::string path =
      tpgnn::GetEnvString("TPGNN_BENCH_SOAK_JSON", "BENCH_soak.json");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << ReportJson(profile, report);
  std::printf("wrote %s\n", path.c_str());

  for (const std::string& v : report.violations) {
    std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
  }
  std::printf(
      "soak %s: %.1fs, %llu events (%.0f/s), %llu sessions, %llu scores, "
      "%llu parity checks, %llu mismatches, %zu violations\n",
      report.ok() ? "PASS" : "FAIL", report.wall_seconds,
      static_cast<unsigned long long>(report.events),
      report.wall_seconds > 0
          ? static_cast<double>(report.events) / report.wall_seconds
          : 0.0,
      static_cast<unsigned long long>(report.sessions_started),
      static_cast<unsigned long long>(report.scores_completed),
      static_cast<unsigned long long>(report.parity_checks),
      static_cast<unsigned long long>(report.parity_mismatches),
      report.violations.size());
  return report.ok() ? 0 : 1;
}
