#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly produced benchmark JSON against a checked-in baseline
and exits nonzero when any throughput metric drops by more than the
allowed fraction. Built for BENCH_serve.json (a list of objects keyed by
"bench") but accepts any file in that shape, including a single top-level
object (BENCH_net.json).

Usage:
  bench/check_bench.py --baseline BENCH_serve.json --current /tmp/new.json
  bench/check_bench.py ... --max-drop 0.15 --metric events_per_second
  bench/check_bench.py --baseline BENCH_plan.json --current /tmp/plan.json \
      --metric speedup_planned_simd_vs_fused \
      --require-zero buffer_allocs_per_edge

Higher-is-better metrics are gated with --metric (default:
events_per_second and scores_per_second); lower-is-better metrics (e.g.
ns_per_edge) with --lower-metric, where an *increase* past --max-drop
fails. --require-zero names a metric that must be exactly 0 in every
current entry carrying it, regardless of the baseline (the planned
executor's allocation-free contract). Entries present in only one of the
two files are reported but do not fail the gate — benchmarks come and go;
losing a baseline row is a review concern, not a perf regression.
Improvements are never failures.

The default --max-drop of 0.15 suits a quiet machine; CI runners are
noisy and pass a looser value.
"""

import argparse
import json
import sys


def load_entries(path):
    """Returns {key: entry} for a bench JSON file.

    The file is either a list of objects or a single object. Each object
    is keyed by its "bench" field plus the "variant" field when present
    (BENCH_alloc.json carries several variants per bench name). Objects
    without a "bench" field are skipped.
    """
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = [doc]
    entries = {}
    for obj in doc:
        if not isinstance(obj, dict) or "bench" not in obj:
            continue
        key = obj["bench"]
        if "variant" in obj:
            key = f"{key}/{obj['variant']}"
        entries[key] = obj
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced JSON to gate")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="allowed fractional drop per metric "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--metric", action="append", default=None,
                        help="higher-is-better metric to gate (repeatable; "
                             "default: events_per_second, scores_per_second)")
    parser.add_argument("--lower-metric", action="append", default=[],
                        help="lower-is-better metric to gate (repeatable); "
                             "fails when the current value grows past "
                             "--max-drop relative to the baseline")
    parser.add_argument("--require-zero", action="append", default=[],
                        help="metric that must be exactly 0 in every current "
                             "entry that carries it (repeatable)")
    args = parser.parse_args()
    metrics = args.metric or ["events_per_second", "scores_per_second"]
    gated = [(m, True) for m in metrics]
    gated += [(m, False) for m in args.lower_metric]

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)

    failures = []
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            print(f"note: {key} in baseline but not in current run")
            continue
        for metric, higher_is_better in gated:
            base = baseline[key].get(metric)
            cur = current[key].get(metric)
            if base is None or cur is None or base <= 0:
                continue
            compared += 1
            # `drop` is the regression fraction: how far the current value
            # moved in the bad direction relative to the baseline.
            if higher_is_better:
                drop = 1.0 - cur / base
            else:
                drop = cur / base - 1.0
            marker = ""
            if drop > args.max_drop:
                failures.append((key, metric, base, cur, drop))
                marker = "  << REGRESSION"
            print(f"{key:34s} {metric:20s} {base:12.1f} -> {cur:12.1f} "
                  f"({-drop:+7.1%}){marker}")
    zero_failures = []
    for key in sorted(current):
        for metric in args.require_zero:
            cur = current[key].get(metric)
            if cur is None:
                continue
            compared += 1
            if cur != 0:
                zero_failures.append((key, metric, cur))
                print(f"{key:34s} {metric:20s} {cur:12.4f} != 0"
                      f"  << REGRESSION")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: {key} in current run but not in baseline "
              f"(new benchmark? refresh the baseline)")

    if compared == 0:
        print("error: no comparable metrics between baseline and current",
              file=sys.stderr)
        return 2
    if failures or zero_failures:
        if failures:
            print(f"\n{len(failures)} metric(s) regressed more than "
                  f"{args.max_drop:.0%}:", file=sys.stderr)
            for key, metric, base, cur, drop in failures:
                print(f"  {key} {metric}: {base:.1f} -> {cur:.1f} "
                      f"(-{drop:.1%})", file=sys.stderr)
        if zero_failures:
            print(f"\n{len(zero_failures)} metric(s) violated the "
                  f"must-be-zero contract:", file=sys.stderr)
            for key, metric, cur in zero_failures:
                print(f"  {key} {metric}: {cur}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} metric comparisons within {args.max_drop:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
