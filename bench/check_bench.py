#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced benchmark JSON against a checked-in baseline
and exits nonzero when any throughput metric drops by more than the
allowed fraction. Built for BENCH_serve.json (a list of objects keyed by
"bench") but accepts any file in that shape, including a single top-level
object (BENCH_net.json) and "driver"-keyed files (BENCH_parallel.json).

Single-file usage:
  bench/check_bench.py --baseline BENCH_serve.json --current /tmp/new.json
  bench/check_bench.py ... --max-drop 0.15 --metric events_per_second
  bench/check_bench.py --baseline BENCH_plan.json --current /tmp/plan.json \
      --metric speedup_planned_simd_vs_fused \
      --require-zero buffer_allocs_per_edge

Trajectory usage — one invocation gates every BENCH_*.json the repo
tracks, with per-file metric lists read from a config:
  bench/check_bench.py --trajectory bench/trajectory.json \
      --baseline-dir . --current-dir build
  bench/check_bench.py --trajectory bench/trajectory.json \
      --baseline-dir . --current-dir build --only BENCH_serve.json

Higher-is-better metrics are gated with --metric (default:
events_per_second and scores_per_second); lower-is-better metrics (e.g.
ns_per_edge) with --lower-metric, where an *increase* past --max-drop
fails. --require-zero names a metric that must be exactly 0 in every
current entry carrying it, regardless of the baseline (the planned
executor's allocation-free contract, zero parity mismatches, zero soak
invariant violations). Entries present in only one of the two files are
reported but do not fail the gate — benchmarks come and go; losing a
baseline row is a review concern, not a perf regression. Improvements
are never failures.

In trajectory mode a file listed in the config but missing from
--current-dir is noted and skipped (CI jobs each produce a subset);
pass --only to make the named files mandatory. A --max-drop given on
the command line overrides every per-file value in the config — CI
runners are noisy and pass a looser value than the local defaults.
"""

import argparse
import json
import os
import sys


def load_entries(path):
    """Returns {key: entry} for a bench JSON file.

    The file is either a list of objects or a single object. Each object
    is keyed by its "bench" field (falling back to "driver" for the
    parallel-runtime report) plus the "variant" field when present
    (BENCH_alloc.json carries several variants per bench name) or the
    "threads" field (BENCH_parallel.json sweeps thread counts under one
    driver name). Objects with neither key are skipped.
    """
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = [doc]
    entries = {}
    for obj in doc:
        if not isinstance(obj, dict):
            continue
        key = obj.get("bench", obj.get("driver"))
        if key is None:
            continue
        if "variant" in obj:
            key = f"{key}/{obj['variant']}"
        elif "threads" in obj:
            key = f"{key}/threads={obj['threads']}"
        entries[key] = obj
    return entries


def gate_file(baseline_path, current_path, metrics, lower_metrics,
              require_zero, max_drop):
    """Gates one current file against one baseline file.

    Returns (exit_code, compared) where exit_code is 0 on pass, 1 on a
    regression, 2 when nothing was comparable.
    """
    gated = [(m, True) for m in metrics]
    gated += [(m, False) for m in lower_metrics]

    baseline = load_entries(baseline_path)
    current = load_entries(current_path)

    failures = []
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            print(f"note: {key} in baseline but not in current run")
            continue
        for metric, higher_is_better in gated:
            base = baseline[key].get(metric)
            cur = current[key].get(metric)
            if base is None or cur is None or base <= 0:
                continue
            compared += 1
            # `drop` is the regression fraction: how far the current value
            # moved in the bad direction relative to the baseline.
            if higher_is_better:
                drop = 1.0 - cur / base
            else:
                drop = cur / base - 1.0
            marker = ""
            if drop > max_drop:
                failures.append((key, metric, base, cur, drop))
                marker = "  << REGRESSION"
            print(f"{key:34s} {metric:20s} {base:12.1f} -> {cur:12.1f} "
                  f"({-drop:+7.1%}){marker}")
    zero_failures = []
    for key in sorted(current):
        for metric in require_zero:
            cur = current[key].get(metric)
            if cur is None:
                continue
            compared += 1
            if cur != 0:
                zero_failures.append((key, metric, cur))
                print(f"{key:34s} {metric:20s} {cur:12.4f} != 0"
                      f"  << REGRESSION")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: {key} in current run but not in baseline "
              f"(new benchmark? refresh the baseline)")

    if compared == 0:
        print("error: no comparable metrics between baseline and current",
              file=sys.stderr)
        return 2, compared
    if failures or zero_failures:
        if failures:
            print(f"\n{len(failures)} metric(s) regressed more than "
                  f"{max_drop:.0%}:", file=sys.stderr)
            for key, metric, base, cur, drop in failures:
                print(f"  {key} {metric}: {base:.1f} -> {cur:.1f} "
                      f"(-{drop:.1%})", file=sys.stderr)
        if zero_failures:
            print(f"\n{len(zero_failures)} metric(s) violated the "
                  f"must-be-zero contract:", file=sys.stderr)
            for key, metric, cur in zero_failures:
                print(f"  {key} {metric}: {cur}", file=sys.stderr)
        return 1, compared
    print(f"\nOK: {compared} metric comparisons within {max_drop:.0%}")
    return 0, compared


def run_trajectory(args):
    """Gates every file named in the trajectory config that exists in
    --current-dir (all of them when --only is given)."""
    with open(args.trajectory) as f:
        config = json.load(f)
    files = config["files"]
    only = None
    if args.only:
        only = {name.strip() for name in args.only.split(",") if name.strip()}
        unknown = only - {spec["file"] for spec in files}
        if unknown:
            print(f"error: --only names files absent from the trajectory "
                  f"config: {sorted(unknown)}", file=sys.stderr)
            return 2

    worst = 0
    gated_any = False
    for spec in files:
        name = spec["file"]
        if only is not None and name not in only:
            continue
        baseline_path = os.path.join(args.baseline_dir, name)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(current_path):
            if only is not None:
                print(f"error: --only requested {name} but "
                      f"{current_path} does not exist", file=sys.stderr)
                return 2
            print(f"note: {name} not produced by this run; skipped")
            continue
        if not os.path.exists(baseline_path):
            print(f"error: baseline {baseline_path} missing for {name}",
                  file=sys.stderr)
            return 2
        max_drop = (args.max_drop if args.max_drop is not None
                    else spec.get("max_drop", 0.15))
        print(f"\n=== {name} (max drop {max_drop:.0%}) ===")
        code, _ = gate_file(baseline_path, current_path,
                            spec.get("metrics", []),
                            spec.get("lower_metrics", []),
                            spec.get("require_zero", []),
                            max_drop)
        gated_any = True
        worst = max(worst, code)
    if not gated_any:
        print("error: trajectory gated no files", file=sys.stderr)
        return 2
    return worst


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument("--current", help="freshly produced JSON to gate")
    parser.add_argument("--trajectory",
                        help="trajectory config (bench/trajectory.json); "
                             "gates every listed BENCH_*.json file")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the checked-in baselines "
                             "(trajectory mode)")
    parser.add_argument("--current-dir", default=".",
                        help="directory holding the fresh results "
                             "(trajectory mode)")
    parser.add_argument("--only",
                        help="comma-separated file names from the config to "
                             "gate; each becomes mandatory (trajectory mode)")
    parser.add_argument("--max-drop", type=float, default=None,
                        help="allowed fractional drop per metric (default "
                             "0.15 = 15%%; in trajectory mode overrides "
                             "every per-file value)")
    parser.add_argument("--metric", action="append", default=None,
                        help="higher-is-better metric to gate (repeatable; "
                             "default: events_per_second, scores_per_second)")
    parser.add_argument("--lower-metric", action="append", default=[],
                        help="lower-is-better metric to gate (repeatable); "
                             "fails when the current value grows past "
                             "--max-drop relative to the baseline")
    parser.add_argument("--require-zero", action="append", default=[],
                        help="metric that must be exactly 0 in every current "
                             "entry that carries it (repeatable)")
    args = parser.parse_args()

    if args.trajectory:
        if args.baseline or args.current:
            parser.error("--trajectory is exclusive with "
                         "--baseline/--current")
        return run_trajectory(args)

    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --trajectory)")
    metrics = args.metric or ["events_per_second", "scores_per_second"]
    max_drop = args.max_drop if args.max_drop is not None else 0.15
    code, _ = gate_file(args.baseline, args.current, metrics,
                        args.lower_metric, args.require_zero, max_drop)
    return code


if __name__ == "__main__":
    sys.exit(main())
