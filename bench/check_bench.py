#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly produced benchmark JSON against a checked-in baseline
and exits nonzero when any throughput metric drops by more than the
allowed fraction. Built for BENCH_serve.json (a list of objects keyed by
"bench") but accepts any file in that shape, including a single top-level
object (BENCH_net.json).

Usage:
  bench/check_bench.py --baseline BENCH_serve.json --current /tmp/new.json
  bench/check_bench.py ... --max-drop 0.15 --metric events_per_second

Only higher-is-better metrics are gated (default: events_per_second and
scores_per_second). Entries present in only one of the two files are
reported but do not fail the gate — benchmarks come and go; losing a
baseline row is a review concern, not a perf regression. Increases are
never failures.

The default --max-drop of 0.15 suits a quiet machine; CI runners are
noisy and pass a looser value.
"""

import argparse
import json
import sys


def load_entries(path):
    """Returns {key: entry} for a bench JSON file.

    The file is either a list of objects or a single object. Each object
    is keyed by its "bench" field plus the "variant" field when present
    (BENCH_alloc.json carries several variants per bench name). Objects
    without a "bench" field are skipped.
    """
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = [doc]
    entries = {}
    for obj in doc:
        if not isinstance(obj, dict) or "bench" not in obj:
            continue
        key = obj["bench"]
        if "variant" in obj:
            key = f"{key}/{obj['variant']}"
        entries[key] = obj
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced JSON to gate")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="allowed fractional drop per metric "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--metric", action="append", default=None,
                        help="higher-is-better metric to gate (repeatable; "
                             "default: events_per_second, scores_per_second)")
    args = parser.parse_args()
    metrics = args.metric or ["events_per_second", "scores_per_second"]

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)

    failures = []
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            print(f"note: {key} in baseline but not in current run")
            continue
        for metric in metrics:
            base = baseline[key].get(metric)
            cur = current[key].get(metric)
            if base is None or cur is None or base <= 0:
                continue
            compared += 1
            drop = 1.0 - cur / base
            marker = ""
            if drop > args.max_drop:
                failures.append((key, metric, base, cur, drop))
                marker = "  << REGRESSION"
            print(f"{key:34s} {metric:20s} {base:12.1f} -> {cur:12.1f} "
                  f"({-drop:+7.1%}){marker}")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: {key} in current run but not in baseline "
              f"(new benchmark? refresh the baseline)")

    if compared == 0:
        print("error: no comparable metrics between baseline and current",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.max_drop:.0%}:", file=sys.stderr)
        for key, metric, base, cur, drop in failures:
            print(f"  {key} {metric}: {base:.1f} -> {cur:.1f} "
                  f"(-{drop:.1%})", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} metric comparisons within {args.max_drop:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
