// Network load generator: drives a live serve_server over real TCP sockets
// with multi-connection replayed traffic and records client-observed
// throughput, latency quantiles, and the overload (backpressure) rate to
// BENCH_net.json, alongside the server's own metrics fetched over the
// METRICS RPC.
//
//   $ ./build/examples/serve_server --port=7471 &
//   $ ./build/bench/bench_net --port=7471 --shutdown=1
//
// Sessions are partitioned across connections by session id (the protocol's
// session-affinity contract: all events of a session ride one connection,
// in order). Each connection ships batched event frames, pipelines score
// requests, honours OVERLOADED backpressure by draining results before
// resending the shed tail, and measures:
//   * ingest latency — send of an INGEST_BATCH to its ack (one RTT + server
//     dispatch),
//   * score latency — send of the batch carrying a Score to arrival of its
//     SCORE_RESULT (queueing + micro-batching + scoring + return trip).
//
// Flags: --host=A --port=N    server address (port required)
//        --connections=N      client connections/threads (default 4)
//        --sessions=N         replayed sessions (default 60)
//        --score_every=N      mid-session score cadence in edges (default 8)
//        --batch=N            events per INGEST_BATCH frame (default 64)
//        --json=PATH          output (default BENCH_net.json)
//        --shutdown=0|1       send SHUTDOWN when done (default 0)
//        --parity_sample=N    sessions re-replayed for parity (default 5)
// Exits nonzero when no session was scored, when the parity sample check
// could not run, when any re-replayed score differs bitwise from the load
// phase, or when the server reported protocol errors (CI smoke contract).

#include <atomic>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "net/client.h"
#include "serve/metrics.h"
#include "serve/replay.h"
#include "util/stopwatch.h"

namespace data = tpgnn::data;
namespace net = tpgnn::net;
namespace serve = tpgnn::serve;

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

// (session_id, edges_scored) -> logit from the load phase; scoring is a
// pure function of the session's event prefix, so a re-replay of the same
// session must reproduce these bits exactly.
using ScoreTable = std::map<std::pair<uint64_t, int64_t>, float>;

struct SharedStats {
  serve::LatencyHistogram ingest_latency;  // Batch send -> ack, µs.
  serve::LatencyHistogram score_latency;   // Batch send -> result, µs.
  std::atomic<uint64_t> events_sent{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> overloads{0};
  std::atomic<uint64_t> scores_ok{0};
  std::atomic<uint64_t> scores_failed{0};
  std::atomic<uint64_t> errors{0};
  std::mutex mu;
  ScoreTable scores;  // Guarded by mu.
};

size_t CountScores(const std::vector<serve::Event>& events, size_t limit) {
  size_t scores = 0;
  for (size_t i = 0; i < limit && i < events.size(); ++i) {
    if (events[i].kind == serve::Event::Kind::kScore) {
      ++scores;
    }
  }
  return scores;
}

// One connection's worth of traffic: batched frames with overload retries,
// FIFO timestamp matching for per-score latency.
void RunConnection(const net::ClientOptions& options,
                   const std::vector<serve::Event>& events, size_t batch_size,
                   const tpgnn::Stopwatch& clock, SharedStats* stats) {
  net::Client client(options);
  if (tpgnn::Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    stats->errors.fetch_add(1);
    return;
  }
  std::deque<double> score_sent_micros;  // FIFO, matches result order.

  auto collect = [&]() {
    const double now = clock.ElapsedMicros();
    for (const serve::ScoreResult& result : client.TakeResults()) {
      if (!score_sent_micros.empty()) {
        stats->score_latency.Record(now - score_sent_micros.front());
        score_sent_micros.pop_front();
      }
      if (result.status.ok()) {
        stats->scores_ok.fetch_add(1);
        std::lock_guard<std::mutex> lock(stats->mu);
        stats->scores[{result.session_id, result.edges_scored}] = result.logit;
      } else {
        stats->scores_failed.fetch_add(1);
      }
    }
  };

  size_t pos = 0;
  int stalls = 0;
  while (pos < events.size()) {
    const size_t take = std::min(batch_size, events.size() - pos);
    const std::vector<serve::Event> slice(
        events.begin() + static_cast<ptrdiff_t>(pos),
        events.begin() + static_cast<ptrdiff_t>(pos + take));
    const double sent_micros = clock.ElapsedMicros();
    uint64_t applied = 0;
    tpgnn::Status st = client.IngestBatch(slice, &applied);
    stats->batches.fetch_add(1);
    stats->events_sent.fetch_add(applied);
    const size_t applied_scores =
        CountScores(slice, static_cast<size_t>(applied));
    for (size_t i = 0; i < applied_scores; ++i) {
      score_sent_micros.push_back(sent_micros);
    }
    pos += static_cast<size_t>(applied);
    if (st.ok()) {
      stats->ingest_latency.Record(clock.ElapsedMicros() - sent_micros);
      collect();
      stalls = 0;
      continue;
    }
    if (st.code() == tpgnn::StatusCode::kOverloaded) {
      stats->overloads.fetch_add(1);
      if (client.inflight_scores() > 0) {
        if (tpgnn::Status d = client.DrainResults(); !d.ok()) {
          std::fprintf(stderr, "drain failed: %s\n", d.ToString().c_str());
          stats->errors.fetch_add(1);
          return;
        }
      }
      collect();
      stalls = applied > 0 ? 0 : stalls + 1;
      if (stalls > 200) {
        std::fprintf(stderr, "stuck in overload, giving up\n");
        stats->errors.fetch_add(1);
        return;
      }
      continue;
    }
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    stats->errors.fetch_add(1);
    return;
  }
  if (tpgnn::Status s = client.DrainResults(); !s.ok()) {
    std::fprintf(stderr, "final drain failed: %s\n", s.ToString().c_str());
    stats->errors.fetch_add(1);
  }
  collect();
}

// Parity sample check: re-replays up to `sample` sessions that produced OK
// scores during the load phase and demands bit-identical logits the second
// time around (scoring is a pure function of the session's event prefix).
// Returns false when the check could not run at all — the caller must treat
// that as a failure, not a pass.
bool ReplaySessionsForParity(const net::ClientOptions& options,
                             const std::vector<serve::Event>& all_events,
                             const ScoreTable& reference, size_t sample,
                             size_t* sessions_checked, size_t* scores_compared,
                             size_t* mismatches) {
  *sessions_checked = 0;
  *scores_compared = 0;
  *mismatches = 0;
  std::vector<uint64_t> picked;  // The table is sorted by session id.
  for (const auto& [key, logit] : reference) {
    (void)logit;
    if (picked.empty() || picked.back() != key.first) {
      picked.push_back(key.first);
      if (picked.size() >= sample) {
        break;
      }
    }
  }
  if (picked.empty()) {
    return false;
  }
  net::Client client(options);
  if (tpgnn::Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "parity connect failed: %s\n", s.ToString().c_str());
    return false;
  }
  for (uint64_t session_id : picked) {
    std::vector<serve::Event> events;
    for (const serve::Event& event : all_events) {
      if (event.session_id == session_id) {
        events.push_back(event);
      }
    }
    size_t pos = 0;
    int stalls = 0;
    while (pos < events.size()) {
      const std::vector<serve::Event> slice(
          events.begin() + static_cast<ptrdiff_t>(pos), events.end());
      uint64_t applied = 0;
      tpgnn::Status st = client.IngestBatch(slice, &applied);
      pos += static_cast<size_t>(applied);
      if (st.ok()) {
        stalls = 0;
        continue;
      }
      if (st.code() != tpgnn::StatusCode::kOverloaded || ++stalls > 200) {
        std::fprintf(stderr, "parity replay failed: %s\n",
                     st.ToString().c_str());
        return false;
      }
      if (tpgnn::Status d = client.DrainResults(); !d.ok()) {
        return false;
      }
    }
    ++*sessions_checked;
  }
  if (tpgnn::Status s = client.DrainResults(); !s.ok()) {
    std::fprintf(stderr, "parity drain failed: %s\n", s.ToString().c_str());
    return false;
  }
  for (const serve::ScoreResult& result : client.TakeResults()) {
    ++*scores_compared;
    if (!result.status.ok()) {
      ++*mismatches;
      continue;
    }
    auto it = reference.find({result.session_id, result.edges_scored});
    if (it == reference.end() || it->second != result.logit) {
      ++*mismatches;
    }
  }
  return *scores_compared > 0;
}

// Pulls `"name": <integer>` out of the server's metrics JSON. Returns false
// when the field is absent (e.g. the METRICS RPC failed).
bool ExtractJsonInt(const std::string& json, const std::string& name,
                    uint64_t* value) {
  const std::string needle = "\"" + name + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  size_t pos = at + needle.size();
  while (pos < json.size() && json[pos] == ' ') {
    ++pos;
  }
  uint64_t parsed = 0;
  bool any = false;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    parsed = parsed * 10 + static_cast<uint64_t>(json[pos] - '0');
    any = true;
    ++pos;
  }
  if (!any) {
    return false;
  }
  *value = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = FlagValue(argc, argv, "host", "127.0.0.1");
  const int64_t port = FlagInt(argc, argv, "port", 0);
  const int64_t connections = FlagInt(argc, argv, "connections", 4);
  const int64_t sessions = FlagInt(argc, argv, "sessions", 60);
  const int64_t score_every = FlagInt(argc, argv, "score_every", 8);
  const int64_t batch = FlagInt(argc, argv, "batch", 64);
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_net.json");
  const bool shutdown_server = FlagInt(argc, argv, "shutdown", 0) != 0;
  const int64_t parity_sample = FlagInt(argc, argv, "parity_sample", 5);
  if (port <= 0) {
    std::fprintf(stderr, "usage: bench_net --port=N [--host=A] ...\n");
    return 2;
  }

  // Held-out seed, same generator family as the quickstart training set.
  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/17);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);

  // Session affinity: all events of a session go to one connection.
  std::vector<std::vector<serve::Event>> per_connection(
      static_cast<size_t>(connections));
  for (const serve::Event& event : replayer.events()) {
    per_connection[event.session_id % static_cast<uint64_t>(connections)]
        .push_back(event);
  }
  std::printf("driving %s:%lld with %lld connections, %zu sessions, "
              "%zu events, %zu score requests\n",
              host.c_str(), static_cast<long long>(port),
              static_cast<long long>(connections), replayer.num_sessions(),
              replayer.events().size(), replayer.num_score_requests());

  net::ClientOptions client_options;
  client_options.host = host;
  client_options.port = static_cast<int>(port);

  SharedStats stats;
  tpgnn::Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int64_t c = 0; c < connections; ++c) {
    workers.emplace_back(RunConnection, client_options,
                         std::cref(per_connection[static_cast<size_t>(c)]),
                         static_cast<size_t>(batch), std::cref(clock),
                         &stats);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall_seconds = clock.ElapsedSeconds();

  // Parity sample: a handful of sessions re-scored on a fresh connection
  // must reproduce the load phase's logits bit-for-bit. Skipping this check
  // (no OK scores, connect failure) is itself a failure — a smoke run that
  // never validated a score proves nothing.
  size_t parity_sessions = 0;
  size_t parity_scores = 0;
  size_t parity_mismatches = 0;
  bool parity_ran = true;
  if (parity_sample > 0) {
    parity_ran = ReplaySessionsForParity(
        client_options, replayer.events(), stats.scores,
        static_cast<size_t>(parity_sample), &parity_sessions, &parity_scores,
        &parity_mismatches);
  }

  // Server-side view over the METRICS RPC (and optionally a shutdown).
  std::string server_metrics = "{}";
  {
    net::Client control(client_options);
    if (control.Connect().ok()) {
      control.GetMetricsJson(&server_metrics);
      if (shutdown_server) {
        control.Shutdown();
      }
    }
  }

  const uint64_t scores_ok = stats.scores_ok.load();
  const uint64_t events_sent = stats.events_sent.load();
  const uint64_t batches = stats.batches.load();
  const uint64_t overloads = stats.overloads.load();
  const serve::LatencyHistogram::Snapshot ingest = stats.ingest_latency.Snap();
  const serve::LatencyHistogram::Snapshot score = stats.score_latency.Snap();
  const double overload_rate =
      batches + overloads > 0
          ? static_cast<double>(overloads) /
                static_cast<double>(batches + overloads)
          : 0.0;

  std::printf("%8.0f events/s %8.0f scores/s  ingest p50/p95/p99 "
              "%5.0f/%5.0f/%5.0f us  score p50/p95/p99 %5.0f/%5.0f/%5.0f us"
              "  overload rate %.3f\n",
              events_sent / wall_seconds, scores_ok / wall_seconds,
              ingest.PercentileMicros(0.5), ingest.PercentileMicros(0.95),
              ingest.PercentileMicros(0.99), score.PercentileMicros(0.5),
              score.PercentileMicros(0.95), score.PercentileMicros(0.99),
              overload_rate);

  std::ostringstream out;
  out << "{\"bench\": \"net\""
      << ", \"connections\": " << connections
      << ", \"sessions\": " << replayer.num_sessions()
      << ", \"events\": " << events_sent
      << ", \"scores\": " << scores_ok
      << ", \"scores_failed\": " << stats.scores_failed.load()
      << ", \"wall_seconds\": " << wall_seconds
      << ", \"events_per_second\": " << events_sent / wall_seconds
      << ", \"scores_per_second\": " << scores_ok / wall_seconds
      << ", \"ingest_p50_us\": " << ingest.PercentileMicros(0.5)
      << ", \"ingest_p95_us\": " << ingest.PercentileMicros(0.95)
      << ", \"ingest_p99_us\": " << ingest.PercentileMicros(0.99)
      << ", \"score_p50_us\": " << score.PercentileMicros(0.5)
      << ", \"score_p95_us\": " << score.PercentileMicros(0.95)
      << ", \"score_p99_us\": " << score.PercentileMicros(0.99)
      << ", \"overloads\": " << overloads
      << ", \"overload_rate\": " << overload_rate
      << ", \"parity_sessions\": " << parity_sessions
      << ", \"parity_scores\": " << parity_scores
      << ", \"parity_mismatches\": " << parity_mismatches
      << ", \"server_metrics\": " << server_metrics << "}";

  std::ofstream file(json_path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  file << out.str() << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (stats.errors.load() > 0) {
    std::fprintf(stderr, "smoke check failed: %llu connection errors\n",
                 static_cast<unsigned long long>(stats.errors.load()));
    return 1;
  }
  if (scores_ok == 0) {
    std::fprintf(stderr, "smoke check failed: no session was scored\n");
    return 1;
  }
  if (parity_sample > 0) {
    if (!parity_ran) {
      std::fprintf(stderr,
                   "smoke check failed: parity sample check was skipped\n");
      return 1;
    }
    if (parity_mismatches > 0) {
      std::fprintf(stderr,
                   "smoke check failed: %zu parity mismatches over %zu "
                   "re-replayed scores\n",
                   parity_mismatches, parity_scores);
      return 1;
    }
    std::printf("parity sample: %zu sessions, %zu scores bit-identical\n",
                parity_sessions, parity_scores);
  }
  uint64_t protocol_errors = 0;
  if (!ExtractJsonInt(server_metrics, "protocol_errors", &protocol_errors)) {
    std::fprintf(stderr,
                 "smoke check failed: METRICS RPC reported no "
                 "protocol_errors field\n");
    return 1;
  }
  if (protocol_errors > 0) {
    std::fprintf(stderr,
                 "smoke check failed: server saw %llu protocol errors\n",
                 static_cast<unsigned long long>(protocol_errors));
    return 1;
  }
  return 0;
}
