// Regenerates Fig. 6: running time (per graph, microseconds) vs F1 Score of
// the continuous DGNNs (TGAT, DyGNN, TGN, GraphMixer, TP-GNN) on four
// datasets. Expected shape: DyGNN is the slowest everywhere; GraphMixer is
// among the fastest; TP-GNN dominates the upper-left (fast and accurate)
// region except on the dense Brightkite graphs where its per-edge cost
// shows (Sec. V-G).

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace baselines = tpgnn::baselines;

int main() {
  const bench::BenchSettings settings = bench::LoadSettings();
  bench::PrintHeader("Fig. 6: runtime vs F1 of continuous DGNNs", settings);
  const eval::ExperimentOptions options =
      bench::MakeExperimentOptions(settings);

  const std::vector<data::DatasetSpec> specs = {
      data::ForumJavaSpec(), data::HdfsSpec(), data::GowallaSpec(),
      data::BrightkiteSpec()};
  tpgnn::Stopwatch wall;
  std::vector<bench::BenchCell> cells;
  for (const data::DatasetSpec& spec : specs) {
    data::TrainTestSplit split = bench::PrepareDataset(spec, settings);
    baselines::ContinuousOptions c;
    std::vector<std::pair<std::string, eval::ClassifierFactory>> models = {
        {"TGAT",
         [c](uint64_t seed) {
           return std::make_unique<baselines::Tgat>(c, seed);
         }},
        {"DyGNN",
         [c](uint64_t seed) {
           return std::make_unique<baselines::DyGnn>(c, seed);
         }},
        {"TGN",
         [c](uint64_t seed) {
           return std::make_unique<baselines::Tgn>(c, seed);
         }},
        {"GraphMixer",
         [c](uint64_t seed) {
           return std::make_unique<baselines::GraphMixer>(c, seed);
         }},
        {"TP-GNN-SUM",
         bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kSum))},
        {"TP-GNN-GRU",
         bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kGru))},
    };
    // Cells run concurrently on the pool; scatter points print in model
    // order once the dataset drains.
    std::vector<eval::ExperimentResult> results =
        bench::RunCellsParallel(spec.name, models, split, options, cells);
    std::printf("\n== %s: scatter points (us/graph, F1%%) ==\n",
                spec.name.c_str());
    for (size_t i = 0; i < models.size(); ++i) {
      std::printf("%-12s us/graph=%9.1f  F1=%6.2f\n", models[i].first.c_str(),
                  results[i].inference_micros_per_graph,
                  100.0 * results[i].metrics.mean.f1);
      std::fflush(stdout);
    }
  }
  bench::WriteBenchParallelJson("fig6_runtime", cells, wall.ElapsedSeconds());
  return 0;
}
