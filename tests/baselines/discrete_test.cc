#include "baselines/discrete.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace tpgnn::baselines {
namespace {

using graph::TemporalGraph;
using tensor::Tensor;

DiscreteOptions SmallOptions() {
  DiscreteOptions options;
  options.hidden_dim = 8;
  options.num_snapshots = 4;
  return options;
}

TemporalGraph SmallGraph() {
  TemporalGraph g(5, 3);
  for (int64_t v = 0; v < 5; ++v) {
    g.SetNodeFeature(v, {0.1f * static_cast<float>(v), 0.3f, 0.0f});
  }
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 3.0);
  g.AddEdge(2, 3, 6.0);
  g.AddEdge(3, 4, 9.0);
  g.AddEdge(4, 0, 10.0);
  return g;
}

template <typename Model>
void ExpectBasicContract(Model& model, const std::string& expected_name) {
  Rng rng(1);
  TemporalGraph g = SmallGraph();
  Tensor logit = model.ForwardLogit(g, false, rng);
  EXPECT_EQ(logit.numel(), 1);
  EXPECT_TRUE(std::isfinite(logit.item()));
  EXPECT_EQ(model.name(), expected_name);
  tensor::BinaryCrossEntropyWithLogits(logit, Tensor::Scalar(0.0f)).Backward();
  float total = 0.0f;
  for (const auto& p : model.TrainableParameters()) {
    for (float gv : p.grad()) total += gv * gv;
  }
  EXPECT_GT(total, 0.0f);
}

TEST(EvolveGcnTest, BasicContract) {
  EvolveGcn model(SmallOptions(), 1);
  ExpectBasicContract(model, "EvolveGCN");
}

TEST(GcLstmTest, BasicContract) {
  GcLstm model(SmallOptions(), 2);
  ExpectBasicContract(model, "GC-LSTM");
}

TEST(AddGraphTest, BasicContract) {
  AddGraph model(SmallOptions(), 3);
  ExpectBasicContract(model, "AddGraph");
}

TEST(TaddyTest, BasicContract) {
  Taddy model(SmallOptions(), 4);
  ExpectBasicContract(model, "TADDY");
}

TEST(DiscreteModelsTest, SeeCrossSnapshotOrderButNotWithinWindowOrder) {
  // Two graphs whose edges differ only in order *within* one snapshot window
  // are indistinguishable; moving an edge *across* windows changes the
  // logit. This is exactly the information loss the paper describes.
  DiscreteOptions options = SmallOptions();
  options.num_snapshots = 2;  // Windows [0,5) and [5,10].
  TemporalGraph base(4, 3);
  base.SetNodeFeature(0, {0.9f, 0.1f, 0.0f});
  base.SetNodeFeature(1, {0.2f, 0.7f, 1.0f});
  base.SetNodeFeature(2, {0.5f, 0.4f, 0.0f});
  base.SetNodeFeature(3, {0.3f, 0.8f, 1.0f});
  base.AddEdge(0, 1, 1.0);
  base.AddEdge(1, 2, 2.0);
  base.AddEdge(2, 3, 7.0);

  // Swap order within window 1 (times 1 and 2 swap).
  TemporalGraph within = base;
  within.mutable_edges()[0].time = 2.0;
  within.mutable_edges()[1].time = 1.0;

  // Move the first edge into window 2.
  TemporalGraph across = base;
  across.mutable_edges()[0].time = 8.0;

  Rng rng(1);
  GcLstm model(options, 5);
  const float base_logit = model.ForwardLogit(base, false, rng).item();
  EXPECT_EQ(model.ForwardLogit(within, false, rng).item(), base_logit);
  EXPECT_NE(model.ForwardLogit(across, false, rng).item(), base_logit);
}

TEST(DiscreteModelsTest, SnapshotCountChangesBehaviour) {
  DiscreteOptions few = SmallOptions();
  few.num_snapshots = 2;
  DiscreteOptions many = SmallOptions();
  many.num_snapshots = 8;
  Rng rng(1);
  AddGraph model_few(few, 6);
  AddGraph model_many(many, 6);
  TemporalGraph g = SmallGraph();
  // Same seed, different discretisation: different models.
  EXPECT_NE(model_few.ForwardLogit(g, false, rng).item(),
            model_many.ForwardLogit(g, false, rng).item());
}

TEST(DiscreteModelsTest, HandlesEdgelessGraph) {
  Rng rng(1);
  TemporalGraph g(3, 3);
  EvolveGcn model(SmallOptions(), 7);
  EXPECT_TRUE(std::isfinite(model.ForwardLogit(g, false, rng).item()));
}

}  // namespace
}  // namespace tpgnn::baselines
