#include "baselines/baselines.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "eval/trainer.h"

namespace tpgnn::baselines {
namespace {

TEST(SuiteTest, TwelveBaselinesInPaperOrder) {
  auto factories = AllBaselineFactories({});
  ASSERT_EQ(factories.size(), 12u);
  EXPECT_EQ(factories.front().first, "Spectral Clustering");
  EXPECT_EQ(factories.back().first, "GraphMixer");
  std::set<std::string> names;
  for (const auto& [name, factory] : factories) {
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 12u);  // All distinct.
}

TEST(SuiteTest, FactoriesBuildModelsMatchingNames) {
  BaselineSuiteOptions options;
  options.hidden_dim = 8;
  options.time_dim = 4;
  options.num_snapshots = 3;
  for (const auto& [name, factory] : AllBaselineFactories(options)) {
    auto model = factory(/*seed=*/1);
    EXPECT_EQ(model->name(), name);
  }
}

TEST(SuiteTest, EveryBaselineRunsOnRealisticGraphs) {
  BaselineSuiteOptions options;
  options.hidden_dim = 8;
  options.time_dim = 4;
  options.num_snapshots = 3;
  auto dataset = data::MakeDataset(data::HdfsSpec(), 4, /*seed=*/5);
  Rng rng(1);
  for (const auto& [name, factory] : AllBaselineFactories(options)) {
    auto model = factory(2);
    for (const auto& sample : dataset) {
      float logit = model->ForwardLogit(sample.graph, false, rng).item();
      EXPECT_TRUE(std::isfinite(logit)) << name;
    }
  }
}

TEST(SuiteTest, PlusGlobalFactories) {
  BaselineSuiteOptions options;
  options.hidden_dim = 8;
  options.time_dim = 4;
  auto factories = ContinuousPlusGlobalFactories(options, /*global=*/8);
  ASSERT_EQ(factories.size(), 4u);
  for (const auto& [name, factory] : factories) {
    auto model = factory(1);
    EXPECT_EQ(model->name(), name);
    EXPECT_NE(name.find("+G"), std::string::npos);
  }
}

TEST(SuiteTest, BaselinesAreTrainable) {
  // Every baseline must train without crashing and produce a valid metric.
  BaselineSuiteOptions options;
  options.hidden_dim = 8;
  options.time_dim = 4;
  options.num_snapshots = 3;
  auto dataset = data::MakeDataset(data::HdfsSpec(), 20, /*seed=*/6);
  auto split = data::SplitDataset(dataset, 0.5);
  eval::TrainOptions train_options;
  train_options.epochs = 1;
  for (const auto& [name, factory] : AllBaselineFactories(options)) {
    auto model = factory(3);
    eval::TrainClassifier(*model, split.train, train_options);
    eval::Metrics m = eval::EvaluateClassifier(*model, split.test);
    EXPECT_GE(m.accuracy, 0.0) << name;
    EXPECT_LE(m.accuracy, 1.0) << name;
  }
}

}  // namespace
}  // namespace tpgnn::baselines
