#include "baselines/static_gnn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/spectral.h"
#include "tensor/ops.h"

namespace tpgnn::baselines {
namespace {

using graph::TemporalGraph;
using tensor::Tensor;

TemporalGraph SmallGraph() {
  TemporalGraph g(4, 3);
  g.SetNodeFeature(0, {0.1f, 0.5f, 0.0f});
  g.SetNodeFeature(1, {0.2f, 0.4f, 0.0f});
  g.SetNodeFeature(2, {0.3f, 0.3f, 1.0f});
  g.SetNodeFeature(3, {0.4f, 0.2f, 0.0f});
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  return g;
}

StaticGnnOptions SmallOptions() {
  StaticGnnOptions options;
  options.hidden_dim = 8;
  return options;
}

template <typename Model>
void ExpectBasicContract(Model& model) {
  Rng rng(1);
  TemporalGraph g = SmallGraph();
  Tensor logit = model.ForwardLogit(g, /*training=*/false, rng);
  EXPECT_EQ(logit.numel(), 1);
  EXPECT_TRUE(std::isfinite(logit.item()));
  // Gradient must reach every parameter.
  tensor::BinaryCrossEntropyWithLogits(logit, Tensor::Scalar(1.0f)).Backward();
  float total = 0.0f;
  for (const auto& p : model.TrainableParameters()) {
    for (float gv : p.grad()) total += gv * gv;
  }
  EXPECT_GT(total, 0.0f);
}

TEST(GcnTest, BasicContract) {
  Gcn model(SmallOptions(), 1);
  ExpectBasicContract(model);
  EXPECT_EQ(model.name(), "GCN");
}

TEST(GraphSageTest, BasicContract) {
  GraphSage model(SmallOptions(), 2);
  ExpectBasicContract(model);
  EXPECT_EQ(model.name(), "GraphSage");
}

TEST(GatTest, BasicContract) {
  Gat model(SmallOptions(), 3);
  ExpectBasicContract(model);
  EXPECT_EQ(model.name(), "GAT");
}

TEST(StaticModelsTest, BlindToTimestampPermutation) {
  // The defining property of the static baselines: identical topology with
  // different timestamps yields the *same* logit.
  TemporalGraph g1 = SmallGraph();
  TemporalGraph g2 = SmallGraph();
  g2.mutable_edges()[0].time = 3.0;
  g2.mutable_edges()[2].time = 1.0;
  Rng rng(1);
  Gcn gcn(SmallOptions(), 4);
  EXPECT_EQ(gcn.ForwardLogit(g1, false, rng).item(),
            gcn.ForwardLogit(g2, false, rng).item());
  GraphSage sage(SmallOptions(), 5);
  EXPECT_EQ(sage.ForwardLogit(g1, false, rng).item(),
            sage.ForwardLogit(g2, false, rng).item());
  Gat gat(SmallOptions(), 6);
  EXPECT_EQ(gat.ForwardLogit(g1, false, rng).item(),
            gat.ForwardLogit(g2, false, rng).item());
}

TEST(StaticModelsTest, SensitiveToStructure) {
  TemporalGraph g1 = SmallGraph();
  TemporalGraph g2 = SmallGraph();
  g2.mutable_edges()[2].dst = 0;  // Rewire.
  Rng rng(1);
  Gcn gcn(SmallOptions(), 7);
  EXPECT_NE(gcn.ForwardLogit(g1, false, rng).item(),
            gcn.ForwardLogit(g2, false, rng).item());
}

TEST(StaticModelsTest, GlobalReadoutVariantHasExtraParams) {
  Gcn plain(SmallOptions(), 8);
  Gcn plus_g(SmallOptions(), 8, /*global_hidden_dim=*/8);
  EXPECT_EQ(plus_g.name(), "GCN+G");
  EXPECT_GT(plus_g.ParameterCount(), plain.ParameterCount());
}

TEST(SpectralTest, BasicContract) {
  SpectralClustering model(8, 1);
  ExpectBasicContract(model);
  EXPECT_EQ(model.name(), "Spectral Clustering");
}

TEST(SpectralTest, IgnoresNodeFeatures) {
  TemporalGraph g1 = SmallGraph();
  TemporalGraph g2 = SmallGraph();
  g2.SetNodeFeature(0, {9.0f, 9.0f, 9.0f});
  SpectralClustering model(8, 2);
  Rng rng(1);
  EXPECT_EQ(model.ForwardLogit(g1, false, rng).item(),
            model.ForwardLogit(g2, false, rng).item());
}

TEST(SpectralTest, SpectrumDetectsDisconnection) {
  TemporalGraph connected(4, 3);
  connected.AddEdge(0, 1, 1.0);
  connected.AddEdge(1, 2, 2.0);
  connected.AddEdge(2, 3, 3.0);
  TemporalGraph disconnected(4, 3);
  disconnected.AddEdge(0, 1, 1.0);
  disconnected.AddEdge(2, 3, 2.0);
  SpectralClustering model(4, 3);
  Tensor f1 = model.SpectralFeatures(connected);
  Tensor f2 = model.SpectralFeatures(disconnected);
  // Second eigenvalue (algebraic connectivity) ~0 only when disconnected.
  EXPECT_GT(f1.at({1}), 1e-4f);
  EXPECT_NEAR(f2.at({1}), 0.0f, 1e-5f);
}

}  // namespace
}  // namespace tpgnn::baselines
