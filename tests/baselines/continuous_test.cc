#include "baselines/continuous.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace tpgnn::baselines {
namespace {

using graph::TemporalGraph;
using tensor::Tensor;

ContinuousOptions SmallOptions() {
  ContinuousOptions options;
  options.hidden_dim = 8;
  options.time_dim = 4;  // hidden + time = 12, divisible by 2 heads.
  options.num_neighbors = 5;
  return options;
}

TemporalGraph SmallGraph() {
  TemporalGraph g(5, 3);
  for (int64_t v = 0; v < 5; ++v) {
    g.SetNodeFeature(v, {0.1f * static_cast<float>(v), 0.3f, 0.0f});
  }
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  g.AddEdge(3, 4, 4.0);
  g.AddEdge(4, 0, 5.0);
  return g;
}

template <typename Model>
void ExpectBasicContract(Model& model, const std::string& expected_name) {
  Rng rng(1);
  TemporalGraph g = SmallGraph();
  Tensor logit = model.ForwardLogit(g, false, rng);
  EXPECT_EQ(logit.numel(), 1);
  EXPECT_TRUE(std::isfinite(logit.item()));
  EXPECT_EQ(model.name(), expected_name);
  tensor::BinaryCrossEntropyWithLogits(logit, Tensor::Scalar(1.0f)).Backward();
  float total = 0.0f;
  for (const auto& p : model.TrainableParameters()) {
    for (float gv : p.grad()) total += gv * gv;
  }
  EXPECT_GT(total, 0.0f);
}

TEST(TgatTest, BasicContract) {
  Tgat model(SmallOptions(), 1);
  ExpectBasicContract(model, "TGAT");
}

TEST(TgnTest, BasicContract) {
  Tgn model(SmallOptions(), 2);
  ExpectBasicContract(model, "TGN");
}

TEST(DyGnnTest, BasicContract) {
  DyGnn model(SmallOptions(), 3);
  ExpectBasicContract(model, "DyGNN");
}

TEST(GraphMixerTest, BasicContract) {
  GraphMixer model(SmallOptions(), 4);
  ExpectBasicContract(model, "GraphMixer");
}

TEST(ContinuousModelsTest, SensitiveToTimestamps) {
  // Unlike the static family, continuous models react to pure timestamp
  // changes with identical topology.
  TemporalGraph g1 = SmallGraph();
  TemporalGraph g2 = SmallGraph();
  for (auto& e : g2.mutable_edges()) {
    e.time = 6.0 - e.time;  // Reverse the order.
  }
  Rng rng(1);
  Tgn tgn(SmallOptions(), 5);
  EXPECT_NE(tgn.ForwardLogit(g1, false, rng).item(),
            tgn.ForwardLogit(g2, false, rng).item());
  Tgat tgat(SmallOptions(), 6);
  EXPECT_NE(tgat.ForwardLogit(g1, false, rng).item(),
            tgat.ForwardLogit(g2, false, rng).item());
  DyGnn dygnn(SmallOptions(), 7);
  EXPECT_NE(dygnn.ForwardLogit(g1, false, rng).item(),
            dygnn.ForwardLogit(g2, false, rng).item());
  GraphMixer mixer(SmallOptions(), 8);
  EXPECT_NE(mixer.ForwardLogit(g1, false, rng).item(),
            mixer.ForwardLogit(g2, false, rng).item());
}

TEST(ContinuousModelsTest, PlusGlobalVariantsWork) {
  Rng rng(1);
  TemporalGraph g = SmallGraph();
  Tgat tgat(SmallOptions(), 9, /*global_hidden_dim=*/8);
  EXPECT_EQ(tgat.name(), "TGAT+G");
  EXPECT_TRUE(std::isfinite(tgat.ForwardLogit(g, false, rng).item()));
  GraphMixer mixer(SmallOptions(), 10, /*global_hidden_dim=*/8);
  EXPECT_EQ(mixer.name(), "GraphMixer+G");
  EXPECT_TRUE(std::isfinite(mixer.ForwardLogit(g, false, rng).item()));
}

TEST(ContinuousModelsTest, HandlesEdgelessGraph) {
  Rng rng(1);
  TemporalGraph g(3, 3);
  Tgat tgat(SmallOptions(), 11);
  EXPECT_TRUE(std::isfinite(tgat.ForwardLogit(g, false, rng).item()));
  Tgn tgn(SmallOptions(), 12);
  EXPECT_TRUE(std::isfinite(tgn.ForwardLogit(g, false, rng).item()));
  GraphMixer mixer(SmallOptions(), 13);
  EXPECT_TRUE(std::isfinite(mixer.ForwardLogit(g, false, rng).item()));
  DyGnn dygnn(SmallOptions(), 14);
  EXPECT_TRUE(std::isfinite(dygnn.ForwardLogit(g, false, rng).item()));
}

TEST(ContinuousModelsTest, SelfLoopGraph) {
  Rng rng(1);
  TemporalGraph g(2, 3);
  g.AddEdge(0, 0, 1.0);
  g.AddEdge(0, 1, 2.0);
  Tgn tgn(SmallOptions(), 15);
  EXPECT_TRUE(std::isfinite(tgn.ForwardLogit(g, false, rng).item()));
  DyGnn dygnn(SmallOptions(), 16);
  EXPECT_TRUE(std::isfinite(dygnn.ForwardLogit(g, false, rng).item()));
}

}  // namespace
}  // namespace tpgnn::baselines
