// Determinism and shape contracts of the streaming workload generator:
// same seed => byte-identical streams (across runs and across threads),
// different seeds => disjoint session ids, and MaterializeSession
// reproduces exactly the per-session content the stream emitted.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/event.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace tpgnn::workload {
namespace {

// Pulls `count` events (or the whole stream if it is shorter) and returns
// the canonical byte serialization.
std::string StreamBytes(const WorkloadOptions& options, size_t count) {
  WorkloadGenerator gen(options);
  std::string bytes;
  serve::Event event;
  for (size_t i = 0; i < count && gen.Next(&event); ++i) {
    AppendEventBytes(event, &bytes);
  }
  return bytes;
}

TEST(WorkloadGeneratorTest, SameSeedSameStreamAcrossRuns) {
  const WorkloadOptions options = PaperMixProfile(/*seed=*/42);
  const std::string first = StreamBytes(options, 20000);
  const std::string second = StreamBytes(options, 20000);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(WorkloadGeneratorTest, SameSeedSameStreamAcrossThreads) {
  const WorkloadOptions options = OverloadWaveProfile(/*seed=*/7);
  const std::string reference = StreamBytes(options, 10000);
  constexpr int kThreads = 4;
  std::vector<std::string> streams(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { streams[static_cast<size_t>(t)] =
                                      StreamBytes(options, 10000); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(streams[static_cast<size_t>(t)], reference) << "thread " << t;
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsProduceDisjointSessionIds) {
  constexpr uint64_t kSessions = 5000;
  std::set<uint64_t> ids_a, ids_b;
  for (uint64_t i = 0; i < kSessions; ++i) {
    ids_a.insert(SessionId(/*seed=*/1, i));
    ids_b.insert(SessionId(/*seed=*/2, i));
  }
  // Unique within each stream (the id map is bijective per seed)...
  EXPECT_EQ(ids_a.size(), kSessions);
  EXPECT_EQ(ids_b.size(), kSessions);
  // ...and disjoint across seeds.
  for (uint64_t id : ids_a) {
    ASSERT_EQ(ids_b.count(id), 0u) << "id collision across seeds: " << id;
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsProduceDifferentStreams) {
  WorkloadOptions a = MiniSoakProfile(/*seed=*/3);
  WorkloadOptions b = MiniSoakProfile(/*seed=*/4);
  EXPECT_NE(StreamBytes(a, 2000), StreamBytes(b, 2000));
}

TEST(WorkloadGeneratorTest, MaterializeMatchesStreamedSessionContent) {
  WorkloadOptions options = MiniSoakProfile(/*seed=*/11);
  options.num_sessions = 200;
  WorkloadGenerator gen(options);

  // Collect every session's streamed content from the interleaved stream.
  struct Observed {
    uint64_t id = 0;
    int64_t num_nodes = 0;
    int64_t feature_dim = 0;
    std::vector<std::vector<float>> features;
    std::vector<MaterializedSession::Edge> edges;
    bool ended = false;
    int label = -1;
  };
  std::map<uint64_t, Observed> observed;  // index -> content.
  serve::Event event;
  uint64_t index = 0;
  while (gen.Next(&event, &index)) {
    Observed& o = observed[index];
    switch (event.kind) {
      case serve::Event::Kind::kBegin:
        o.id = event.session_id;
        o.num_nodes = event.num_nodes;
        o.feature_dim = event.feature_dim;
        for (const serve::NodeInit& f : event.features) {
          o.features.push_back(f.features);
        }
        break;
      case serve::Event::Kind::kEdge:
        o.edges.push_back({event.src, event.dst, event.edge_time});
        break;
      case serve::Event::Kind::kScore:
        o.label = event.label;
        break;
      case serve::Event::Kind::kEnd:
        o.ended = true;
        break;
    }
  }
  ASSERT_EQ(observed.size(), options.num_sessions);

  // A fresh generator (no stream state) must materialize the same content.
  WorkloadGenerator fresh(options);
  size_t abandoned = 0;
  for (const auto& [idx, o] : observed) {
    const MaterializedSession m = fresh.MaterializeSession(idx);
    EXPECT_EQ(m.session_id, o.id) << "session " << idx;
    EXPECT_EQ(m.num_nodes, o.num_nodes);
    EXPECT_EQ(m.feature_dim, o.feature_dim);
    ASSERT_EQ(m.features.size(), o.features.size());
    for (size_t n = 0; n < m.features.size(); ++n) {
      EXPECT_EQ(m.features[n], o.features[n]) << "node " << n;
    }
    ASSERT_EQ(m.edges.size(), o.edges.size()) << "session " << idx;
    for (size_t k = 0; k < m.edges.size(); ++k) {
      EXPECT_EQ(m.edges[k].src, o.edges[k].src);
      EXPECT_EQ(m.edges[k].dst, o.edges[k].dst);
      EXPECT_EQ(m.edges[k].time, o.edges[k].time);
    }
    EXPECT_EQ(m.abandoned, !o.ended) << "session " << idx;
    if (o.label >= 0) {
      EXPECT_EQ(m.label, o.label);
    }
    abandoned += m.abandoned ? 1u : 0u;
  }
  // The mini profile abandons ~10%; make sure both branches were exercised.
  EXPECT_GT(abandoned, 0u);
  EXPECT_LT(abandoned, observed.size());
}

TEST(WorkloadGeneratorTest, StreamClockIsMonotoneAndSessionsOrdered) {
  WorkloadOptions options = EvictionChurnProfile(/*seed=*/5);
  options.num_sessions = 500;
  options.max_open_sessions = 16;  // Force arrival delays past the cap.
  WorkloadGenerator gen(options);
  serve::Event event;
  double last_time = 0.0;
  std::map<uint64_t, serve::Event::Kind> last_kind;
  std::map<uint64_t, double> last_edge_time;
  while (gen.Next(&event)) {
    EXPECT_GE(event.time, last_time);
    last_time = event.time;
    const auto it = last_kind.find(event.session_id);
    if (event.kind == serve::Event::Kind::kBegin) {
      EXPECT_EQ(it, last_kind.end()) << "double Begin";
    } else {
      ASSERT_NE(it, last_kind.end()) << "event before Begin";
      EXPECT_NE(it->second, serve::Event::Kind::kEnd) << "event after End";
    }
    if (event.kind == serve::Event::Kind::kEdge) {
      EXPECT_GE(event.edge_time, last_edge_time[event.session_id]);
      last_edge_time[event.session_id] = event.edge_time;
    }
    last_kind[event.session_id] = event.kind;
  }
}

TEST(WorkloadGeneratorTest, BoundedMemoryUnderUnboundedStream) {
  // An unbounded stream must not accumulate state beyond the open-session
  // cap: sessions_started grows but the generator's footprint is the slots
  // vector, which we can only observe indirectly — pull a long prefix and
  // check the stream keeps producing from a fixed set of open sessions.
  WorkloadOptions options = PaperMixProfile(/*seed=*/9);
  options.max_open_sessions = 32;
  WorkloadGenerator gen(options);
  serve::Event event;
  std::set<uint64_t> open;
  size_t max_open = 0;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(gen.Next(&event));
    if (event.kind == serve::Event::Kind::kBegin) {
      open.insert(event.session_id);
    } else if (event.kind == serve::Event::Kind::kEnd) {
      open.erase(event.session_id);
    }
    max_open = std::max(max_open, open.size());
  }
  // Abandoned sessions close generator slots without an End, so the set of
  // Begin-but-not-End ids can exceed the cap only by the abandoned ones
  // whose slots were reused; the cap itself binds concurrently *open*
  // generator slots. The coarse check: far more sessions started than the
  // cap, i.e. slots are being reused, not accumulated.
  EXPECT_GT(gen.sessions_started(), 1000u);
}

}  // namespace
}  // namespace tpgnn::workload
