// Tier-1 mini-soak: a deterministic ~2-second pass of the full soak
// harness — generated multi-tenant workload with waves and abandonment,
// live accounting/memory/SLO invariants, and sampled offline parity — so
// every merge exercises the same machinery the nightly paper-scale soak
// runs for minutes.

#include <gtest/gtest.h>

#include "core/config.h"
#include "workload/profiles.h"
#include "workload/soak.h"

namespace tpgnn::workload {
namespace {

core::TpGnnConfig TinyConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

SoakOptions MiniOptions(uint64_t seed) {
  SoakOptions options;
  options.workload = MiniSoakProfile(seed);
  options.workload.num_sessions = 1500;
  options.engine.num_shards = 4;
  options.engine.max_resident_sessions = 256;
  options.engine.idle_ttl_seconds = 5.0;
  options.engine.max_pending_scores = 256;
  options.engine.max_batch = 64;
  options.config = TinyConfig();
  options.checkpoint_every_events = 8000;
  options.warmup_events = 8000;
  options.parity_sample_rate = 1.0 / 16.0;
  return options;
}

TEST(SoakSmokeTest, CleanMiniSoakHoldsEveryInvariant) {
  const SoakOptions options = MiniOptions(/*seed=*/21);
  const SoakReport report = RunSoak(options);

  EXPECT_TRUE(report.ok()) << report.violations.size() << " violations; first: "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_EQ(report.sessions_started, 1500u);
  EXPECT_GT(report.events, 10000u);
  EXPECT_GT(report.scores_completed, 0u);
  // Parity actually ran: sampled sessions exist at a 1/16 rate over 1500
  // sessions, and none may mismatch.
  EXPECT_GT(report.parity_checks, 0u);
  EXPECT_EQ(report.parity_mismatches, 0u);
  // Checkpoints recorded bounded-memory telemetry.
  ASSERT_FALSE(report.checkpoints.empty());
  EXPECT_GT(report.checkpoints.back().rss_peak_kb, 0u);
  EXPECT_GT(report.checkpoints.back().arena_bytes_peak, 0u);
}

TEST(SoakSmokeTest, MiniSoakIsDeterministicInItsSeed) {
  // The serving-side metrics that are pure functions of the event stream
  // (scheduling-dependent quantities like eviction counts are not) must be
  // identical across two runs of the same seeded soak.
  const SoakReport a = RunSoak(MiniOptions(/*seed=*/33));
  const SoakReport b = RunSoak(MiniOptions(/*seed=*/33));
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sessions_started, b.sessions_started);
  EXPECT_EQ(a.final_metrics.edges_ingested, b.final_metrics.edges_ingested);
  EXPECT_EQ(a.final_metrics.sessions_begun, b.final_metrics.sessions_begun);
}

TEST(SoakSmokeTest, MiniSoakSurvivesArmedFailpoints) {
  // With Begin and score-enqueue faults injected the run sheds load, but
  // accounting stays exact and parity still holds for completed scores.
  SoakOptions options = MiniOptions(/*seed=*/55);
  options.failpoint_spec =
      "shard.begin=0.02:return_error,engine.score_enqueue=0.02:return_error";
  options.failpoint_seed = 5;
  const SoakReport report = RunSoak(options);

  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_GT(report.failpoint_fires, 0u);
  // Both sites inject kOverloaded, so fires surface as overload rejections
  // (absorbed by the driver's shed-and-retry path), never as corruption.
  EXPECT_GT(report.final_metrics.overload_rejections, 0u);
  EXPECT_EQ(report.parity_mismatches, 0u);
}

}  // namespace
}  // namespace tpgnn::workload
