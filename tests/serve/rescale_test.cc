// The tentpole contract of the invariant time basis: under monotone
// arrival, serving never refolds — a max-time move is absorbed by the
// finalize-time rescale (counted as state_rescales) and every per-prefix
// score is STILL bit-identical to the offline forward. The suite sweeps
// arrival order (monotone / duplicate timestamps / out-of-order) ×
// updater (SUM / GRU) × normalize_time × time basis, asserts the exact
// refold/rescale counters for each cell, and checks that the forced
// shard.rescale fallback (legacy replay) reproduces the rescale path
// bit-for-bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "model/registry.h"
#include "serve/session_shard.h"
#include "serve_test_util.h"
#include "util/failpoint.h"

namespace tpgnn::serve {
namespace {

enum class Arrival { kMonotone, kDuplicates, kOutOfOrder };

const char* ArrivalName(Arrival a) {
  switch (a) {
    case Arrival::kMonotone:
      return "monotone";
    case Arrival::kDuplicates:
      return "duplicates";
    case Arrival::kOutOfOrder:
      return "out_of_order";
  }
  return "?";
}

// A small fixed event stream over 4 nodes; timestamps per arrival pattern.
// kOutOfOrder dips below the running max twice (after edges 2 and 5).
std::vector<graph::TemporalEdge> StreamFor(Arrival arrival) {
  const std::vector<std::pair<int64_t, int64_t>> endpoints = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}, {2, 0}, {3, 1}};
  std::vector<double> times;
  switch (arrival) {
    case Arrival::kMonotone:
      times = {1.0, 2.0, 3.5, 4.0, 6.0, 7.5, 9.0, 11.0};
      break;
    case Arrival::kDuplicates:
      times = {1.0, 1.0, 2.0, 2.0, 2.0, 5.0, 5.0, 8.0};
      break;
    case Arrival::kOutOfOrder:
      times = {1.0, 4.0, 2.0, 5.0, 6.0, 3.0, 7.0, 9.0};
      break;
  }
  std::vector<graph::TemporalEdge> edges;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    edges.push_back({endpoints[i].first, endpoints[i].second, times[i]});
  }
  return edges;
}

struct Cell {
  core::Updater updater;
  bool normalize_time;
  core::TimeBasis basis;

  std::string Name() const {
    std::string s = updater == core::Updater::kSum ? "sum" : "gru";
    s += normalize_time ? "_norm" : "_raw";
    s += basis == core::TimeBasis::kInvariant ? "_invariant" : "_absolute";
    return s;
  }
};

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (core::Updater u : {core::Updater::kSum, core::Updater::kGru}) {
    for (bool norm : {true, false}) {
      for (core::TimeBasis b :
           {core::TimeBasis::kAbsolute, core::TimeBasis::kInvariant}) {
        cells.push_back({u, norm, b});
      }
    }
  }
  return cells;
}

core::TpGnnConfig CellConfig(const Cell& cell) {
  core::TpGnnConfig config = TinyServeConfig();
  config.updater = cell.updater;
  config.normalize_time = cell.normalize_time;
  config.time_basis = cell.basis;
  return config;
}

// Streams the cell's events through a shard, scoring after every edge and
// comparing bitwise against the offline forward over the same prefix.
// Returns the final metrics snapshot for counter assertions.
MetricsSnapshot RunPrefixParity(const Cell& cell, Arrival arrival) {
  model::ModelRegistry registry(CellConfig(cell), /*seed=*/5);
  core::TpGnnModel& model = registry.initial_model();
  Metrics metrics;
  SessionShard shard(registry, ShardOptions{}, &metrics);
  const std::vector<graph::TemporalEdge> stream = StreamFor(arrival);
  const int64_t num_nodes = 4;
  const int64_t feature_dim = model.config().feature_dim;

  graph::TemporalGraph prefix(num_nodes, feature_dim);
  for (int64_t node = 0; node < num_nodes; ++node) {
    std::vector<float> f(static_cast<size_t>(feature_dim),
                         0.25f * static_cast<float>(node + 1));
    prefix.SetNodeFeature(node, f);
  }
  EXPECT_TRUE(shard
                  .BeginSession(1, num_nodes, feature_dim,
                                AllNodeFeatures(prefix), /*now=*/0.0)
                  .ok());
  for (size_t k = 0; k < stream.size(); ++k) {
    const graph::TemporalEdge& e = stream[k];
    EXPECT_TRUE(shard.AddEdge(1, e.src, e.dst, e.time, /*now=*/0.0).ok());
    prefix.AddEdge(e.src, e.dst, e.time);
    ScoreResult result;
    EXPECT_TRUE(shard.Score(1, &result).ok());
    EXPECT_EQ(result.logit, OfflineLogit(model, prefix))
        << cell.Name() << " " << ArrivalName(arrival) << " prefix " << (k + 1);
  }
  return metrics.Snapshot();
}

TEST(RescaleTest, PerPrefixParityAcrossArrivalMatrix) {
  for (const Cell& cell : AllCells()) {
    for (Arrival arrival :
         {Arrival::kMonotone, Arrival::kDuplicates, Arrival::kOutOfOrder}) {
      RunPrefixParity(cell, arrival);
    }
  }
}

// Monotone sessions in the invariant basis never refold: every max-time
// move is absorbed at finalize. The absolute basis refolds the time-coupled
// component at every score whose max moved — the cost the tentpole kills.
TEST(RescaleTest, MonotoneInvariantSessionsNeverRefold) {
  for (const Cell& cell : AllCells()) {
    const MetricsSnapshot snap = RunPrefixParity(cell, Arrival::kMonotone);
    if (cell.basis == core::TimeBasis::kInvariant) {
      EXPECT_EQ(snap.state_refolds, 0u) << cell.Name();
    } else if (cell.normalize_time) {
      // 8 strictly-increasing timestamps; the first score folds fresh state
      // (nothing stale yet), the remaining 7 each invalidate the folded
      // time-coupled component: M-hat for SUM, the whole GRU state.
      EXPECT_EQ(snap.state_refolds, 7u) << cell.Name();
    } else {
      EXPECT_EQ(snap.state_refolds, 0u) << cell.Name();
    }
  }
}

// Duplicate timestamps only move the max when the value actually increases
// (3 increases after the first score in the kDuplicates stream).
TEST(RescaleTest, DuplicateTimestampsOnlyCountRealMaxMoves) {
  Cell cell{core::Updater::kSum, /*normalize_time=*/true,
            core::TimeBasis::kInvariant};
  const MetricsSnapshot snap = RunPrefixParity(cell, Arrival::kDuplicates);
  EXPECT_EQ(snap.state_refolds, 0u);
  // Times 1,1,2,2,2,5,5,8: scores see max 1,1,2,2,2,5,5,8 -> moves at
  // prefixes 3, 6, and 8.
  EXPECT_EQ(snap.state_rescales, 3u);
}

// Exact rescale accounting for a monotone invariant session: every score
// after the first sees a moved max over previously finalized folded state.
TEST(RescaleTest, MonotoneInvariantCountsOneRescalePerMaxMove) {
  for (core::Updater u : {core::Updater::kSum, core::Updater::kGru}) {
    Cell cell{u, /*normalize_time=*/true, core::TimeBasis::kInvariant};
    const MetricsSnapshot snap = RunPrefixParity(cell, Arrival::kMonotone);
    EXPECT_EQ(snap.state_rescales, 7u) << cell.Name();
  }
  // The absolute basis refolds instead; it must not report rescales. Nor
  // does the invariant basis without normalization (no max coupling to
  // absorb).
  Cell absolute{core::Updater::kSum, /*normalize_time=*/true,
                core::TimeBasis::kAbsolute};
  EXPECT_EQ(RunPrefixParity(absolute, Arrival::kMonotone).state_rescales, 0u);
  Cell raw{core::Updater::kSum, /*normalize_time=*/false,
           core::TimeBasis::kInvariant};
  EXPECT_EQ(RunPrefixParity(raw, Arrival::kMonotone).state_rescales, 0u);
}

// Out-of-order arrivals still force refolds in the invariant basis — the
// chronological fold order changed, which no algebra can absorb. The
// kOutOfOrder stream dips below the running max twice, and each late edge
// invalidates every folded component once at the next score.
TEST(RescaleTest, OutOfOrderStillRefoldsInInvariantBasis) {
  Cell sum{core::Updater::kSum, /*normalize_time=*/true,
           core::TimeBasis::kInvariant};
  const MetricsSnapshot sum_snap = RunPrefixParity(sum, Arrival::kOutOfOrder);
  // SUM has two folded components (X-hat and M-hat): 2 late edges x 2.
  EXPECT_EQ(sum_snap.state_refolds, 4u);

  Cell gru{core::Updater::kGru, /*normalize_time=*/true,
           core::TimeBasis::kInvariant};
  const MetricsSnapshot gru_snap = RunPrefixParity(gru, Arrival::kOutOfOrder);
  // GRU folds only X: 2 late edges x 1.
  EXPECT_EQ(gru_snap.state_refolds, 2u);
}

// The shard.rescale failpoint forces the legacy replay; the replayed state
// must land on exactly the floats the eager invariant fold produced, and
// the refold counter must attribute exactly to the fires.
TEST(RescaleTest, ForcedRefoldFallbackIsBitIdentical) {
  for (core::Updater u : {core::Updater::kSum, core::Updater::kGru}) {
    Cell cell{u, /*normalize_time=*/true, core::TimeBasis::kInvariant};
    model::ModelRegistry registry(CellConfig(cell), /*seed=*/5);
    core::TpGnnModel& model = registry.initial_model();
    const std::vector<graph::TemporalEdge> stream =
        StreamFor(Arrival::kMonotone);
    const int64_t num_nodes = 4;
    graph::TemporalGraph full(num_nodes, model.config().feature_dim);
    for (int64_t node = 0; node < num_nodes; ++node) {
      std::vector<float> f(static_cast<size_t>(model.config().feature_dim),
                           0.25f * static_cast<float>(node + 1));
      full.SetNodeFeature(node, f);
    }
    for (const graph::TemporalEdge& e : stream) {
      full.AddEdge(e.src, e.dst, e.time);
    }

    auto stream_and_score = [&](Metrics* metrics,
                                std::vector<float>* logits) {
      SessionShard shard(registry, ShardOptions{}, metrics);
      ASSERT_TRUE(shard
                      .BeginSession(1, num_nodes, model.config().feature_dim,
                                    AllNodeFeatures(full), /*now=*/0.0)
                      .ok());
      for (const graph::TemporalEdge& e : stream) {
        ASSERT_TRUE(shard.AddEdge(1, e.src, e.dst, e.time, /*now=*/0.0).ok());
        ScoreResult result;
        ASSERT_TRUE(shard.Score(1, &result).ok());
        logits->push_back(result.logit);
      }
    };

    std::vector<float> eager;
    {
      Metrics metrics;
      stream_and_score(&metrics, &eager);
      EXPECT_EQ(metrics.Snapshot().state_refolds, 0u);
    }

    std::vector<float> forced;
    Metrics metrics;
    {
      failpoint::ScopedFailpoint fp("shard.rescale", /*probability=*/1.0,
                                    failpoint::Kind::kReturnError);
      stream_and_score(&metrics, &forced);
      // Every score fired; each fire with a nonempty folded prefix refolds
      // each folded component (SUM: X and M, GRU: X).
      const uint64_t per_fire = u == core::Updater::kSum ? 2u : 1u;
      EXPECT_EQ(fp.fires(), stream.size());
      EXPECT_EQ(metrics.Snapshot().state_refolds,
                per_fire * static_cast<uint64_t>(stream.size()));
    }
    ASSERT_EQ(eager.size(), forced.size());
    for (size_t i = 0; i < eager.size(); ++i) {
      EXPECT_EQ(eager[i], forced[i])
          << cell.Name() << " forced-refold divergence at prefix " << (i + 1);
    }
    // Rescale accounting is independent of the forced refolds: the finalize
    // still absorbed each of the 7 max moves.
    EXPECT_EQ(metrics.Snapshot().state_rescales, 7u);
  }
}

}  // namespace
}  // namespace tpgnn::serve
