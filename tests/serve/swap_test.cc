// Model lifecycle through the serving path (DESIGN.md §4.8): hot swap
// under both SwapPolicies with bitwise version pinning, the deterministic
// A/B split end to end, shadow scoring's bit-parity and isolation, version
// tags riding session migration, and a failpoint chaos sweep asserting
// exactly-once scoring with exact metrics attribution across a mid-stream
// swap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "model/registry.h"
#include "nn/checkpoint.h"
#include "serve/inference_engine.h"
#include "serve/session_shard.h"
#include "serve_test_util.h"
#include "util/failpoint.h"

namespace tpgnn::serve {
namespace {

constexpr uint64_t kPrimarySeed = 5;
constexpr uint64_t kV2Seed = 7;

graph::GraphDataset SwapDataset() {
  return data::MakeDataset(data::HdfsSpec(), /*count=*/4, /*seed=*/21);
}

core::TpGnnModel& VersionModel(const model::ModelRegistry& registry,
                               const std::string& name) {
  // Tests need the mutable ref only because ForwardLogit uses scratch.
  return const_cast<core::TpGnnModel&>(registry.Find(name)->model());
}

// Streams the first `prefix` edges of `g` into session `id`.
void FeedPrefix(SessionShard& shard, uint64_t id,
                const graph::TemporalGraph& g, size_t prefix) {
  for (size_t e = 0; e < prefix; ++e) {
    ASSERT_TRUE(shard
                    .AddEdge(id, g.edges()[e].src, g.edges()[e].dst,
                             g.edges()[e].time, /*now=*/0.0)
                    .ok());
  }
}

class SwapTest : public ::testing::Test {
 protected:
  SwapTest() : registry_(TinyServeConfig(), kPrimarySeed) {
    EXPECT_TRUE(registry_.Register("v2", kV2Seed).ok());
  }

  model::ModelRegistry registry_;
  Metrics metrics_;
};

TEST_F(SwapTest, DrainSwapPinsLiveSessionsAndRoutesNewOnesToNewPrimary) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  const size_t half = static_cast<size_t>(g.num_edges()) / 2;

  ASSERT_TRUE(shard
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(shard, 1, g, half);

  ASSERT_TRUE(registry_.Activate("v2", model::SwapPolicy::kDrain).ok());

  for (size_t e = half; e < static_cast<size_t>(g.num_edges()); ++e) {
    ASSERT_TRUE(shard
                    .AddEdge(1, g.edges()[e].src, g.edges()[e].dst,
                             g.edges()[e].time, /*now=*/0.0)
                    .ok());
  }
  ScoreResult result;
  ASSERT_TRUE(shard.Score(1, &result).ok());
  // Pinned at Begin: the session scores under the old primary, bitwise.
  EXPECT_EQ(result.logit, OfflineLogit(VersionModel(registry_, "v0"), g));

  // A session begun after the swap scores under the new primary.
  ASSERT_TRUE(shard
                  .BeginSession(2, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(shard, 2, g, static_cast<size_t>(g.num_edges()));
  ASSERT_TRUE(shard.Score(2, &result).ok());
  EXPECT_EQ(result.logit, OfflineLogit(VersionModel(registry_, "v2"), g));

  const MetricsSnapshot snap = metrics_.Snapshot();
  EXPECT_EQ(snap.mixed_version_scores, 0u);
  EXPECT_EQ(snap.version_rebases, 0u);
}

TEST_F(SwapTest, RebaseSwapRefoldsLiveSessionAtNextTouch) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  const size_t half = static_cast<size_t>(g.num_edges()) / 2;

  ASSERT_TRUE(shard
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(shard, 1, g, half);

  ASSERT_TRUE(
      registry_.Activate("v2", model::SwapPolicy::kImmediateRebase).ok());

  for (size_t e = half; e < static_cast<size_t>(g.num_edges()); ++e) {
    ASSERT_TRUE(shard
                    .AddEdge(1, g.edges()[e].src, g.edges()[e].dst,
                             g.edges()[e].time, /*now=*/0.0)
                    .ok());
  }
  ScoreResult result;
  ASSERT_TRUE(shard.Score(1, &result).ok());
  // Rebase: the session re-resolved and refolded everything under v2 —
  // bit-identical to v2's offline forward, with no trace of v0's fold.
  EXPECT_EQ(result.logit, OfflineLogit(VersionModel(registry_, "v2"), g));

  const MetricsSnapshot snap = metrics_.Snapshot();
  EXPECT_EQ(snap.version_rebases, 1u);
  EXPECT_EQ(snap.mixed_version_scores, 0u);
}

TEST_F(SwapTest, AbSplitRoutesSessionsDeterministically) {
  ASSERT_TRUE(registry_.SetCandidate("v2", 0.5).ok());
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[1].graph;

  const float v0_logit = OfflineLogit(VersionModel(registry_, "v0"), g);
  const float v2_logit = OfflineLogit(VersionModel(registry_, "v2"), g);
  ASSERT_NE(v0_logit, v2_logit) << "seeds must give distinguishable models";

  size_t candidate_sessions = 0;
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(shard
                    .BeginSession(id, g.num_nodes(), g.feature_dim(),
                                  AllNodeFeatures(g), /*now=*/0.0)
                    .ok());
    FeedPrefix(shard, id, g, static_cast<size_t>(g.num_edges()));
    ScoreResult result;
    ASSERT_TRUE(shard.Score(id, &result).ok());
    const bool expect_candidate =
        model::AbPicksCandidate(id, registry_.ab_salt(), 0.5);
    EXPECT_EQ(result.logit, expect_candidate ? v2_logit : v0_logit)
        << "session " << id;
    // The export tag records the same assignment the score used.
    SessionState state;
    ASSERT_TRUE(shard.ExportSession(id, &state).ok());
    EXPECT_EQ(state.model_version, expect_candidate ? "v2" : "v0");
    if (expect_candidate) ++candidate_sessions;
  }
  EXPECT_GT(candidate_sessions, 0u);
  EXPECT_LT(candidate_sessions, 32u);
  EXPECT_EQ(metrics_.Snapshot().mixed_version_scores, 0u);
}

TEST_F(SwapTest, ShadowScoreIsBitIdenticalToOfflineForwardAndNeverLeaks) {
  ASSERT_TRUE(registry_.SetShadow("v2").ok());
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[2].graph;

  ASSERT_TRUE(shard
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(shard, 1, g, static_cast<size_t>(g.num_edges()));
  ScoreResult result;
  ASSERT_TRUE(shard.Score(1, &result).ok());
  // The client-visible result is the primary's — shadow never leaks.
  EXPECT_EQ(result.logit, OfflineLogit(VersionModel(registry_, "v0"), g));

  ASSERT_TRUE(shard.ShadowScore(1, result.logit).ok());

  // The shadow replay is bit-identical to v2's offline forward, so the
  // recorded delta is exactly |primary − v2 offline|.
  const double expected_delta = std::fabs(
      static_cast<double>(result.logit) -
      static_cast<double>(OfflineLogit(VersionModel(registry_, "v2"), g)));
  const MetricsSnapshot snap = metrics_.Snapshot();
  EXPECT_EQ(snap.shadow_scores, 1u);
  EXPECT_EQ(snap.shadow_failures, 0u);
  EXPECT_EQ(snap.shadow_delta_max, expected_delta);
  EXPECT_NEAR(snap.shadow_delta_sum, expected_delta, 1e-9);
  EXPECT_EQ(snap.shadow_latency.count, 1u);
}

TEST_F(SwapTest, ShadowScoreIsNoOpWithoutShadowVersion) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[2].graph;
  ASSERT_TRUE(shard
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  EXPECT_TRUE(shard.ShadowScore(1, 0.0f).ok());
  EXPECT_EQ(metrics_.Snapshot().shadow_scores, 0u);
}

TEST_F(SwapTest, ShadowFaultsAreCountedAndIsolatedFromThePrimary) {
  ASSERT_TRUE(registry_.SetShadow("v2").ok());
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[2].graph;
  ASSERT_TRUE(shard
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(shard, 1, g, static_cast<size_t>(g.num_edges()));

  ScoreResult before;
  ASSERT_TRUE(shard.Score(1, &before).ok());
  {
    failpoint::ScopedFailpoint fp("model.shadow_score", 1.0,
                                  failpoint::Kind::kReturnError);
    EXPECT_EQ(shard.ShadowScore(1, before.logit).code(),
              StatusCode::kInternal);
    EXPECT_EQ(fp.fires(), 1u);
  }
  // A shadow pass against a session that ended in between is a counted
  // failure, not an error on any client path.
  EXPECT_EQ(shard.ShadowScore(999, before.logit).code(),
            StatusCode::kNotFound);

  const MetricsSnapshot snap = metrics_.Snapshot();
  EXPECT_EQ(snap.shadow_failures, 2u);
  EXPECT_EQ(snap.shadow_scores, 0u);

  // The injected shadow death left the primary path untouched.
  ScoreResult after;
  ASSERT_TRUE(shard.Score(1, &after).ok());
  EXPECT_EQ(after.logit, before.logit);
}

TEST_F(SwapTest, MigrationCarriesThePinnedVersionAcrossRegistries) {
  // Source backend: session pinned to v0 while v2 is already loaded.
  SessionShard source(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[3].graph;
  const size_t half = static_cast<size_t>(g.num_edges()) / 2;
  ASSERT_TRUE(source
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(source, 1, g, half);
  SessionState state;
  ASSERT_TRUE(source.ExportSession(1, &state).ok());
  EXPECT_EQ(state.model_version, "v0");

  // Destination backend: same versions, but its primary is already v2.
  model::ModelRegistry dest_registry(TinyServeConfig(), kPrimarySeed);
  ASSERT_TRUE(dest_registry.Register("v2", kV2Seed).ok());
  ASSERT_TRUE(
      dest_registry.Activate("v2", model::SwapPolicy::kImmediateRebase).ok());
  Metrics dest_metrics;
  SessionShard dest(dest_registry, ShardOptions{}, &dest_metrics);
  ASSERT_TRUE(dest.ImportSession(state, /*now=*/0.0).ok());

  for (size_t e = half; e < static_cast<size_t>(g.num_edges()); ++e) {
    ASSERT_TRUE(dest
                    .AddEdge(1, g.edges()[e].src, g.edges()[e].dst,
                             g.edges()[e].time, /*now=*/0.0)
                    .ok());
  }
  ScoreResult result;
  ASSERT_TRUE(dest.Score(1, &result).ok());
  // The migrated session keeps scoring under v0, bit-identically, even
  // though the destination's primary is v2 …
  EXPECT_EQ(result.logit, OfflineLogit(VersionModel(registry_, "v0"), g));
  // … while a fresh session on the destination lands on v2.
  ASSERT_TRUE(dest
                  .BeginSession(2, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  FeedPrefix(dest, 2, g, static_cast<size_t>(g.num_edges()));
  ASSERT_TRUE(dest.Score(2, &result).ok());
  EXPECT_EQ(result.logit,
            OfflineLogit(VersionModel(dest_registry, "v2"), g));
  EXPECT_EQ(dest_metrics.Snapshot().mixed_version_scores, 0u);
}

TEST_F(SwapTest, ImportOfUnknownVersionTagFailsPrecondition) {
  SessionShard source(registry_, ShardOptions{}, &metrics_);
  const graph::GraphDataset dataset = SwapDataset();
  const graph::TemporalGraph& g = dataset[3].graph;
  ASSERT_TRUE(source
                  .BeginSession(1, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());
  SessionState state;
  ASSERT_TRUE(source.ExportSession(1, &state).ok());
  state.model_version = "ghost";

  SessionShard dest(registry_, ShardOptions{}, &metrics_);
  EXPECT_EQ(dest.ImportSession(state, /*now=*/0.0).code(),
            StatusCode::kFailedPrecondition);
  // An empty tag (v1 snapshot) resolves to the primary instead.
  state.model_version.clear();
  EXPECT_TRUE(dest.ImportSession(state, /*now=*/0.0).ok());
}

// The chaos half of satellite coverage: a stream of sessions scored across
// a mid-stream load + swap while model.load / model.activate /
// model.shadow_score inject faults. Invariants: every score request
// produces exactly one result, every counter attributes exactly (loads and
// activations count successes only; every successful score is attributed
// to exactly one of shadow_scores / shadow_failures), and no score ever
// mixes versions.
TEST(SwapChaosTest, ExactlyOnceScoringAndExactAttributionAcrossSwap) {
  failpoint::SetSeed(2024);
  const core::TpGnnConfig config = TinyServeConfig();

  // A real checkpoint so the chaos sweep exercises the full load path.
  const std::string path = ::testing::TempDir() + "swap_chaos_v2.ckpt";
  {
    core::TpGnnModel v2(config, kV2Seed);
    ASSERT_TRUE(
        nn::SaveParameters(v2, path, core::ConfigMetadata(config)).ok());
  }

  EngineOptions options;
  options.num_shards = 2;
  options.max_pending_scores = 64;
  options.max_batch = 8;
  InferenceEngine engine(config, kPrimarySeed, options);
  ASSERT_TRUE(engine.registry().Register("shadow", kPrimarySeed).ok());
  ASSERT_TRUE(engine.registry().SetShadow("shadow").ok());

  failpoint::ScopedFailpoint load_fp("model.load", 0.5,
                                     failpoint::Kind::kReturnError);
  failpoint::ScopedFailpoint activate_fp("model.activate", 0.5,
                                         failpoint::Kind::kReturnError);
  failpoint::ScopedFailpoint shadow_fp("model.shadow_score", 0.3,
                                       failpoint::Kind::kReturnError);

  // Retry loops around the faulted admin verbs: each attempt either fails
  // injected (no state change) or succeeds exactly once.
  uint64_t load_attempts = 0;
  while (true) {
    ++load_attempts;
    ASSERT_LT(load_attempts, 64u) << "model.load at p=0.5 never succeeded";
    Status s = engine.LoadModelVersion("v2", path);
    if (s.ok()) break;
    ASSERT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  }

  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/12, /*seed=*/9);
  std::vector<ScoreResult> results;
  size_t score_requests = 0;
  bool activated = false;
  uint64_t activate_attempts = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const graph::TemporalGraph& g = dataset[i].graph;
    const uint64_t id = 100 + i;
    Event begin;
    begin.kind = Event::Kind::kBegin;
    begin.session_id = id;
    begin.num_nodes = g.num_nodes();
    begin.feature_dim = g.feature_dim();
    for (int64_t node = 0; node < g.num_nodes(); ++node) {
      begin.features.push_back({node, g.node_feature(node)});
    }
    ASSERT_TRUE(engine.Ingest(begin).ok());
    for (const graph::TemporalEdge& e : g.edges()) {
      Event edge;
      edge.kind = Event::Kind::kEdge;
      edge.session_id = id;
      edge.src = e.src;
      edge.dst = e.dst;
      edge.edge_time = e.time;
      Status s = engine.Ingest(edge);
      while (s.code() == StatusCode::kOverloaded) {
        engine.ProcessPending(&results);
        s = engine.Ingest(edge);
      }
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    Event score;
    score.kind = Event::Kind::kScore;
    score.session_id = id;
    ASSERT_TRUE(engine.Ingest(score).ok());
    ++score_requests;

    // Mid-stream: swap the primary onto the loaded v2 (faulted, retried).
    if (i == dataset.size() / 2) {
      while (!activated) {
        ++activate_attempts;
        ASSERT_LT(activate_attempts, 64u)
            << "model.activate at p=0.5 never succeeded";
        Status s =
            engine.ActivateModel("v2", model::SwapPolicy::kImmediateRebase);
        if (s.ok()) {
          activated = true;
        } else {
          ASSERT_EQ(s.code(), StatusCode::kFailedPrecondition)
              << s.ToString();
        }
      }
    }
  }
  engine.Flush(&results);

  // Exactly-once scoring: one ok result per request, none duplicated or
  // dropped by the faults (which only ever hit admin and shadow paths).
  ASSERT_EQ(results.size(), score_requests);
  for (const ScoreResult& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }

  const MetricsSnapshot snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap.scores_completed, score_requests);
  EXPECT_EQ(snap.scores_failed, 0u);
  EXPECT_EQ(snap.mixed_version_scores, 0u);
  // Exact attribution: only the successful admin verbs counted …
  EXPECT_EQ(snap.model_loads, 1u);
  EXPECT_EQ(snap.model_activations, 1u);
  // … and every completed score fed exactly one shadow outcome.
  EXPECT_EQ(snap.shadow_scores + snap.shadow_failures, score_requests);
  EXPECT_GT(snap.shadow_failures, 0u) << "p=0.3 over 12 scores: ~0.99 odds";
  EXPECT_GT(snap.shadow_scores, 0u);
  // (Post-swap the primary is v2 while the shadow stays on the v0 seed, so
  // nonzero deltas are expected here; the zero-delta shadow parity gate
  // runs in bench_swap and ShadowScoreIsBitIdenticalToOfflineForward.)
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpgnn::serve
