// LatencyHistogram bucketing and percentile estimation, and the Metrics
// snapshot plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"

namespace tpgnn::serve {
namespace {

TEST(LatencyHistogramTest, BucketAssignment) {
  LatencyHistogram histogram;
  histogram.Record(0.0);    // [0, 2) -> bucket 0.
  histogram.Record(1.5);    // [0, 2) -> bucket 0.
  histogram.Record(2.0);    // [2, 4) -> bucket 1.
  histogram.Record(3.9);    // [2, 4) -> bucket 1.
  histogram.Record(1000);   // [512, 1024) -> bucket 9.
  histogram.Record(1e12);   // Overflow -> last bucket.

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
}

TEST(LatencyHistogramTest, MeanAndPercentiles) {
  LatencyHistogram histogram;
  // 90 fast samples at ~100us (bucket 6: [64, 128)), 10 slow at ~5000us
  // (bucket 12: [4096, 8192)).
  for (int i = 0; i < 90; ++i) histogram.Record(100.0);
  for (int i = 0; i < 10; ++i) histogram.Record(5000.0);

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean_micros(), (90 * 100.0 + 10 * 5000.0) / 100.0, 1.0);
  // Percentile = upper edge of the crossing bucket.
  EXPECT_EQ(snap.PercentileMicros(0.5), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.9), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.95), 8192.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 8192.0);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean_micros(), 0.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, SnapshotCarriesCountersAndSummarizes) {
  Metrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.sessions_begun.fetch_add(2);
  metrics.scores_completed.fetch_add(3);
  metrics.state_refolds.fetch_add(1);
  metrics.score_latency.Record(100.0);

  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.events_ingested, 10u);
  EXPECT_EQ(snap.sessions_begun, 2u);
  EXPECT_EQ(snap.scores_completed, 3u);
  EXPECT_EQ(snap.state_refolds, 1u);
  EXPECT_EQ(snap.score_latency.count, 1u);

  const std::string text = snap.ToString();
  EXPECT_NE(text.find("events=10"), std::string::npos) << text;
  EXPECT_NE(text.find("scores=3"), std::string::npos) << text;
}

}  // namespace
}  // namespace tpgnn::serve
