// LatencyHistogram bucketing and percentile estimation, and the Metrics
// snapshot plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"

namespace tpgnn::serve {
namespace {

TEST(LatencyHistogramTest, BucketAssignment) {
  LatencyHistogram histogram;
  histogram.Record(0.0);    // [0, 2) -> bucket 0.
  histogram.Record(1.5);    // [0, 2) -> bucket 0.
  histogram.Record(2.0);    // [2, 4) -> bucket 1.
  histogram.Record(3.9);    // [2, 4) -> bucket 1.
  histogram.Record(1000);   // [512, 1024) -> bucket 9.
  histogram.Record(1e12);   // Overflow -> last bucket.

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
}

TEST(LatencyHistogramTest, MeanAndPercentiles) {
  LatencyHistogram histogram;
  // 90 fast samples at ~100us (bucket 6: [64, 128)), 10 slow at ~5000us
  // (bucket 12: [4096, 8192)).
  for (int i = 0; i < 90; ++i) histogram.Record(100.0);
  for (int i = 0; i < 10; ++i) histogram.Record(5000.0);

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean_micros(), (90 * 100.0 + 10 * 5000.0) / 100.0, 1.0);
  // Percentile = upper edge of the crossing bucket.
  EXPECT_EQ(snap.PercentileMicros(0.5), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.9), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.95), 8192.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 8192.0);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean_micros(), 0.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, SnapshotCarriesCountersAndSummarizes) {
  Metrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.sessions_begun.fetch_add(2);
  metrics.scores_completed.fetch_add(3);
  metrics.state_refolds.fetch_add(1);
  metrics.state_rescales.fetch_add(5);
  metrics.score_latency.Record(100.0);

  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.events_ingested, 10u);
  EXPECT_EQ(snap.sessions_begun, 2u);
  EXPECT_EQ(snap.scores_completed, 3u);
  EXPECT_EQ(snap.state_refolds, 1u);
  EXPECT_EQ(snap.state_rescales, 5u);
  EXPECT_EQ(snap.score_latency.count, 1u);

  const std::string text = snap.ToString();
  EXPECT_NE(text.find("events=10"), std::string::npos) << text;
  EXPECT_NE(text.find("scores=3"), std::string::npos) << text;
  EXPECT_NE(text.find("rescales=5"), std::string::npos) << text;
}

// Minimal checks over the JSON the METRICS RPC ships: every counter lands
// under "counters" with its exact value, histogram quantiles match the
// snapshot's own estimates, and the structure is balanced.
TEST(MetricsTest, ToJsonCarriesCountersAndQuantiles) {
  Metrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.sessions_begun.fetch_add(2);
  metrics.scores_completed.fetch_add(3);
  metrics.bytes_received.fetch_add(4096);
  metrics.frames_sent.fetch_add(7);
  metrics.connections_accepted.fetch_add(1);
  metrics.protocol_errors.fetch_add(1);
  metrics.state_refolds.fetch_add(2);
  metrics.state_rescales.fetch_add(9);
  for (int i = 0; i < 90; ++i) metrics.score_latency.Record(100.0);
  for (int i = 0; i < 10; ++i) metrics.score_latency.Record(5000.0);

  const MetricsSnapshot snap = metrics.Snapshot();
  const std::string json = metrics.ToJson();
  // Metrics::ToJson is exactly the snapshot's serialization.
  EXPECT_EQ(json, snap.ToJson());

  for (const char* expected :
       {"\"counters\"", "\"events_ingested\": 10", "\"sessions_begun\": 2",
        "\"scores_completed\": 3", "\"bytes_received\": 4096",
        "\"frames_sent\": 7", "\"connections_accepted\": 1",
        "\"protocol_errors\": 1", "\"state_refolds\": 2",
        "\"state_rescales\": 9", "\"latency_us\"", "\"score\"",
        "\"count\": 100"}) {
    EXPECT_NE(json.find(expected), std::string::npos) << expected << "\n"
                                                      << json;
  }
  // The emitted quantiles are the snapshot's own estimates (formatted the
  // same way ToJson streams them).
  std::ostringstream quantiles;
  quantiles << "\"p50\": " << snap.score_latency.PercentileMicros(0.5);
  EXPECT_NE(json.find(quantiles.str()), std::string::npos)
      << quantiles.str() << "\n" << json;
  quantiles.str("");
  quantiles << "\"p99\": " << snap.score_latency.PercentileMicros(0.99);
  EXPECT_NE(json.find(quantiles.str()), std::string::npos)
      << quantiles.str() << "\n" << json;

  // Structurally sound: balanced braces, no trailing text.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// A snapshot with every counter and histogram field distinct, so a
// roundtrip or merge that drops/swaps a field cannot pass by accident.
// Values stay small enough that ToJson's default stream precision prints
// the histogram sums exactly.
MetricsSnapshot DistinctSnapshot(uint64_t seed) {
  MetricsSnapshot snap;
  uint64_t v = seed;
  for (uint64_t* counter :
       {&snap.events_ingested, &snap.sessions_begun, &snap.sessions_ended,
        &snap.sessions_evicted, &snap.sessions_exported,
        &snap.sessions_imported, &snap.edges_ingested, &snap.scores_completed,
        &snap.scores_failed, &snap.overload_rejections, &snap.state_refolds,
        &snap.state_rescales, &snap.bytes_received, &snap.bytes_sent,
        &snap.frames_received, &snap.frames_sent, &snap.connections_accepted,
        &snap.connections_closed, &snap.protocol_errors,
        &snap.pool_bytes_peak, &snap.pool_bytes_cached,
        &snap.arena_bytes_peak, &snap.rss_peak_kb}) {
    *counter = v++;
  }
  uint64_t bucket = seed % LatencyHistogram::kNumBuckets;
  for (LatencyHistogram::Snapshot* h :
       {&snap.ingest_latency, &snap.score_latency, &snap.e2e_latency}) {
    h->count = v;
    h->sum_micros = static_cast<double>(v) * 100.0;
    h->buckets[bucket] = v;
    ++v;
    bucket = (bucket + 7) % LatencyHistogram::kNumBuckets;
  }
  return snap;
}

void ExpectSnapshotsEqual(const MetricsSnapshot& want,
                          const MetricsSnapshot& got) {
  EXPECT_EQ(want.events_ingested, got.events_ingested);
  EXPECT_EQ(want.sessions_begun, got.sessions_begun);
  EXPECT_EQ(want.sessions_ended, got.sessions_ended);
  EXPECT_EQ(want.sessions_evicted, got.sessions_evicted);
  EXPECT_EQ(want.sessions_exported, got.sessions_exported);
  EXPECT_EQ(want.sessions_imported, got.sessions_imported);
  EXPECT_EQ(want.edges_ingested, got.edges_ingested);
  EXPECT_EQ(want.scores_completed, got.scores_completed);
  EXPECT_EQ(want.scores_failed, got.scores_failed);
  EXPECT_EQ(want.overload_rejections, got.overload_rejections);
  EXPECT_EQ(want.state_refolds, got.state_refolds);
  EXPECT_EQ(want.state_rescales, got.state_rescales);
  EXPECT_EQ(want.bytes_received, got.bytes_received);
  EXPECT_EQ(want.bytes_sent, got.bytes_sent);
  EXPECT_EQ(want.frames_received, got.frames_received);
  EXPECT_EQ(want.frames_sent, got.frames_sent);
  EXPECT_EQ(want.connections_accepted, got.connections_accepted);
  EXPECT_EQ(want.connections_closed, got.connections_closed);
  EXPECT_EQ(want.protocol_errors, got.protocol_errors);
  EXPECT_EQ(want.pool_bytes_peak, got.pool_bytes_peak);
  EXPECT_EQ(want.pool_bytes_cached, got.pool_bytes_cached);
  EXPECT_EQ(want.arena_bytes_peak, got.arena_bytes_peak);
  EXPECT_EQ(want.rss_peak_kb, got.rss_peak_kb);
  const LatencyHistogram::Snapshot* want_h[] = {
      &want.ingest_latency, &want.score_latency, &want.e2e_latency};
  const LatencyHistogram::Snapshot* got_h[] = {
      &got.ingest_latency, &got.score_latency, &got.e2e_latency};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(want_h[i]->count, got_h[i]->count) << "histogram " << i;
    EXPECT_EQ(want_h[i]->sum_micros, got_h[i]->sum_micros)
        << "histogram " << i;
    EXPECT_EQ(want_h[i]->buckets, got_h[i]->buckets) << "histogram " << i;
  }
}

TEST(MetricsJsonTest, ParseRecoversEveryFieldOfToJson) {
  const MetricsSnapshot original = DistinctSnapshot(17);
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(original.ToJson(), &parsed).ok());
  ExpectSnapshotsEqual(original, parsed);
}

TEST(MetricsJsonTest, ParseSkipsUnknownTrailingSections) {
  // The router splices a "cluster" object after "latency_us" before
  // re-emitting the merged payload; the parser must shrug it off.
  const MetricsSnapshot original = DistinctSnapshot(3);
  std::string json = original.ToJson();
  ASSERT_EQ(json.back(), '}');
  json.insert(json.size() - 1,
              ", \"cluster\": {\"backends_up\": 2, \"sessions_migrated\": 5}");
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed).ok());
  ExpectSnapshotsEqual(original, parsed);
}

TEST(MetricsJsonTest, ParseFailsTypedOnStructuralDamage) {
  const std::string good = DistinctSnapshot(5).ToJson();
  MetricsSnapshot scratch;

  EXPECT_EQ(ParseMetricsJson("{}", &scratch).code(), StatusCode::kDataLoss);
  EXPECT_EQ(ParseMetricsJson("not json at all", &scratch).code(),
            StatusCode::kDataLoss);

  // A renamed counter is a missing counter.
  std::string renamed = good;
  const size_t at = renamed.find("\"protocol_errors\"");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 17, "\"protocol_mishaps\"");
  EXPECT_EQ(ParseMetricsJson(renamed, &scratch).code(),
            StatusCode::kDataLoss);

  // Chopping off the histograms loses the latency section.
  const std::string truncated = good.substr(0, good.find("\"latency_us\""));
  EXPECT_EQ(ParseMetricsJson(truncated, &scratch).code(),
            StatusCode::kDataLoss);
}

TEST(MetricsJsonTest, MergeFromSumsCountersAndHistograms) {
  MetricsSnapshot merged = DistinctSnapshot(100);
  const MetricsSnapshot a = merged;
  const MetricsSnapshot b = DistinctSnapshot(1000);
  merged.MergeFrom(b);

  EXPECT_EQ(merged.events_ingested, a.events_ingested + b.events_ingested);
  EXPECT_EQ(merged.protocol_errors, a.protocol_errors + b.protocol_errors);
  EXPECT_EQ(merged.sessions_exported,
            a.sessions_exported + b.sessions_exported);
  EXPECT_EQ(merged.score_latency.count,
            a.score_latency.count + b.score_latency.count);
  EXPECT_EQ(merged.score_latency.sum_micros,
            a.score_latency.sum_micros + b.score_latency.sum_micros);
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const auto idx = static_cast<size_t>(i);
    EXPECT_EQ(merged.e2e_latency.buckets[idx],
              a.e2e_latency.buckets[idx] + b.e2e_latency.buckets[idx])
        << "bucket " << i;
  }

  // Default snapshot is the identity element.
  MetricsSnapshot identity;
  identity.MergeFrom(a);
  ExpectSnapshotsEqual(a, identity);
}

TEST(MetricsJsonTest, MergeTakesMaxOfMemoryPeaksAndSumsCachedBytes) {
  // The router folds N backends: a cluster's peak is its worst single
  // process (max), while cached pool bytes are parked per process (sum).
  MetricsSnapshot a, b;
  a.pool_bytes_peak = 700;
  a.pool_bytes_cached = 40;
  a.arena_bytes_peak = 60;
  a.rss_peak_kb = 9000;
  b.pool_bytes_peak = 300;
  b.pool_bytes_cached = 25;
  b.arena_bytes_peak = 180;
  b.rss_peak_kb = 12000;

  MetricsSnapshot merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.pool_bytes_peak, 700u);
  EXPECT_EQ(merged.pool_bytes_cached, 65u);
  EXPECT_EQ(merged.arena_bytes_peak, 180u);
  EXPECT_EQ(merged.rss_peak_kb, 12000u);

  // Merge order must not matter for the maxes.
  MetricsSnapshot reversed = b;
  reversed.MergeFrom(a);
  EXPECT_EQ(reversed.pool_bytes_peak, merged.pool_bytes_peak);
  EXPECT_EQ(reversed.arena_bytes_peak, merged.arena_bytes_peak);
  EXPECT_EQ(reversed.rss_peak_kb, merged.rss_peak_kb);
  EXPECT_EQ(reversed.pool_bytes_cached, merged.pool_bytes_cached);
}

TEST(MetricsTest, UpdateResourcePeaksIsMonotoneAndSurvivesRoundtrip) {
  Metrics metrics;
  metrics.UpdateResourcePeaks();
  const MetricsSnapshot first = metrics.Snapshot();
  // On Linux the process certainly has a nonzero RSS high-water mark.
  EXPECT_GT(first.rss_peak_kb, 0u);

  metrics.UpdateResourcePeaks();
  const MetricsSnapshot second = metrics.Snapshot();
  EXPECT_GE(second.rss_peak_kb, first.rss_peak_kb);
  EXPECT_GE(second.pool_bytes_peak, first.pool_bytes_peak);
  EXPECT_GE(second.arena_bytes_peak, first.arena_bytes_peak);

  // The gauges ride the METRICS RPC like any counter.
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(second.ToJson(), &parsed).ok());
  EXPECT_EQ(parsed.rss_peak_kb, second.rss_peak_kb);
  EXPECT_EQ(parsed.pool_bytes_peak, second.pool_bytes_peak);
  EXPECT_EQ(parsed.pool_bytes_cached, second.pool_bytes_cached);
  EXPECT_EQ(parsed.arena_bytes_peak, second.arena_bytes_peak);
}

TEST(MetricsJsonTest, MergedPercentilesSpanTheUnionDistribution) {
  // 90 fast samples on one backend, 10 slow on another: the merged p50
  // must come from the fast bucket and the merged p95 from the slow one —
  // i.e. merging keeps raw buckets instead of averaging quantiles.
  MetricsSnapshot fast, slow;
  fast.score_latency.count = 90;
  fast.score_latency.sum_micros = 9000.0;
  fast.score_latency.buckets[6] = 90;  // [64, 128) us.
  slow.score_latency.count = 10;
  slow.score_latency.sum_micros = 50000.0;
  slow.score_latency.buckets[12] = 10;  // [4096, 8192) us.

  fast.MergeFrom(slow);
  EXPECT_EQ(fast.score_latency.count, 100u);
  EXPECT_EQ(fast.score_latency.PercentileMicros(0.5), 128.0);
  EXPECT_EQ(fast.score_latency.PercentileMicros(0.95), 8192.0);
}

}  // namespace
}  // namespace tpgnn::serve
