// LatencyHistogram bucketing and percentile estimation, and the Metrics
// snapshot plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"

namespace tpgnn::serve {
namespace {

TEST(LatencyHistogramTest, BucketAssignment) {
  LatencyHistogram histogram;
  histogram.Record(0.0);    // [0, 2) -> bucket 0.
  histogram.Record(1.5);    // [0, 2) -> bucket 0.
  histogram.Record(2.0);    // [2, 4) -> bucket 1.
  histogram.Record(3.9);    // [2, 4) -> bucket 1.
  histogram.Record(1000);   // [512, 1024) -> bucket 9.
  histogram.Record(1e12);   // Overflow -> last bucket.

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
}

TEST(LatencyHistogramTest, MeanAndPercentiles) {
  LatencyHistogram histogram;
  // 90 fast samples at ~100us (bucket 6: [64, 128)), 10 slow at ~5000us
  // (bucket 12: [4096, 8192)).
  for (int i = 0; i < 90; ++i) histogram.Record(100.0);
  for (int i = 0; i < 10; ++i) histogram.Record(5000.0);

  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean_micros(), (90 * 100.0 + 10 * 5000.0) / 100.0, 1.0);
  // Percentile = upper edge of the crossing bucket.
  EXPECT_EQ(snap.PercentileMicros(0.5), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.9), 128.0);
  EXPECT_EQ(snap.PercentileMicros(0.95), 8192.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 8192.0);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean_micros(), 0.0);
  EXPECT_EQ(snap.PercentileMicros(0.99), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, SnapshotCarriesCountersAndSummarizes) {
  Metrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.sessions_begun.fetch_add(2);
  metrics.scores_completed.fetch_add(3);
  metrics.state_refolds.fetch_add(1);
  metrics.state_rescales.fetch_add(5);
  metrics.score_latency.Record(100.0);

  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.events_ingested, 10u);
  EXPECT_EQ(snap.sessions_begun, 2u);
  EXPECT_EQ(snap.scores_completed, 3u);
  EXPECT_EQ(snap.state_refolds, 1u);
  EXPECT_EQ(snap.state_rescales, 5u);
  EXPECT_EQ(snap.score_latency.count, 1u);

  const std::string text = snap.ToString();
  EXPECT_NE(text.find("events=10"), std::string::npos) << text;
  EXPECT_NE(text.find("scores=3"), std::string::npos) << text;
  EXPECT_NE(text.find("rescales=5"), std::string::npos) << text;
}

// Minimal checks over the JSON the METRICS RPC ships: every counter lands
// under "counters" with its exact value, histogram quantiles match the
// snapshot's own estimates, and the structure is balanced.
TEST(MetricsTest, ToJsonCarriesCountersAndQuantiles) {
  Metrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.sessions_begun.fetch_add(2);
  metrics.scores_completed.fetch_add(3);
  metrics.bytes_received.fetch_add(4096);
  metrics.frames_sent.fetch_add(7);
  metrics.connections_accepted.fetch_add(1);
  metrics.protocol_errors.fetch_add(1);
  metrics.state_refolds.fetch_add(2);
  metrics.state_rescales.fetch_add(9);
  for (int i = 0; i < 90; ++i) metrics.score_latency.Record(100.0);
  for (int i = 0; i < 10; ++i) metrics.score_latency.Record(5000.0);

  const MetricsSnapshot snap = metrics.Snapshot();
  const std::string json = metrics.ToJson();
  // Metrics::ToJson is exactly the snapshot's serialization.
  EXPECT_EQ(json, snap.ToJson());

  for (const char* expected :
       {"\"counters\"", "\"events_ingested\": 10", "\"sessions_begun\": 2",
        "\"scores_completed\": 3", "\"bytes_received\": 4096",
        "\"frames_sent\": 7", "\"connections_accepted\": 1",
        "\"protocol_errors\": 1", "\"state_refolds\": 2",
        "\"state_rescales\": 9", "\"latency_us\"", "\"score\"",
        "\"count\": 100"}) {
    EXPECT_NE(json.find(expected), std::string::npos) << expected << "\n"
                                                      << json;
  }
  // The emitted quantiles are the snapshot's own estimates (formatted the
  // same way ToJson streams them).
  std::ostringstream quantiles;
  quantiles << "\"p50\": " << snap.score_latency.PercentileMicros(0.5);
  EXPECT_NE(json.find(quantiles.str()), std::string::npos)
      << quantiles.str() << "\n" << json;
  quantiles.str("");
  quantiles << "\"p99\": " << snap.score_latency.PercentileMicros(0.99);
  EXPECT_NE(json.find(quantiles.str()), std::string::npos)
      << quantiles.str() << "\n" << json;

  // Structurally sound: balanced braces, no trailing text.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace tpgnn::serve
