// The serving subsystem's central correctness contract: scoring a session
// built edge-by-edge through SessionShard is bit-identical to
// TpGnnModel::ForwardLogit over the fully built graph — across updaters,
// readouts, edge aggregations, ablation variants, time normalization on and
// off, with the buffer pool on and off, at every mid-stream prefix, and
// under out-of-order edge arrival.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "model/registry.h"
#include "serve/session_shard.h"
#include "serve_test_util.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/buffer_pool.h"

namespace tpgnn::serve {
namespace {

class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : previous_(util::BufferPoolEnabled()) {
    util::SetBufferPoolEnabled(enabled);
  }
  ~ScopedPoolEnabled() { util::SetBufferPoolEnabled(previous_); }

 private:
  bool previous_;
};

struct NamedConfig {
  std::string name;
  core::TpGnnConfig config;
};

std::vector<NamedConfig> ParityConfigs() {
  std::vector<NamedConfig> configs;
  const core::TpGnnConfig base = TinyServeConfig();
  for (const core::Updater updater :
       {core::Updater::kSum, core::Updater::kGru}) {
    const std::string u = updater == core::Updater::kSum ? "sum" : "gru";
    core::TpGnnConfig c = base;
    c.updater = updater;
    configs.push_back({u + "_normalized", c});
    c.normalize_time = false;
    configs.push_back({u + "_raw_time", c});
  }
  core::TpGnnConfig last = base;
  last.extractor_readout = core::ExtractorReadout::kLastState;
  configs.push_back({"sum_last_state", last});
  core::TpGnnConfig concat = base;
  concat.edge_agg = core::EdgeAgg::kConcatenation;
  configs.push_back({"sum_concat_agg", concat});
  core::TpGnnConfig transformer = base;
  transformer.global_module = core::GlobalModule::kTransformer;
  configs.push_back({"sum_transformer", transformer});
  core::TpGnnConfig unstable = base;
  unstable.stabilize_sum = false;
  configs.push_back({"sum_unstabilized", unstable});
  core::TpGnnConfig time2vec = base;
  time2vec.variant = core::Variant::kTime2Vec;
  configs.push_back({"variant_time2vec", time2vec});
  core::TpGnnConfig no_propagation = base;
  no_propagation.variant = core::Variant::kWithoutTem;
  configs.push_back({"variant_without_tem", no_propagation});
  // Invariant time basis: the serving-oriented reformulation must hold the
  // same bitwise contract against its own offline forward.
  for (const core::Updater updater :
       {core::Updater::kSum, core::Updater::kGru}) {
    const std::string u = updater == core::Updater::kSum ? "sum" : "gru";
    core::TpGnnConfig c = base;
    c.updater = updater;
    c.time_basis = core::TimeBasis::kInvariant;
    configs.push_back({u + "_invariant", c});
    c.normalize_time = false;
    configs.push_back({u + "_invariant_raw_time", c});
  }
  core::TpGnnConfig inv_unstable = base;
  inv_unstable.time_basis = core::TimeBasis::kInvariant;
  inv_unstable.stabilize_sum = false;
  configs.push_back({"sum_invariant_unstabilized", inv_unstable});
  core::TpGnnConfig inv_time2vec = base;
  inv_time2vec.time_basis = core::TimeBasis::kInvariant;
  inv_time2vec.variant = core::Variant::kTime2Vec;
  configs.push_back({"invariant_time2vec", inv_time2vec});
  return configs;
}

graph::GraphDataset ParityDataset() {
  return data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/33);
}

// The bitwise serving contract must hold in every SIMD mode this machine can
// run: serving and the offline forward share the planned executor and kernel
// table, so whatever ISA is selected, both sides produce the same bits.
std::vector<tensor::SimdMode> ParityModes() {
  std::vector<tensor::SimdMode> modes = {tensor::SimdMode::kScalar};
  if (tensor::SimdModeSupported(tensor::SimdMode::kAvx2)) {
    modes.push_back(tensor::SimdMode::kAvx2);
  }
  if (tensor::SimdModeSupported(tensor::SimdMode::kNeon)) {
    modes.push_back(tensor::SimdMode::kNeon);
  }
  return modes;
}

// Streams every dataset graph through a fresh session and compares the
// final score against the offline forward, bitwise.
void ExpectFinalScoreParity(const NamedConfig& named, bool pool_enabled) {
  ScopedPoolEnabled pool(pool_enabled);
  model::ModelRegistry registry(named.config, /*seed=*/5);
  core::TpGnnModel& model = registry.initial_model();
  SessionShard shard(registry, ShardOptions{}, /*metrics=*/nullptr);
  graph::GraphDataset dataset = ParityDataset();
  for (size_t i = 0; i < dataset.size(); ++i) {
    const graph::TemporalGraph& g = dataset[i].graph;
    const uint64_t id = 100 + i;
    ASSERT_TRUE(shard
                    .BeginSession(id, g.num_nodes(), g.feature_dim(),
                                  AllNodeFeatures(g), /*now=*/0.0)
                    .ok());
    for (const graph::TemporalEdge& e : g.edges()) {
      ASSERT_TRUE(shard.AddEdge(id, e.src, e.dst, e.time, /*now=*/0.0).ok());
    }
    ScoreResult result;
    ASSERT_TRUE(shard.Score(id, &result).ok());
    EXPECT_EQ(result.logit, OfflineLogit(model, g))
        << named.name << " graph " << i << " pool=" << pool_enabled;
    EXPECT_EQ(result.edges_scored, g.num_edges());
    ASSERT_TRUE(shard.EndSession(id).ok());
  }
}

TEST(ServeParityTest, FinalScoreBitIdenticalAcrossConfigs) {
  for (const tensor::SimdMode mode : ParityModes()) {
    tensor::ScopedSimdMode pin(mode);
    for (const NamedConfig& named : ParityConfigs()) {
      ExpectFinalScoreParity(named, /*pool_enabled=*/true);
    }
  }
}

TEST(ServeParityTest, FinalScoreBitIdenticalPoolDisabled) {
  for (const tensor::SimdMode mode : ParityModes()) {
    tensor::ScopedSimdMode pin(mode);
    for (const NamedConfig& named : ParityConfigs()) {
      ExpectFinalScoreParity(named, /*pool_enabled=*/false);
    }
  }
}

// Scoring after every single edge must match the offline forward over the
// corresponding prefix graph. This is the hard case for incrementality:
// with normalize_time on, each new max timestamp invalidates time-coupled
// state and forces a refold, which must land on exactly the same floats.
void ExpectPrefixParity(const NamedConfig& named) {
  model::ModelRegistry registry(named.config, /*seed=*/5);
  core::TpGnnModel& model = registry.initial_model();
  SessionShard shard(registry, ShardOptions{}, /*metrics=*/nullptr);
  graph::GraphDataset dataset = ParityDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  const uint64_t id = 7;
  ASSERT_TRUE(shard
                  .BeginSession(id, g.num_nodes(), g.feature_dim(),
                                AllNodeFeatures(g), /*now=*/0.0)
                  .ok());

  graph::TemporalGraph prefix(g.num_nodes(), g.feature_dim());
  for (int64_t node = 0; node < g.num_nodes(); ++node) {
    prefix.SetNodeFeature(node, g.node_feature(node));
  }
  for (size_t k = 0; k < g.edges().size(); ++k) {
    const graph::TemporalEdge& e = g.edges()[k];
    ASSERT_TRUE(shard.AddEdge(id, e.src, e.dst, e.time, /*now=*/0.0).ok());
    prefix.AddEdge(e.src, e.dst, e.time);
    ScoreResult result;
    ASSERT_TRUE(shard.Score(id, &result).ok());
    EXPECT_EQ(result.logit, OfflineLogit(model, prefix))
        << named.name << " prefix " << (k + 1);
  }
}

TEST(ServeParityTest, EveryPrefixScoreBitIdentical) {
  for (const tensor::SimdMode mode : ParityModes()) {
    tensor::ScopedSimdMode pin(mode);
    for (const NamedConfig& named : ParityConfigs()) {
      ExpectPrefixParity(named);
    }
  }
}

// Out-of-order arrival: the shard re-sorts chronologically, exactly like
// the offline forward does over a graph holding the same arrival order.
TEST(ServeParityTest, OutOfOrderArrivalMatchesOfflineForward) {
  for (const NamedConfig& named : ParityConfigs()) {
    model::ModelRegistry registry(named.config, /*seed=*/5);
    core::TpGnnModel& model = registry.initial_model();
    SessionShard shard(registry, ShardOptions{}, /*metrics=*/nullptr);
    graph::GraphDataset dataset = ParityDataset();
    const graph::TemporalGraph& g = dataset[1].graph;
    const uint64_t id = 8;
    ASSERT_TRUE(shard
                    .BeginSession(id, g.num_nodes(), g.feature_dim(),
                                  AllNodeFeatures(g), /*now=*/0.0)
                    .ok());
    // Reverse arrival order; the offline graph gets the same arrival order
    // so both sides sort the identical edge list.
    graph::TemporalGraph reversed(g.num_nodes(), g.feature_dim());
    for (int64_t node = 0; node < g.num_nodes(); ++node) {
      reversed.SetNodeFeature(node, g.node_feature(node));
    }
    for (auto it = g.edges().rbegin(); it != g.edges().rend(); ++it) {
      ASSERT_TRUE(shard.AddEdge(id, it->src, it->dst, it->time, 0.0).ok());
      reversed.AddEdge(it->src, it->dst, it->time);
    }
    ScoreResult result;
    ASSERT_TRUE(shard.Score(id, &result).ok());
    EXPECT_EQ(result.logit, OfflineLogit(model, reversed)) << named.name;
    // And again: a repeated score without new edges must be stable.
    ScoreResult again;
    ASSERT_TRUE(shard.Score(id, &again).ok());
    EXPECT_EQ(again.logit, result.logit) << named.name;
  }
}

// Interleaved sessions must not contaminate each other's state: scores of
// two sessions fed alternately equal their isolated-session scores.
TEST(ServeParityTest, InterleavedSessionsStayIndependent) {
  core::TpGnnConfig config = TinyServeConfig();
  config.updater = core::Updater::kGru;
  model::ModelRegistry registry(config, /*seed=*/5);
  core::TpGnnModel& model = registry.initial_model();
  SessionShard shard(registry, ShardOptions{}, /*metrics=*/nullptr);
  graph::GraphDataset dataset = ParityDataset();
  const graph::TemporalGraph& a = dataset[2].graph;
  const graph::TemporalGraph& b = dataset[3].graph;
  ASSERT_TRUE(shard.BeginSession(1, a.num_nodes(), a.feature_dim(),
                                 AllNodeFeatures(a), 0.0)
                  .ok());
  ASSERT_TRUE(shard.BeginSession(2, b.num_nodes(), b.feature_dim(),
                                 AllNodeFeatures(b), 0.0)
                  .ok());
  const size_t steps = std::max(a.edges().size(), b.edges().size());
  for (size_t k = 0; k < steps; ++k) {
    if (k < a.edges().size()) {
      const graph::TemporalEdge& e = a.edges()[k];
      ASSERT_TRUE(shard.AddEdge(1, e.src, e.dst, e.time, 0.0).ok());
    }
    if (k < b.edges().size()) {
      const graph::TemporalEdge& e = b.edges()[k];
      ASSERT_TRUE(shard.AddEdge(2, e.src, e.dst, e.time, 0.0).ok());
    }
  }
  ScoreResult ra;
  ScoreResult rb;
  ASSERT_TRUE(shard.Score(1, &ra).ok());
  ASSERT_TRUE(shard.Score(2, &rb).ok());
  EXPECT_EQ(ra.logit, OfflineLogit(model, a));
  EXPECT_EQ(rb.logit, OfflineLogit(model, b));
}

}  // namespace
}  // namespace tpgnn::serve
