// EventReplayer: dataset -> interleaved event stream. Checks stream
// ordering, per-session event sequencing, score-request placement, the
// speed multiplier, and construction determinism.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "data/datasets.h"
#include "serve/replay.h"

namespace tpgnn::serve {
namespace {

graph::GraphDataset SmallDataset() {
  return data::MakeDataset(data::HdfsSpec(), /*count=*/8, /*seed=*/23);
}

TEST(ReplayTest, StreamIsTimeOrderedAndComplete) {
  graph::GraphDataset dataset = SmallDataset();
  ReplayOptions options;
  options.session_start_interval = 0.5;
  EventReplayer replayer(dataset, options);

  EXPECT_EQ(replayer.num_sessions(), dataset.size());
  EXPECT_EQ(replayer.num_score_requests(), dataset.size());  // score_at_end.

  size_t total_edges = 0;
  for (const graph::LabeledGraph& sample : dataset) {
    total_edges += sample.graph.edges().size();
  }
  // One Begin + one Score + one End per session, plus every edge.
  EXPECT_EQ(replayer.events().size(), 3 * dataset.size() + total_edges);

  double previous = 0.0;
  for (const Event& e : replayer.events()) {
    EXPECT_GE(e.time, previous);  // Nondecreasing stream clock.
    previous = e.time;
  }
  EXPECT_EQ(replayer.duration(), previous);
}

TEST(ReplayTest, PerSessionSequencingIsPreserved) {
  graph::GraphDataset dataset = SmallDataset();
  ReplayOptions options;
  options.session_start_interval = 0.1;  // Heavy interleaving.
  options.score_every_edges = 2;
  EventReplayer replayer(dataset, options);

  struct SessionTrace {
    bool begun = false;
    bool ended = false;
    size_t edges = 0;
    double last_edge_time = -1.0;
  };
  std::map<uint64_t, SessionTrace> traces;
  for (const Event& e : replayer.events()) {
    SessionTrace& trace = traces[e.session_id];
    switch (e.kind) {
      case Event::Kind::kBegin:
        EXPECT_FALSE(trace.begun);
        trace.begun = true;
        break;
      case Event::Kind::kEdge:
        EXPECT_TRUE(trace.begun);
        EXPECT_FALSE(trace.ended);
        // Session-local timestamps arrive chronologically.
        EXPECT_GE(e.edge_time, trace.last_edge_time);
        trace.last_edge_time = e.edge_time;
        ++trace.edges;
        break;
      case Event::Kind::kScore:
        EXPECT_TRUE(trace.begun);
        EXPECT_FALSE(trace.ended);
        EXPECT_GE(e.label, 0);  // Ground truth is carried along.
        break;
      case Event::Kind::kEnd:
        EXPECT_TRUE(trace.begun);
        EXPECT_FALSE(trace.ended);
        trace.ended = true;
        break;
    }
  }
  ASSERT_EQ(traces.size(), dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const SessionTrace& trace = traces.at(options.first_session_id + i);
    EXPECT_TRUE(trace.ended);
    EXPECT_EQ(trace.edges, dataset[i].graph.edges().size());
  }
}

TEST(ReplayTest, SessionsActuallyInterleave) {
  // With starts packed closer than session durations, at least one foreign
  // event must land between some session's Begin and End.
  ReplayOptions options;
  options.session_start_interval = 0.05;
  EventReplayer replayer(SmallDataset(), options);
  bool interleaved = false;
  uint64_t open_session = 0;
  for (const Event& e : replayer.events()) {
    if (e.kind == Event::Kind::kBegin && open_session == 0) {
      open_session = e.session_id;
    } else if (open_session != 0 && e.session_id != open_session) {
      interleaved = true;
      break;
    } else if (e.kind == Event::Kind::kEnd && e.session_id == open_session) {
      open_session = 0;
    }
  }
  EXPECT_TRUE(interleaved);
}

TEST(ReplayTest, SpeedCompressesStreamClockOnly) {
  graph::GraphDataset dataset = SmallDataset();
  ReplayOptions slow;
  slow.session_start_interval = 1.0;
  ReplayOptions fast = slow;
  fast.speed = 4.0;
  EventReplayer baseline(dataset, slow);
  EventReplayer compressed(dataset, fast);

  ASSERT_EQ(baseline.events().size(), compressed.events().size());
  EXPECT_NEAR(compressed.duration(), baseline.duration() / 4.0, 1e-9);
  for (size_t i = 0; i < baseline.events().size(); ++i) {
    const Event& a = baseline.events()[i];
    const Event& b = compressed.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_NEAR(b.time, a.time / 4.0, 1e-9);
    if (a.kind == Event::Kind::kEdge) {
      // Model-facing timestamps are untouched by the speed multiplier.
      EXPECT_EQ(a.edge_time, b.edge_time);
    }
  }
}

TEST(ReplayTest, ConstructionIsDeterministic) {
  graph::GraphDataset dataset = SmallDataset();
  ReplayOptions options;
  options.score_every_edges = 3;
  EventReplayer a(dataset, options);
  EventReplayer b(dataset, options);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].session_id, b.events()[i].session_id);
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
  }
}

TEST(ReplayTest, BeginShipsAllNodeFeatures) {
  graph::GraphDataset dataset = SmallDataset();
  EventReplayer replayer(dataset, ReplayOptions{});
  const Event& begin = replayer.events().front();
  ASSERT_EQ(begin.kind, Event::Kind::kBegin);
  const graph::TemporalGraph& g = dataset[0].graph;
  EXPECT_EQ(begin.num_nodes, g.num_nodes());
  EXPECT_EQ(begin.feature_dim, g.feature_dim());
  ASSERT_EQ(begin.features.size(), static_cast<size_t>(g.num_nodes()));
  for (const NodeInit& f : begin.features) {
    EXPECT_EQ(f.features, g.node_feature(f.node));
  }
}

}  // namespace
}  // namespace tpgnn::serve
