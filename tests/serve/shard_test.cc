// SessionShard lifecycle, validation, and eviction semantics: error
// statuses for malformed events, LRU eviction at the resident cap, TTL
// sweeps, and the pinning protocol that protects in-flight score requests.

#include <gtest/gtest.h>

#include <vector>

#include "core/model.h"
#include "model/registry.h"
#include "data/datasets.h"
#include "serve/metrics.h"
#include "serve/session_shard.h"
#include "serve_test_util.h"

namespace tpgnn::serve {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() : registry_(TinyServeConfig(), /*seed=*/3) {}

  // Opens a minimal two-node session.
  Status Begin(SessionShard& shard, uint64_t id, double now = 0.0) {
    return shard.BeginSession(id, /*num_nodes=*/2, /*feature_dim=*/3,
                              {{0, {1.0f, 0.0f, 0.0f}}}, now);
  }

  model::ModelRegistry registry_;
  Metrics metrics_;
};

TEST_F(ShardTest, LifecycleAndValidation) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  ASSERT_TRUE(Begin(shard, 1).ok());
  EXPECT_EQ(shard.resident_sessions(), 1u);

  // Duplicate id, bad node count, bad feature width.
  EXPECT_EQ(Begin(shard, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(shard.BeginSession(2, 0, 3, {}, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(shard.BeginSession(2, 2, 5, {}, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(shard.BeginSession(2, 2, 3, {{7, {1, 2, 3}}}, 0.0).code(),
            StatusCode::kInvalidArgument);

  // Edge validation.
  EXPECT_EQ(shard.AddEdge(99, 0, 1, 1.0, 0.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(shard.AddEdge(1, 0, 5, 1.0, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(shard.AddEdge(1, -1, 1, 1.0, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(shard.AddEdge(1, 0, 1, -1.0, 0.0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(shard.AddEdge(1, 0, 1, 1.0, 0.0).ok());

  ScoreResult result;
  EXPECT_EQ(shard.Score(99, &result).code(), StatusCode::kNotFound);
  ASSERT_TRUE(shard.Score(1, &result).ok());
  EXPECT_EQ(result.edges_scored, 1);
  EXPECT_GT(result.probability, 0.0f);
  EXPECT_LT(result.probability, 1.0f);

  // End releases the session; later events are NotFound.
  ASSERT_TRUE(shard.EndSession(1).ok());
  EXPECT_EQ(shard.resident_sessions(), 0u);
  EXPECT_EQ(shard.EndSession(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(shard.AddEdge(1, 0, 1, 2.0, 0.0).code(), StatusCode::kNotFound);
}

TEST_F(ShardTest, ScoringEmptySessionWorks) {
  // A session with zero edges scores the initial embedding (no extractor
  // input edges) without crashing.
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  ASSERT_TRUE(Begin(shard, 1).ok());
  ScoreResult result;
  ASSERT_TRUE(shard.Score(1, &result).ok());
  EXPECT_EQ(result.edges_scored, 0);
}

TEST_F(ShardTest, LruEvictionAtCap) {
  ShardOptions options;
  options.max_resident_sessions = 2;
  SessionShard shard(registry_, options, &metrics_);
  ASSERT_TRUE(Begin(shard, 1, /*now=*/1.0).ok());
  ASSERT_TRUE(Begin(shard, 2, /*now=*/2.0).ok());
  // Touch session 1 so session 2 becomes least recently used.
  ASSERT_TRUE(shard.AddEdge(1, 0, 1, 1.0, /*now=*/3.0).ok());

  ASSERT_TRUE(Begin(shard, 3, /*now=*/4.0).ok());
  EXPECT_EQ(shard.resident_sessions(), 2u);
  EXPECT_EQ(metrics_.sessions_evicted.load(), 1u);
  // Session 2 (LRU) was evicted; 1 and 3 survive.
  ScoreResult result;
  EXPECT_EQ(shard.Score(2, &result).code(), StatusCode::kNotFound);
  EXPECT_TRUE(shard.Score(1, &result).ok());
  EXPECT_TRUE(shard.Score(3, &result).ok());
}

TEST_F(ShardTest, PinnedSessionsAreNotEvicted) {
  ShardOptions options;
  options.max_resident_sessions = 2;
  SessionShard shard(registry_, options, &metrics_);
  ASSERT_TRUE(Begin(shard, 1, 1.0).ok());
  ASSERT_TRUE(Begin(shard, 2, 2.0).ok());
  ASSERT_TRUE(shard.Pin(1).ok());  // LRU but pinned.

  ASSERT_TRUE(Begin(shard, 3, 3.0).ok());
  // Session 2 was evicted instead of the pinned LRU session 1.
  ScoreResult result;
  EXPECT_TRUE(shard.Score(1, &result).ok());
  EXPECT_EQ(shard.Score(2, &result).code(), StatusCode::kNotFound);

  // With both residents pinned, there is nothing to evict: Overloaded.
  ASSERT_TRUE(shard.Pin(3).ok());
  EXPECT_EQ(Begin(shard, 4, 4.0).code(), StatusCode::kOverloaded);
  EXPECT_EQ(metrics_.overload_rejections.load(), 1u);

  // Unpinning frees capacity again.
  shard.Unpin(1);
  ASSERT_TRUE(Begin(shard, 4, 5.0).ok());
}

TEST_F(ShardTest, EndWhilePinnedDefersRemoval) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  ASSERT_TRUE(Begin(shard, 1).ok());
  ASSERT_TRUE(shard.AddEdge(1, 0, 1, 1.0, 0.0).ok());
  ASSERT_TRUE(shard.Pin(1).ok());
  ASSERT_TRUE(shard.EndSession(1).ok());

  // The ended session no longer accepts edges but can still be scored by
  // the in-flight request that pinned it.
  EXPECT_EQ(shard.AddEdge(1, 0, 1, 2.0, 0.0).code(),
            StatusCode::kFailedPrecondition);
  ScoreResult result;
  ASSERT_TRUE(shard.Score(1, &result).ok());
  EXPECT_EQ(result.edges_scored, 1);

  shard.Unpin(1);  // Last pin drops -> deferred removal completes.
  EXPECT_EQ(shard.resident_sessions(), 0u);
  EXPECT_EQ(shard.Score(1, &result).code(), StatusCode::kNotFound);
}

TEST_F(ShardTest, TtlEvictsIdleSessionsOnly) {
  ShardOptions options;
  options.idle_ttl_seconds = 10.0;
  SessionShard shard(registry_, options, &metrics_);
  ASSERT_TRUE(Begin(shard, 1, /*now=*/0.0).ok());
  ASSERT_TRUE(Begin(shard, 2, /*now=*/0.0).ok());
  ASSERT_TRUE(Begin(shard, 3, /*now=*/0.0).ok());
  ASSERT_TRUE(shard.AddEdge(2, 0, 1, 1.0, /*now=*/8.0).ok());  // Keep 2 fresh.
  ASSERT_TRUE(shard.Pin(3).ok());  // Idle but pinned.

  shard.EvictIdle(/*now=*/15.0);
  EXPECT_EQ(shard.resident_sessions(), 2u);
  ScoreResult result;
  EXPECT_EQ(shard.Score(1, &result).code(), StatusCode::kNotFound);
  EXPECT_TRUE(shard.Score(2, &result).ok());
  EXPECT_TRUE(shard.Score(3, &result).ok());

  // TTL disabled: sweep is a no-op.
  SessionShard no_ttl(registry_, ShardOptions{}, &metrics_);
  ASSERT_TRUE(Begin(no_ttl, 1, 0.0).ok());
  no_ttl.EvictIdle(1e9);
  EXPECT_EQ(no_ttl.resident_sessions(), 1u);
}

TEST_F(ShardTest, RouterPlacesSessionsConsistently) {
  SessionRouter::Options options;
  options.num_shards = 3;
  SessionRouter router(registry_, options, &metrics_);
  ASSERT_EQ(router.num_shards(), 3u);
  for (uint64_t id = 1; id <= 30; ++id) {
    SessionShard& shard = router.ShardFor(id);
    EXPECT_EQ(&shard, &router.ShardFor(id));  // Stable placement.
    ASSERT_TRUE(shard
                    .BeginSession(id, 2, 3, {{0, {1.0f, 0.0f, 0.0f}}}, 0.0)
                    .ok());
  }
  EXPECT_EQ(router.resident_sessions(), 30u);
  // Splitmix64 spreads 30 ids over 3 shards: no shard should be empty.
  for (size_t i = 0; i < router.num_shards(); ++i) {
    EXPECT_GT(router.shard(i).resident_sessions(), 0u) << "shard " << i;
  }
}

TEST_F(ShardTest, MetricsCountLifecycleEvents) {
  SessionShard shard(registry_, ShardOptions{}, &metrics_);
  ASSERT_TRUE(Begin(shard, 1).ok());
  ASSERT_TRUE(shard.AddEdge(1, 0, 1, 1.0, 0.0).ok());
  ASSERT_TRUE(shard.AddEdge(1, 1, 0, 2.0, 0.0).ok());
  ASSERT_TRUE(shard.EndSession(1).ok());
  EXPECT_EQ(metrics_.sessions_begun.load(), 1u);
  EXPECT_EQ(metrics_.edges_ingested.load(), 2u);
  EXPECT_EQ(metrics_.sessions_ended.load(), 1u);
}

}  // namespace
}  // namespace tpgnn::serve
