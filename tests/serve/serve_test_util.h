#ifndef TPGNN_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define TPGNN_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <vector>

#include "core/model.h"
#include "graph/temporal_graph.h"
#include "serve/event.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Shared helpers for the serving tests: shipping a graph's node set into a
// session Begin, and the offline reference score an incremental score must
// reproduce bit-for-bit.

namespace tpgnn::serve {

inline std::vector<NodeInit> AllNodeFeatures(const graph::TemporalGraph& g) {
  std::vector<NodeInit> features;
  features.reserve(static_cast<size_t>(g.num_nodes()));
  for (int64_t node = 0; node < g.num_nodes(); ++node) {
    features.push_back({node, g.node_feature(node)});
  }
  return features;
}

// The offline reference: the model's zero-copy inference forward over the
// fully built graph. Incremental serving scores are asserted bit-identical
// to this.
inline float OfflineLogit(core::TpGnnModel& model,
                          const graph::TemporalGraph& g) {
  tensor::NoGradGuard no_grad;
  Rng rng(0);
  return model.ForwardLogit(g, /*training=*/false, rng).item();
}

// Small model config so the full parity matrix stays fast.
inline core::TpGnnConfig TinyServeConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

}  // namespace tpgnn::serve

#endif  // TPGNN_TESTS_SERVE_SERVE_TEST_UTIL_H_
