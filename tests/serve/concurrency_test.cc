// Concurrency contracts of the serving subsystem (also the TSan smoke
// target, see .github/workflows/ci.yml):
//  * Multi-threaded ingest, with threads owning disjoint session subsets,
//    yields bit-identical per-session scores regardless of the thread and
//    shard counts — per-session determinism depends only on the event
//    prefix, never on interleaving.
//  * Eviction under a tight resident cap never drops a session with an
//    in-flight (pinned) score request: every enqueued request completes.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "serve/inference_engine.h"
#include "serve_test_util.h"

namespace tpgnn::serve {
namespace {

graph::GraphDataset SessionDataset() {
  return data::MakeDataset(data::HdfsSpec(), /*count=*/16, /*seed=*/41);
}

// Streams session `id` (graph index id - 1) through the engine: Begin,
// every edge, one Score carrying the label, End. Retries overloaded
// submissions after draining a micro-batch into `results`.
void StreamSession(InferenceEngine& engine, const graph::GraphDataset& dataset,
                   uint64_t id, std::vector<ScoreResult>* results) {
  const graph::TemporalGraph& g = dataset[id - 1].graph;
  auto submit = [&](const Event& event) {
    Status status = engine.Ingest(event);
    while (status.code() == StatusCode::kOverloaded) {
      engine.ProcessPending(results);
      status = engine.Ingest(event);
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
  };

  Event begin;
  begin.kind = Event::Kind::kBegin;
  begin.session_id = id;
  begin.num_nodes = g.num_nodes();
  begin.feature_dim = g.feature_dim();
  begin.features = AllNodeFeatures(g);
  submit(begin);
  for (const graph::TemporalEdge& e : g.edges()) {
    Event edge;
    edge.kind = Event::Kind::kEdge;
    edge.session_id = id;
    edge.src = e.src;
    edge.dst = e.dst;
    edge.edge_time = e.time;
    submit(edge);
  }
  Event score;
  score.kind = Event::Kind::kScore;
  score.session_id = id;
  score.label = dataset[id - 1].label;
  submit(score);
  Event end;
  end.kind = Event::Kind::kEnd;
  end.session_id = id;
  submit(end);
}

// Runs the dataset through an engine with `num_threads` ingest threads
// owning disjoint session subsets, returning session_id -> logit.
std::map<uint64_t, float> RunConcurrent(const graph::GraphDataset& dataset,
                                        int num_threads, int num_shards,
                                        size_t max_pending) {
  EngineOptions options;
  options.num_shards = num_shards;
  options.max_pending_scores = max_pending;
  options.max_batch = 4;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/9, options);

  std::vector<std::vector<ScoreResult>> per_thread(
      static_cast<size_t>(num_threads));
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      // Thread t owns sessions t+1, t+1+num_threads, ... (disjoint).
      for (uint64_t id = static_cast<uint64_t>(t) + 1; id <= dataset.size();
           id += static_cast<uint64_t>(num_threads)) {
        StreamSession(engine, dataset, id,
                      &per_thread[static_cast<size_t>(t)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<ScoreResult> results;
  engine.Flush(&results);
  for (const std::vector<ScoreResult>& r : per_thread) {
    results.insert(results.end(), r.begin(), r.end());
  }

  std::map<uint64_t, float> logits;
  for (const ScoreResult& r : results) {
    EXPECT_TRUE(r.status.ok()) << "session " << r.session_id << ": "
                               << r.status.ToString();
    logits[r.session_id] = r.logit;
  }
  EXPECT_EQ(engine.resident_sessions(), 0u);
  return logits;
}

TEST(ServeConcurrencyTest, ScoresDeterministicAcrossThreadAndShardCounts) {
  graph::GraphDataset dataset = SessionDataset();

  // Reference: serial ingest, single shard.
  std::map<uint64_t, float> reference =
      RunConcurrent(dataset, /*num_threads=*/1, /*num_shards=*/1,
                    /*max_pending=*/256);
  ASSERT_EQ(reference.size(), dataset.size());

  // And the offline forward agrees, anchoring the whole matrix.
  core::TpGnnModel model(TinyServeConfig(), /*seed=*/9);
  for (const auto& [id, logit] : reference) {
    EXPECT_EQ(logit, OfflineLogit(model, dataset[id - 1].graph))
        << "session " << id;
  }

  struct Setup {
    int threads;
    int shards;
    size_t max_pending;
  };
  for (const Setup& setup : {Setup{2, 1, 256}, Setup{2, 4, 256},
                             Setup{4, 3, 8}, Setup{3, 8, 2}}) {
    std::map<uint64_t, float> logits = RunConcurrent(
        dataset, setup.threads, setup.shards, setup.max_pending);
    ASSERT_EQ(logits.size(), dataset.size())
        << setup.threads << " threads, " << setup.shards << " shards";
    for (const auto& [id, logit] : reference) {
      EXPECT_EQ(logits.at(id), logit)
          << "session " << id << " with " << setup.threads << " threads, "
          << setup.shards << " shards, queue " << setup.max_pending;
    }
  }
}

TEST(ServeConcurrencyTest, ConcurrentDrainerSeesEveryScore) {
  // A dedicated drainer thread races ProcessPending against the ingest
  // threads; between them, every request must surface exactly once.
  graph::GraphDataset dataset = SessionDataset();
  EngineOptions options;
  options.num_shards = 4;
  options.max_pending_scores = 4;
  options.max_batch = 2;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/9, options);

  std::atomic<bool> done{false};
  std::vector<ScoreResult> drained;
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (engine.ProcessPending(&drained) == 0) {
        std::this_thread::yield();
      }
    }
  });

  constexpr int kThreads = 3;
  std::vector<std::vector<ScoreResult>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t id = static_cast<uint64_t>(t) + 1; id <= dataset.size();
           id += kThreads) {
        StreamSession(engine, dataset, id, &per_thread[static_cast<size_t>(t)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  engine.Flush(&drained);

  size_t total = drained.size();
  for (const std::vector<ScoreResult>& r : per_thread) total += r.size();
  EXPECT_EQ(total, dataset.size());
  EXPECT_EQ(engine.metrics().scores_completed.load(), dataset.size());
  EXPECT_EQ(engine.metrics().scores_failed.load(), 0u);
  EXPECT_EQ(engine.resident_sessions(), 0u);
}

TEST(ServeConcurrencyTest, EvictionNeverDropsInFlightScores) {
  // Resident cap far below the live session count: Begin-driven eviction
  // churns constantly, but a session with a queued score is pinned and must
  // survive until its result is produced.
  graph::GraphDataset dataset = SessionDataset();
  EngineOptions options;
  options.num_shards = 2;
  options.max_resident_sessions = 4;
  options.max_pending_scores = 64;
  options.max_batch = 4;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/9, options);

  constexpr int kThreads = 4;
  std::vector<std::vector<ScoreResult>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // One session per lambda call so an eviction mid-session skips only
      // that session, not the thread's remaining ones.
      auto stream_one = [&](uint64_t id) {
        // Sessions are deliberately left un-Ended so the cap stays under
        // pressure; eviction is the only thing freeing shard slots.
        const graph::TemporalGraph& g = dataset[id - 1].graph;
        Event begin;
        begin.kind = Event::Kind::kBegin;
        begin.session_id = id;
        begin.num_nodes = g.num_nodes();
        begin.feature_dim = g.feature_dim();
        begin.features = AllNodeFeatures(g);
        Status status = engine.Ingest(begin);
        while (status.code() == StatusCode::kOverloaded) {
          engine.ProcessPending(&per_thread[static_cast<size_t>(t)]);
          status = engine.Ingest(begin);
        }
        ASSERT_TRUE(status.ok()) << status.ToString();
        for (const graph::TemporalEdge& e : g.edges()) {
          Event edge;
          edge.kind = Event::Kind::kEdge;
          edge.session_id = id;
          edge.src = e.src;
          edge.dst = e.dst;
          edge.edge_time = e.time;
          // The session may already have been evicted by a neighbour's
          // Begin — that is allowed; a NotFound edge just means the session
          // is gone and we skip its score.
          Status edge_status = engine.Ingest(edge);
          if (edge_status.code() == StatusCode::kNotFound) return;
          ASSERT_TRUE(edge_status.ok()) << edge_status.ToString();
        }
        Event score;
        score.kind = Event::Kind::kScore;
        score.session_id = id;
        status = engine.Ingest(score);
        while (status.code() == StatusCode::kOverloaded) {
          engine.ProcessPending(&per_thread[static_cast<size_t>(t)]);
          status = engine.Ingest(score);
        }
        // NotFound: evicted before the request was enqueued — acceptable.
        // But once enqueued (ok), completion is guaranteed below.
        if (!status.ok()) {
          ASSERT_EQ(status.code(), StatusCode::kNotFound)
              << status.ToString();
        }
      };
      for (uint64_t id = static_cast<uint64_t>(t) + 1; id <= dataset.size();
           id += kThreads) {
        stream_one(id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<ScoreResult> results;
  engine.Flush(&results);
  for (const std::vector<ScoreResult>& r : per_thread) {
    results.insert(results.end(), r.begin(), r.end());
  }

  // The pin taken at enqueue makes every accepted request succeed: a
  // NotFound result here would mean eviction dropped an in-flight score.
  for (const ScoreResult& r : results) {
    EXPECT_TRUE(r.status.ok())
        << "in-flight score dropped for session " << r.session_id << ": "
        << r.status.ToString();
  }
  EXPECT_EQ(engine.metrics().scores_failed.load(), 0u);
  EXPECT_EQ(results.size(), engine.metrics().scores_completed.load());
}

}  // namespace
}  // namespace tpgnn::serve
