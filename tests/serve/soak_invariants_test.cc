// The soak harness's core accounting invariant, isolated: every session
// the engine ever admitted is — at any quiescent point — exactly one of
// ended, evicted, or resident:
//
//   sessions_begun == sessions_ended + sessions_evicted + resident
//
// held bit-exactly through eviction churn (tiny resident cap, abandoned
// sessions, TTL sweeps) and with Begin / score-enqueue faults injected.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "serve_test_util.h"
#include "util/failpoint.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace tpgnn::serve {
namespace {

void ExpectExactAccounting(InferenceEngine& engine, const char* where) {
  // Quiesce first: no pinned in-flight score may defer an End.
  std::vector<ScoreResult> results;
  engine.Flush(&results);
  const MetricsSnapshot snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap.sessions_begun, snap.sessions_ended + snap.sessions_evicted +
                                     engine.resident_sessions())
      << where << ": begun=" << snap.sessions_begun
      << " ended=" << snap.sessions_ended
      << " evicted=" << snap.sessions_evicted
      << " resident=" << engine.resident_sessions();
}

// Streams a bounded churn workload through the engine, checking the
// accounting equation at every checkpoint. Returns the final snapshot.
MetricsSnapshot RunChurn(InferenceEngine& engine, uint64_t seed,
                         uint64_t num_sessions) {
  workload::WorkloadOptions options = workload::EvictionChurnProfile(seed);
  options.num_sessions = num_sessions;
  options.max_open_sessions = 128;
  workload::WorkloadGenerator generator(options);

  std::vector<ScoreResult> results;
  Event event;
  uint64_t processed = 0;
  while (generator.Next(&event)) {
    Status status = engine.Ingest(event);
    for (int retry = 0; status.code() == StatusCode::kOverloaded && retry < 64;
         ++retry) {
      engine.ProcessPending(&results);
      status = engine.Ingest(event);
    }
    // Non-overload failures (injected faults, post-shed kNotFound) are
    // expected under churn; the invariant must hold regardless.
    if (++processed % 5000 == 0) {
      ExpectExactAccounting(engine, "mid-stream checkpoint");
    }
    if (engine.pending_scores() >= engine.options().max_batch) {
      engine.ProcessPending(&results);
    }
  }
  ExpectExactAccounting(engine, "end of stream");
  return engine.metrics().Snapshot();
}

EngineOptions ChurnEngineOptions() {
  EngineOptions options;
  options.num_shards = 4;
  // A deliberately tiny cap so cap-eviction fires constantly, plus a short
  // TTL so abandoned sessions are reclaimed by sweeps.
  options.max_resident_sessions = 48;
  options.idle_ttl_seconds = 0.5;
  options.max_pending_scores = 128;
  options.max_batch = 32;
  return options;
}

TEST(SoakInvariantsTest, AccountingExactThroughEvictionChurn) {
  InferenceEngine engine(TinyServeConfig(), /*seed=*/3, ChurnEngineOptions());
  const MetricsSnapshot snap = RunChurn(engine, /*seed=*/17, 600);

  // The workload actually churned: evictions happened (cap + abandoned
  // sessions) and so did clean Ends.
  EXPECT_GT(snap.sessions_evicted, 0u);
  EXPECT_GT(snap.sessions_ended, 0u);
  EXPECT_GT(snap.sessions_begun, 100u);
}

TEST(SoakInvariantsTest, AccountingExactThroughForcedTtlSweep) {
  InferenceEngine engine(TinyServeConfig(), /*seed=*/3, ChurnEngineOptions());
  RunChurn(engine, /*seed=*/19, 300);

  // Force a full TTL sweep far in the future: everything resident (the
  // abandoned stragglers) is evicted; the equation must rebalance exactly.
  engine.router().EvictIdle(/*now=*/1e12);
  ExpectExactAccounting(engine, "after forced sweep");
  EXPECT_EQ(engine.resident_sessions(), 0u);
  const MetricsSnapshot snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap.sessions_begun, snap.sessions_ended + snap.sessions_evicted);
}

TEST(SoakInvariantsTest, AccountingExactWithBeginAndEnqueueFaults) {
  failpoint::SetSeed(11);
  failpoint::ScopedFailpoint begin_fault("shard.begin", /*probability=*/0.05,
                                         failpoint::Kind::kReturnError);
  failpoint::ScopedFailpoint enqueue_fault("engine.score_enqueue",
                                           /*probability=*/0.05,
                                           failpoint::Kind::kReturnError);

  InferenceEngine engine(TinyServeConfig(), /*seed=*/3, ChurnEngineOptions());
  const MetricsSnapshot snap = RunChurn(engine, /*seed=*/23, 600);

  // Both faults fired — rejected Begins must not count as begun, and
  // rejected enqueues must not leak pins that would defer Ends forever.
  EXPECT_GT(begin_fault.fires(), 0u);
  EXPECT_GT(enqueue_fault.fires(), 0u);
  EXPECT_GT(snap.sessions_begun, 0u);
  engine.router().EvictIdle(/*now=*/1e12);
  ExpectExactAccounting(engine, "after faults + sweep");
}

}  // namespace
}  // namespace tpgnn::serve
