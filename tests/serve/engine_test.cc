// InferenceEngine behaviour: event dispatch, micro-batched scoring in
// request order, bounded-queue backpressure, snapshot loading with config
// validation, and TTL sweeps wired to Begin events.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "nn/checkpoint.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "serve_test_util.h"

namespace tpgnn::serve {
namespace {

Event BeginEvent(uint64_t id, const graph::TemporalGraph& g, double time) {
  Event e;
  e.kind = Event::Kind::kBegin;
  e.session_id = id;
  e.time = time;
  e.num_nodes = g.num_nodes();
  e.feature_dim = g.feature_dim();
  e.features = AllNodeFeatures(g);
  return e;
}

Event EdgeEvent(uint64_t id, int64_t src, int64_t dst, double edge_time,
                double time) {
  Event e;
  e.kind = Event::Kind::kEdge;
  e.session_id = id;
  e.time = time;
  e.src = src;
  e.dst = dst;
  e.edge_time = edge_time;
  return e;
}

Event ScoreEvent(uint64_t id, int label = -1) {
  Event e;
  e.kind = Event::Kind::kScore;
  e.session_id = id;
  e.label = label;
  return e;
}

Event EndEvent(uint64_t id) {
  Event e;
  e.kind = Event::Kind::kEnd;
  e.session_id = id;
  return e;
}

TEST(EngineTest, ScoresMatchOfflineForwardInRequestOrder) {
  EngineOptions options;
  options.num_shards = 3;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, options);
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/5, /*seed=*/11);

  for (size_t i = 0; i < dataset.size(); ++i) {
    const graph::TemporalGraph& g = dataset[i].graph;
    const uint64_t id = i + 1;
    ASSERT_TRUE(engine.Ingest(BeginEvent(id, g, 0.0)).ok());
    for (const graph::TemporalEdge& e : g.edges()) {
      ASSERT_TRUE(engine.Ingest(EdgeEvent(id, e.src, e.dst, e.time, 0.0)).ok());
    }
    ASSERT_TRUE(engine.Ingest(ScoreEvent(id, dataset[i].label)).ok());
  }
  EXPECT_EQ(engine.pending_scores(), dataset.size());

  std::vector<ScoreResult> results;
  engine.Flush(&results);
  ASSERT_EQ(results.size(), dataset.size());
  EXPECT_EQ(engine.pending_scores(), 0u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
    EXPECT_EQ(results[i].session_id, i + 1);  // Request order preserved.
    EXPECT_EQ(results[i].label, dataset[i].label);
    EXPECT_EQ(results[i].logit, OfflineLogit(engine.model(), dataset[i].graph));
  }
  EXPECT_EQ(engine.metrics().scores_completed.load(), dataset.size());
}

TEST(EngineTest, ScoreQueueBackpressure) {
  EngineOptions options;
  options.max_pending_scores = 2;
  options.max_batch = 2;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, options);
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  const graph::TemporalGraph& g = dataset[0].graph;
  ASSERT_TRUE(engine.Ingest(BeginEvent(1, g, 0.0)).ok());

  ASSERT_TRUE(engine.Ingest(ScoreEvent(1)).ok());
  ASSERT_TRUE(engine.Ingest(ScoreEvent(1)).ok());
  Status overloaded = engine.Ingest(ScoreEvent(1));
  EXPECT_EQ(overloaded.code(), StatusCode::kOverloaded);
  EXPECT_EQ(engine.metrics().overload_rejections.load(), 1u);

  // Draining relieves the backpressure.
  std::vector<ScoreResult> results;
  EXPECT_EQ(engine.ProcessPending(&results), 2u);
  ASSERT_TRUE(engine.Ingest(ScoreEvent(1)).ok());
  engine.Flush(&results);
  ASSERT_EQ(results.size(), 3u);
  for (const ScoreResult& r : results) {
    EXPECT_TRUE(r.status.ok());
  }
}

TEST(EngineTest, ProcessPendingHonoursMaxBatch) {
  EngineOptions options;
  options.max_pending_scores = 16;
  options.max_batch = 3;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, options);
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  ASSERT_TRUE(engine.Ingest(BeginEvent(1, dataset[0].graph, 0.0)).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.Ingest(ScoreEvent(1)).ok());
  }
  std::vector<ScoreResult> results;
  EXPECT_EQ(engine.ProcessPending(&results), 3u);
  EXPECT_EQ(engine.ProcessPending(&results), 3u);
  EXPECT_EQ(engine.ProcessPending(&results), 2u);
  EXPECT_EQ(engine.ProcessPending(&results), 0u);
}

TEST(EngineTest, ScoreForUnknownSessionFailsCleanly) {
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, EngineOptions{});
  EXPECT_EQ(engine.Ingest(ScoreEvent(42)).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.pending_scores(), 0u);  // Nothing enqueued.
}

TEST(EngineTest, EndWithPendingScoreStillScores) {
  // The replayer emits Score immediately before End; the pin taken at
  // enqueue must keep the session alive through the End until the score
  // completes.
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, EngineOptions{});
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  const graph::TemporalGraph& g = dataset[0].graph;
  ASSERT_TRUE(engine.Ingest(BeginEvent(1, g, 0.0)).ok());
  ASSERT_TRUE(engine.Ingest(EdgeEvent(1, 0, 1, 1.0, 0.0)).ok());
  ASSERT_TRUE(engine.Ingest(ScoreEvent(1)).ok());
  ASSERT_TRUE(engine.Ingest(EndEvent(1)).ok());
  EXPECT_EQ(engine.resident_sessions(), 1u);  // Deferred removal.

  std::vector<ScoreResult> results;
  engine.Flush(&results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].edges_scored, 1);
  EXPECT_EQ(engine.resident_sessions(), 0u);  // Removal completed at Unpin.
}

TEST(EngineTest, BeginSweepsIdleSessions) {
  EngineOptions options;
  options.idle_ttl_seconds = 5.0;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, options);
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/2, /*seed=*/11);
  ASSERT_TRUE(engine.Ingest(BeginEvent(1, dataset[0].graph, 0.0)).ok());
  EXPECT_EQ(engine.resident_sessions(), 1u);
  // A Begin far in the future sweeps the idle session 1.
  ASSERT_TRUE(engine.Ingest(BeginEvent(2, dataset[1].graph, 100.0)).ok());
  EXPECT_EQ(engine.resident_sessions(), 1u);
  EXPECT_EQ(engine.metrics().sessions_evicted.load(), 1u);
}

TEST(EngineTest, SnapshotRoundTripAndConfigValidation) {
  const std::string path = ::testing::TempDir() + "/tpgnn_serve_snapshot.txt";
  const core::TpGnnConfig config = TinyServeConfig();
  core::TpGnnModel trained(config, /*seed=*/77);
  ASSERT_TRUE(
      nn::SaveParameters(trained, path, core::ConfigMetadata(config)).ok());

  // Matching config: loads, and the engine then scores with the snapshot's
  // parameters.
  InferenceEngine engine(config, /*seed=*/5, EngineOptions{});
  ASSERT_TRUE(engine.LoadSnapshot(path).ok());
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  EXPECT_EQ(OfflineLogit(engine.model(), dataset[0].graph),
            OfflineLogit(trained, dataset[0].graph));

  // Mismatched config: rejected up front with a message naming the field.
  core::TpGnnConfig other = config;
  other.hidden_dim = 16;
  InferenceEngine mismatched(other, /*seed=*/5, EngineOptions{});
  Status status = mismatched.LoadSnapshot(path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.ToString().find("hidden_dim"), std::string::npos)
      << status.ToString();

  // A v1 snapshot (no metadata) skips config validation but still load-time
  // verifies names and shapes.
  const std::string v1 = ::testing::TempDir() + "/tpgnn_serve_snapshot_v1.txt";
  ASSERT_TRUE(nn::SaveParameters(trained, v1).ok());
  InferenceEngine v1_engine(config, /*seed=*/5, EngineOptions{});
  EXPECT_TRUE(v1_engine.LoadSnapshot(v1).ok());
  EXPECT_EQ(mismatched.LoadSnapshot(v1).code(),
            StatusCode::kFailedPrecondition);  // Shape mismatch mid-load.

  std::remove(path.c_str());
  std::remove(v1.c_str());
}

TEST(EngineTest, ReplayedStreamScoresEverySession) {
  // End-to-end: replayer-driven ingest with backpressure handling, as the
  // demo and benchmark run it.
  EngineOptions options;
  options.num_shards = 2;
  options.max_pending_scores = 8;
  options.max_batch = 4;
  InferenceEngine engine(TinyServeConfig(), /*seed=*/5, options);
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/12, /*seed=*/11);
  ReplayOptions replay_options;
  replay_options.score_every_edges = 4;
  EventReplayer replayer(dataset, replay_options);

  std::vector<ScoreResult> results;
  for (const Event& event : replayer.events()) {
    Status status = engine.Ingest(event);
    while (status.code() == StatusCode::kOverloaded) {
      engine.ProcessPending(&results);
      status = engine.Ingest(event);
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  engine.Flush(&results);
  ASSERT_EQ(results.size(), replayer.num_score_requests());
  for (const ScoreResult& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ(engine.resident_sessions(), 0u);
  EXPECT_EQ(engine.metrics().sessions_begun.load(), dataset.size());
  EXPECT_EQ(engine.metrics().sessions_ended.load(), dataset.size());
}

}  // namespace
}  // namespace tpgnn::serve
