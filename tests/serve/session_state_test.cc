// The session-state codec that rides inside SESSION_EXPORT/SESSION_IMPORT
// frames: byte-exact roundtrips (floats are raw IEEE-754 bits — a migrated
// session must rebuild the exporter's fold state exactly), strict
// bounds-checking (every truncation fails typed, no hostile count drives
// an allocation), and stability under arbitrary single-bit corruption.

#include "serve/session_state.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tpgnn::serve {
namespace {

SessionState SampleState(bool with_accumulator) {
  SessionState state;
  state.session_id = 0xABCDEF0123ull;
  state.num_nodes = 3;
  state.feature_dim = 2;
  state.features = {0.5f, -1.0f, 2.25f, 0.0f, -3.5f, 7.0f};
  // Arrival order deliberately NOT chronological: the order itself is part
  // of the fold identity and must survive the roundtrip untouched.
  state.edges = {{0, 1, 5.0}, {2, 0, 1.25}, {1, 2, 9.75}};
  state.sorted = false;
  state.fold_chrono = false;
  state.x_edges = 2;
  state.x_max_time = 5.0;
  state.finalized_edges = 1;
  state.finalized_max = 1.25;
  state.last_touch = 123.5;
  // Nonempty so the truncation/bit-flip sweeps cover the v2 tag bytes.
  state.model_version = "ckpt-b";
  state.x0 = {0.1f, -0.2f, 0.3f, 1.5f, -2.5f, 3.5f};
  state.x = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  if (with_accumulator) {
    state.m_edges = 2;
    state.m_max_time = 5.0;
    state.m = {9.0f, 8.0f, 7.0f};
  }
  return state;
}

void ExpectStatesEqual(const SessionState& a, const SessionState& b) {
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.feature_dim, b.feature_dim);
  EXPECT_EQ(a.features, b.features);  // operator== on float: bitwise here.
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.sorted, b.sorted);
  EXPECT_EQ(a.fold_chrono, b.fold_chrono);
  EXPECT_EQ(a.x_edges, b.x_edges);
  EXPECT_EQ(a.m_edges, b.m_edges);
  EXPECT_EQ(a.x_max_time, b.x_max_time);
  EXPECT_EQ(a.m_max_time, b.m_max_time);
  EXPECT_EQ(a.finalized_edges, b.finalized_edges);
  EXPECT_EQ(a.finalized_max, b.finalized_max);
  EXPECT_EQ(a.last_touch, b.last_touch);
  EXPECT_EQ(a.model_version, b.model_version);
  EXPECT_EQ(a.x0, b.x0);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.m, b.m);
}

TEST(SessionStateTest, RoundTripIsExactWithAndWithoutAccumulator) {
  for (bool with_m : {false, true}) {
    SCOPED_TRACE(with_m ? "with accumulator" : "gru-style, no accumulator");
    const SessionState original = SampleState(with_m);
    std::vector<uint8_t> blob;
    SerializeSessionState(original, &blob);

    SessionState decoded;
    ASSERT_TRUE(ParseSessionState(blob.data(), blob.size(), &decoded).ok());
    ExpectStatesEqual(original, decoded);

    // Canonical encoding: decode-then-encode reproduces the bytes.
    std::vector<uint8_t> reencoded;
    SerializeSessionState(decoded, &reencoded);
    EXPECT_EQ(reencoded, blob);
  }
}

TEST(SessionStateTest, EveryTruncationFailsTyped) {
  std::vector<uint8_t> blob;
  SerializeSessionState(SampleState(true), &blob);
  SessionState scratch;
  for (size_t len = 0; len < blob.size(); ++len) {
    Status status = ParseSessionState(blob.data(), len, &scratch);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "prefix of " << len << " bytes: " << status.ToString();
  }
}

TEST(SessionStateTest, TrailingBytesAreRejected) {
  std::vector<uint8_t> blob;
  SerializeSessionState(SampleState(false), &blob);
  blob.push_back(0x00);
  SessionState scratch;
  Status status = ParseSessionState(blob.data(), blob.size(), &scratch);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.ToString().find("trailing"), std::string::npos)
      << status.ToString();
}

TEST(SessionStateTest, ErrorsNameTheDamage) {
  std::vector<uint8_t> blob;
  SerializeSessionState(SampleState(false), &blob);
  SessionState scratch;

  {
    std::vector<uint8_t> bad = blob;
    bad[0] ^= 0xff;  // Magic.
    Status s = ParseSessionState(bad.data(), bad.size(), &scratch);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_NE(s.ToString().find("bad magic"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad = blob;
    bad[4] = kSessionStateVersion + 1;
    Status s = ParseSessionState(bad.data(), bad.size(), &scratch);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_NE(s.ToString().find("version"), std::string::npos);
  }
  {
    // A state claiming zero nodes can never hold a session.
    SessionState zero = SampleState(false);
    zero.num_nodes = 0;
    zero.features.clear();
    zero.edges.clear();
    zero.x0.clear();
    zero.x.clear();
    std::vector<uint8_t> bad;
    SerializeSessionState(zero, &bad);
    Status s = ParseSessionState(bad.data(), bad.size(), &scratch);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_NE(s.ToString().find("bad header"), std::string::npos);
  }
}

TEST(SessionStateTest, StructuralLiesFailEvenWhenWellFramed) {
  SessionState lying = SampleState(false);
  lying.x_edges = 99;  // More folded edges than the edge list holds.
  std::vector<uint8_t> blob;
  SerializeSessionState(lying, &blob);
  SessionState scratch;
  Status s = ParseSessionState(blob.data(), blob.size(), &scratch);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("fold counts"), std::string::npos)
      << s.ToString();

  SessionState ragged = SampleState(false);
  ragged.x.pop_back();  // x no longer rectangular over num_nodes, != x0.
  blob.clear();
  SerializeSessionState(ragged, &blob);
  s = ParseSessionState(blob.data(), blob.size(), &scratch);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("shape mismatch"), std::string::npos)
      << s.ToString();

  SessionState bad_edge = SampleState(false);
  bad_edge.edges[1].dst = 57;  // Outside [0, num_nodes).
  blob.clear();
  SerializeSessionState(bad_edge, &blob);
  s = ParseSessionState(blob.data(), blob.size(), &scratch);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("out of range"), std::string::npos)
      << s.ToString();
}

TEST(SessionStateTest, OversizedModelVersionTagRejected) {
  // A tag one byte past the cap must fail typed — the cap is what keeps a
  // corrupt length varint from driving an allocation.
  SessionState bloated = SampleState(false);
  bloated.model_version.assign(kMaxModelVersionName + 1, 'x');
  std::vector<uint8_t> blob;
  SerializeSessionState(bloated, &blob);
  SessionState scratch;
  Status s = ParseSessionState(blob.data(), blob.size(), &scratch);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("model version"), std::string::npos)
      << s.ToString();

  // At exactly the cap it round-trips.
  SessionState max_tag = SampleState(false);
  max_tag.model_version.assign(kMaxModelVersionName, 'y');
  blob.clear();
  SerializeSessionState(max_tag, &blob);
  ASSERT_TRUE(ParseSessionState(blob.data(), blob.size(), &scratch).ok());
  EXPECT_EQ(scratch.model_version, max_tag.model_version);
}

TEST(SessionStateTest, VersionOneBlobParsesWithEmptyTag) {
  // A v1 blob is a v2 blob with an empty tag, minus the trailing zero
  // length byte, stamped version 1 — pre-upgrade exporters keep migrating,
  // and the empty tag resolves to the importer's primary.
  SessionState legacy = SampleState(true);
  legacy.model_version.clear();
  std::vector<uint8_t> blob;
  SerializeSessionState(legacy, &blob);
  ASSERT_EQ(blob.back(), 0u);  // The empty tag's length varint.
  blob.pop_back();
  blob[4] = 1;  // Version byte follows the 4-byte magic.
  SessionState decoded;
  ASSERT_TRUE(ParseSessionState(blob.data(), blob.size(), &decoded).ok());
  EXPECT_TRUE(decoded.model_version.empty());
  ExpectStatesEqual(legacy, decoded);
}

TEST(SessionStateTest, EveryBitFlipParsesOrFailsTypedNeverCrashes) {
  std::vector<uint8_t> blob;
  SerializeSessionState(SampleState(true), &blob);
  SessionState scratch;
  size_t still_ok = 0;
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = blob;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      Status status =
          ParseSessionState(mutated.data(), mutated.size(), &scratch);
      // No checksum in this layer (the wire frame carries it): a flip in a
      // float payload legitimately parses. The contract is typed failure
      // or a structurally valid state — never a crash or wild allocation.
      if (status.ok()) {
        ++still_ok;
      } else {
        EXPECT_EQ(status.code(), StatusCode::kDataLoss)
            << "byte " << byte << " bit " << bit << ": "
            << status.ToString();
      }
    }
  }
  // Float-payload flips outnumber structural ones in this blob, so both
  // outcomes must actually occur — otherwise the sweep tests nothing.
  EXPECT_GT(still_ok, 0u);
  EXPECT_LT(still_ok, blob.size() * 8);
}

}  // namespace
}  // namespace tpgnn::serve
