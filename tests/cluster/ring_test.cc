// The consistent-hash ring's three contracts (ISSUE: hash-ring coverage):
// near-uniform distribution at 1k sessions across {2, 4, 8} backends,
// minimal key movement on membership change (~1/N, and only toward/from
// the changed backend — survivors never reshuffle among themselves), and
// placement that is a deterministic pure function of the backend-name set
// (insertion order, separate instances, separate processes all agree).

#include "cluster/ring.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tpgnn::cluster {
namespace {

constexpr uint64_t kSessions = 1000;

std::vector<std::string> Names(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back("backend-" + std::to_string(i));
  }
  return names;
}

HashRing MakeRing(const std::vector<std::string>& names) {
  HashRing ring;
  for (const std::string& name : names) {
    EXPECT_TRUE(ring.AddBackend(name));
  }
  return ring;
}

std::map<std::string, uint64_t> Shares(const HashRing& ring) {
  std::map<std::string, uint64_t> shares;
  for (uint64_t id = 1; id <= kSessions; ++id) {
    const std::string* owner = ring.OwnerOf(id);
    EXPECT_NE(owner, nullptr);
    ++shares[*owner];
  }
  return shares;
}

TEST(HashRingTest, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_EQ(ring.OwnerOf(42), nullptr);
  EXPECT_EQ(ring.num_backends(), 0u);
  EXPECT_FALSE(ring.Contains("a"));
  EXPECT_FALSE(ring.RemoveBackend("a"));
}

TEST(HashRingTest, AddAndRemoveAreIdempotent) {
  HashRing ring;
  EXPECT_TRUE(ring.AddBackend("a"));
  EXPECT_FALSE(ring.AddBackend("a"));
  EXPECT_EQ(ring.num_backends(), 1u);
  EXPECT_TRUE(ring.RemoveBackend("a"));
  EXPECT_FALSE(ring.RemoveBackend("a"));
  EXPECT_EQ(ring.num_backends(), 0u);
}

TEST(HashRingTest, SingleBackendOwnsEverything) {
  HashRing ring = MakeRing(Names(1));
  for (uint64_t id = 1; id <= kSessions; ++id) {
    EXPECT_EQ(*ring.OwnerOf(id), "backend-0");
  }
}

TEST(HashRingTest, DistributionIsNearUniformAcrossBackendCounts) {
  for (int n : {2, 4, 8}) {
    SCOPED_TRACE("backends=" + std::to_string(n));
    HashRing ring = MakeRing(Names(n));
    const std::map<std::string, uint64_t> shares = Shares(ring);
    ASSERT_EQ(shares.size(), static_cast<size_t>(n))
        << "some backend owns zero sessions";
    const double fair = static_cast<double>(kSessions) / n;
    for (const auto& [name, count] : shares) {
      // 64 vnodes keep every share well within a factor of two of fair.
      EXPECT_GT(count, fair * 0.5) << name;
      EXPECT_LT(count, fair * 2.0) << name;
    }
  }
}

TEST(HashRingTest, PlacementIsAPureFunctionOfTheNameSet) {
  std::vector<std::string> names = Names(5);
  HashRing forward = MakeRing(names);
  // Same set, reverse insertion order, separate instance.
  HashRing reverse;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    reverse.AddBackend(*it);
  }
  for (uint64_t id = 1; id <= kSessions; ++id) {
    EXPECT_EQ(*forward.OwnerOf(id), *reverse.OwnerOf(id)) << "session " << id;
  }
}

TEST(HashRingTest, PlacementIsStableAcrossProcessRestarts) {
  // Golden owners: a restarted router (or one on another machine) must
  // compute the identical mapping, so these values may never change. If a
  // hash-function change is ever intended, it is a breaking cluster
  // protocol change and this test is the tripwire.
  HashRing ring = MakeRing(Names(4));
  const std::map<uint64_t, std::string> golden = {
      {1, *ring.OwnerOf(1)},     {2, *ring.OwnerOf(2)},
      {500, *ring.OwnerOf(500)}, {1000, *ring.OwnerOf(1000)}};
  HashRing again = MakeRing(Names(4));
  for (const auto& [id, owner] : golden) {
    EXPECT_EQ(*again.OwnerOf(id), owner);
  }
  // And the point hash itself is fixed (splitmix64 of the id).
  EXPECT_EQ(RingPointOf(1), RingPointOf(1));
  EXPECT_NE(RingPointOf(1), RingPointOf(2));
}

TEST(HashRingTest, AddingABackendMovesOnlyABoundedFractionTowardIt) {
  for (int n : {2, 4, 8}) {
    SCOPED_TRACE("backends=" + std::to_string(n));
    HashRing before = MakeRing(Names(n));
    HashRing after = MakeRing(Names(n));
    const std::string joiner = "joiner";
    after.AddBackend(joiner);

    uint64_t moved = 0;
    for (uint64_t id = 1; id <= kSessions; ++id) {
      const std::string& old_owner = *before.OwnerOf(id);
      const std::string& new_owner = *after.OwnerOf(id);
      if (old_owner != new_owner) {
        ++moved;
        // Every moved key moves TO the joiner; survivors never reshuffle
        // among themselves.
        EXPECT_EQ(new_owner, joiner) << "session " << id;
      }
    }
    // Expected movement is ~1/(n+1); allow 2x slack, require nonzero.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, 2 * kSessions / static_cast<uint64_t>(n + 1));
  }
}

TEST(HashRingTest, RemovingABackendMovesOnlyItsOwnKeys) {
  for (int n : {2, 4, 8}) {
    SCOPED_TRACE("backends=" + std::to_string(n));
    HashRing before = MakeRing(Names(n));
    const std::string victim = "backend-0";
    HashRing after = MakeRing(Names(n));
    after.RemoveBackend(victim);

    for (uint64_t id = 1; id <= kSessions; ++id) {
      const std::string& old_owner = *before.OwnerOf(id);
      const std::string& new_owner = *after.OwnerOf(id);
      if (old_owner == victim) {
        EXPECT_NE(new_owner, victim);
      } else {
        // Keys of surviving backends do not move at all.
        EXPECT_EQ(new_owner, old_owner) << "session " << id;
      }
    }
  }
}

TEST(HashRingTest, RemoveUndoesAddExactly) {
  HashRing ring = MakeRing(Names(4));
  std::map<uint64_t, std::string> original;
  for (uint64_t id = 1; id <= kSessions; ++id) {
    original[id] = *ring.OwnerOf(id);
  }
  ring.AddBackend("transient");
  ring.RemoveBackend("transient");
  for (uint64_t id = 1; id <= kSessions; ++id) {
    EXPECT_EQ(*ring.OwnerOf(id), original[id]) << "session " << id;
  }
}

}  // namespace
}  // namespace tpgnn::cluster
