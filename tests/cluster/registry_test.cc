// BackendRegistry is a socket-free state machine over (connect, probe,
// drain) transitions with the clock as an explicit argument — so every
// health transition is pinned here with a fake clock and no I/O.

#include "cluster/registry.h"

#include <gtest/gtest.h>

namespace tpgnn::cluster {
namespace {

RegistryOptions FastOptions() {
  RegistryOptions options;
  options.probe_interval_seconds = 0.5;
  options.probe_timeout_seconds = 1.0;
  options.probe_failures_to_down = 2;
  options.reconnect_backoff_seconds = 0.25;
  options.reconnect_backoff_max_seconds = 2.0;
  return options;
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : registry_(FastOptions()) {
    registry_.Add({"b0", "127.0.0.1", 1234});
    entry_ = registry_.Find("b0");
  }

  BackendRegistry registry_;
  BackendRegistry::Entry* entry_ = nullptr;
};

TEST_F(RegistryTest, StartsDownAndDialsImmediately) {
  ASSERT_NE(entry_, nullptr);
  EXPECT_EQ(entry_->health, BackendHealth::kDown);
  EXPECT_EQ(registry_.num_up(), 0u);
  EXPECT_TRUE(registry_.ShouldConnect(*entry_, 0.0));
}

TEST_F(RegistryTest, AddIsIdempotentByName) {
  registry_.Add({"b0", "10.0.0.9", 9999});  // Repeat: config ignored.
  EXPECT_EQ(registry_.size(), 1u);
  EXPECT_EQ(registry_.Find("b0")->config.port, 1234);
}

TEST_F(RegistryTest, ConnectLifecycleAndProbeCadence) {
  registry_.OnConnected(*entry_, 10.0);
  EXPECT_EQ(entry_->health, BackendHealth::kUp);
  EXPECT_EQ(registry_.num_up(), 1u);
  EXPECT_EQ(entry_->connects, 1u);
  // The connect itself proved liveness: no probe until a full interval.
  EXPECT_FALSE(registry_.ProbeDue(*entry_, 10.4));
  EXPECT_TRUE(registry_.ProbeDue(*entry_, 10.5));

  const uint64_t probe_id = registry_.OnProbeSent(*entry_, 10.5);
  EXPECT_GT(probe_id, 0u);
  // One probe at a time.
  EXPECT_FALSE(registry_.ProbeDue(*entry_, 11.0));

  // A stale id does not count as an answer.
  EXPECT_FALSE(registry_.OnPong(*entry_, probe_id + 1, 10.6));
  EXPECT_TRUE(registry_.OnPong(*entry_, probe_id, 10.6));
  // Liveness re-proven at 10.6; next probe a full interval later.
  EXPECT_FALSE(registry_.ProbeDue(*entry_, 11.0));
  EXPECT_TRUE(registry_.ProbeDue(*entry_, 11.1));
}

TEST_F(RegistryTest, ConsecutiveProbeMissesCrossTheThreshold) {
  registry_.OnConnected(*entry_, 0.0);
  bool crossed = true;

  // First miss: recorded, threshold (2) not yet crossed.
  registry_.OnProbeSent(*entry_, 0.5);
  EXPECT_FALSE(registry_.ProbeExpired(*entry_, 1.0, &crossed));  // Too early.
  EXPECT_TRUE(registry_.ProbeExpired(*entry_, 1.6, &crossed));
  EXPECT_FALSE(crossed);
  EXPECT_EQ(entry_->probes_missed, 1u);

  // Second consecutive miss: crossed. The caller then tears the
  // connection down, which is what actually marks the backend kDown.
  registry_.OnProbeSent(*entry_, 1.6);
  EXPECT_TRUE(registry_.ProbeExpired(*entry_, 2.7, &crossed));
  EXPECT_TRUE(crossed);
  EXPECT_EQ(entry_->health, BackendHealth::kUp);  // Until OnConnectionLost.
  registry_.OnConnectionLost(*entry_, 2.7);
  EXPECT_EQ(entry_->health, BackendHealth::kDown);
  EXPECT_EQ(entry_->disconnects, 1u);
}

TEST_F(RegistryTest, APongResetsTheMissStreak) {
  registry_.OnConnected(*entry_, 0.0);
  bool crossed = false;
  registry_.OnProbeSent(*entry_, 0.5);
  EXPECT_TRUE(registry_.ProbeExpired(*entry_, 1.6, &crossed));  // Miss 1.
  EXPECT_FALSE(crossed);

  const uint64_t ok_probe = registry_.OnProbeSent(*entry_, 1.6);
  EXPECT_TRUE(registry_.OnPong(*entry_, ok_probe, 1.7));  // Streak resets.

  registry_.OnProbeSent(*entry_, 2.2);
  EXPECT_TRUE(registry_.ProbeExpired(*entry_, 3.3, &crossed));
  EXPECT_FALSE(crossed) << "miss streak must restart after a pong";
}

TEST_F(RegistryTest, ReconnectBackoffDoublesAndCaps) {
  // Failed dials: 0.25, 0.5, 1.0, 2.0, then capped at 2.0.
  double now = 0.0;
  registry_.OnConnectFailed(*entry_, now);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 0.25);
  EXPECT_FALSE(registry_.ShouldConnect(*entry_, 0.2));
  EXPECT_TRUE(registry_.ShouldConnect(*entry_, 0.25));

  registry_.OnConnectFailed(*entry_, 1.0);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 1.5);
  registry_.OnConnectFailed(*entry_, 2.0);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 3.0);
  registry_.OnConnectFailed(*entry_, 4.0);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 6.0);
  registry_.OnConnectFailed(*entry_, 7.0);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 9.0);  // Capped at +2.0.

  // A successful connect resets the backoff entirely.
  registry_.OnConnected(*entry_, 9.0);
  registry_.OnConnectionLost(*entry_, 10.0);
  EXPECT_DOUBLE_EQ(entry_->next_connect_at, 10.25);
}

TEST_F(RegistryTest, DrainingBlocksDialingButKeepsHealth) {
  registry_.SetDraining(*entry_, true);
  EXPECT_FALSE(registry_.ShouldConnect(*entry_, 100.0));
  registry_.SetDraining(*entry_, false);
  EXPECT_TRUE(registry_.ShouldConnect(*entry_, 100.0));

  // Draining an UP backend keeps its connection health untouched.
  registry_.OnConnected(*entry_, 100.0);
  registry_.SetDraining(*entry_, true);
  EXPECT_EQ(entry_->health, BackendHealth::kUp);
  EXPECT_TRUE(registry_.ProbeDue(*entry_, 101.0));
}

TEST_F(RegistryTest, NamesAreSortedAndCountersAccumulate) {
  registry_.Add({"a9", "127.0.0.1", 1});
  registry_.Add({"z1", "127.0.0.1", 2});
  const std::vector<std::string> names = registry_.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a9");
  EXPECT_EQ(names[1], "b0");
  EXPECT_EQ(names[2], "z1");

  registry_.OnConnected(*entry_, 0.0);
  registry_.OnProbeSent(*entry_, 1.0);
  registry_.OnProbeSent(*entry_, 2.0);
  EXPECT_EQ(entry_->probes_sent, 2u);
}

}  // namespace
}  // namespace tpgnn::cluster
