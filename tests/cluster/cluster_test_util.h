#ifndef TPGNN_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_
#define TPGNN_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/ring.h"
#include "cluster/router.h"
#include "net/client.h"
#include "net/net_test_util.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "serve/serve_test_util.h"

// Shared helpers for the cluster tests: a harness running N real backend
// servers plus a Router (threaded, or hand-polled for tests that call the
// poll-thread-only admin API), a restartable backend pinned to a port (the
// "process restart" half of kill/restart chaos), and the prefix-table
// parity oracle from the loopback tests, extended with the typed-failure
// outcome a failover may legitimately produce.

namespace tpgnn::cluster {

// All backends share this seed, so every engine in the cluster serves the
// same model — the precondition for bit-identical scores across moves.
constexpr uint64_t kClusterSeed = 5;

// A fresh server process on a FIXED port: what a supervisor brings back
// after a backend dies. Start retries briefly (the dead listener's port
// may take a moment to free).
class RestartedBackend {
 public:
  explicit RestartedBackend(int port)
      : engine_(serve::TinyServeConfig(), kClusterSeed, {}) {
    net::ServerOptions options;
    options.port = port;
    for (int attempt = 0; attempt < 50; ++attempt) {
      auto server = std::make_unique<net::Server>(&engine_, options);
      if (server->Start().ok()) {
        server_ = std::move(server);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (server_ == nullptr) {
      std::fprintf(stderr, "restart on port %d failed\n", port);
      std::abort();
    }
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~RestartedBackend() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  serve::InferenceEngine& engine() { return engine_; }
  net::Server& server() { return *server_; }

 private:
  serve::InferenceEngine engine_;
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

// N backend servers (each a net::ServerHarness with its own engine) plus a
// Router in front. `threaded` runs the router's poll loop on a background
// thread, like production; `threaded = false` leaves polling to the test
// (PumpUntil), which is how the poll-thread-only admin calls
// (DrainBackend / UndrainBackend) are driven safely.
class RouterHarness {
 public:
  explicit RouterHarness(size_t num_backends, RouterOptions options = {},
                         bool threaded = true) {
    std::vector<BackendConfig> configs;
    for (size_t i = 0; i < num_backends; ++i) {
      backends_.push_back(std::make_unique<net::ServerHarness>(
          serve::EngineOptions{}, net::ServerOptions{}, kClusterSeed));
      configs.push_back(
          {BackendName(i), "127.0.0.1", backends_[i]->port()});
    }
    router_ = std::make_unique<Router>(configs, options);
    Status status = router_->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "router start failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    if (threaded) {
      thread_ = std::thread([this] { router_->Run(); });
      WaitForConnectedBackends(num_backends);
    }
  }

  ~RouterHarness() { Stop(); }

  static std::string BackendName(size_t i) {
    return "b" + std::to_string(i);
  }

  // Stops a threaded router; for a hand-polled one, pumps the shutdown to
  // completion on the calling thread.
  void Stop() {
    router_->RequestShutdown();
    if (thread_.joinable()) {
      thread_.join();
    } else {
      while (router_->PollOnce(5)) {
      }
    }
  }

  // Spins (threaded router) until the connected-backend count reaches `n`.
  void WaitForConnectedBackends(size_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router_->connected_backends() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "backends never connected\n");
        std::abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Hand-polls the router until `pred` holds. Aborts the test on timeout.
  void PumpUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "PumpUntil timed out";
      router_->PollOnce(5);
    }
  }

  // Simulates a backend crash: hard-stops its server (no GOODBYE, no
  // drain), exactly like a SIGKILLed process.
  void KillBackend(size_t i) { backends_[i]->server().Abort(); }

  net::ClientOptions client_options() const {
    net::ClientOptions options;
    options.port = router_->port();
    return options;
  }

  Router& router() { return *router_; }
  net::ServerHarness& backend(size_t i) { return *backends_[i]; }
  size_t num_backends() const { return backends_.size(); }

 private:
  std::vector<std::unique_ptr<net::ServerHarness>> backends_;
  std::unique_ptr<Router> router_;
  std::thread thread_;
};

// A standalone ring with the harness's backend names: placement is a pure
// function of the name set, so tests use this to predict which backend the
// router will route a session to.
inline HashRing HarnessRing(size_t num_backends, int vnodes = 64) {
  HashRing ring(vnodes);
  for (size_t i = 0; i < num_backends; ++i) {
    ring.AddBackend(RouterHarness::BackendName(i));
  }
  return ring;
}

// --- Prefix-table parity oracle (see tests/net/loopback_parity_test.cc) --

struct PrefixScore {
  float logit = 0.0f;
  float probability = 0.0f;
};

// (session_id, edges ingested at scoring time) -> in-process score.
using PrefixTable = std::map<std::pair<uint64_t, int64_t>, PrefixScore>;

// In-process ground truth: the bitwise score of every session after every
// arrival prefix, from a single-process engine that never sharded,
// failed over, or migrated anything.
inline void BuildPrefixTable(const std::vector<serve::Event>& events,
                             PrefixTable* table) {
  serve::InferenceEngine engine(serve::TinyServeConfig(), kClusterSeed, {});
  std::map<uint64_t, int64_t> edges_seen;
  std::vector<serve::ScoreResult> results;

  auto score_now = [&](uint64_t session_id) {
    results.clear();
    ASSERT_TRUE(engine.Ingest(net::ScoreEvent(session_id)).ok());
    engine.Flush(&results);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
    (*table)[{session_id, edges_seen[session_id]}] = {
        results[0].logit, results[0].probability};
  };

  for (const serve::Event& event : events) {
    switch (event.kind) {
      case serve::Event::Kind::kBegin:
        ASSERT_TRUE(engine.Ingest(event).ok());
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kEdge:
        ASSERT_TRUE(engine.Ingest(event).ok());
        ++edges_seen[event.session_id];
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kScore:
      case serve::Event::Kind::kEnd:
        break;
    }
  }
}

// Every successful result must be bitwise equal to the single-process
// reference at its (session, prefix); a failover may instead resolve a
// score with a typed kDataLoss, which still counts toward exactly-once.
// Returns the number of typed failures.
inline size_t ExpectPrefixParityOrTypedFailure(
    const PrefixTable& table,
    const std::vector<serve::ScoreResult>& results) {
  size_t failed = 0;
  for (const serve::ScoreResult& result : results) {
    if (!result.status.ok()) {
      EXPECT_EQ(result.status.code(), StatusCode::kDataLoss)
          << result.status.ToString();
      ++failed;
      continue;
    }
    const auto it = table.find({result.session_id, result.edges_scored});
    if (it == table.end()) {
      ADD_FAILURE() << "session " << result.session_id
                    << " scored at unknown prefix " << result.edges_scored;
      continue;
    }
    EXPECT_EQ(it->second.logit, result.logit)  // Bitwise: floats travel raw.
        << "session " << result.session_id << " prefix "
        << result.edges_scored;
    EXPECT_EQ(it->second.probability, result.probability);
  }
  return failed;
}

}  // namespace tpgnn::cluster

#endif  // TPGNN_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_
