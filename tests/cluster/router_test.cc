// End-to-end tests of the router tier (DESIGN.md §4.7) against real
// backend servers: protocol transparency (a client cannot tell a router
// from a single serve_server), bitwise score parity with a single-process
// engine across sharding, failover, restart, and live migration, and the
// cluster counters/failpoints that make those paths observable and
// testable. The parity oracle is the prefix table from the loopback tests:
// a score is a pure function of its session's arrival prefix, so every
// networked result — no matter which backend produced it, or how many
// times the session moved — must match the in-process score at its
// (session, edges_scored).

#include "cluster/router.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster_test_util.h"
#include "data/datasets.h"
#include "net/client.h"
#include "serve/replay.h"
#include "util/failpoint.h"

namespace tpgnn::cluster {
namespace {

serve::EventReplayer MakeReplayer(const graph::GraphDataset& dataset) {
  serve::ReplayOptions options;
  options.session_start_interval = 0.25;
  options.score_every_edges = 4;
  return serve::EventReplayer(dataset, options);
}

// One resident session per graph (id = index + 1): Begin + all edges, no
// End — sessions stay alive so tests can re-score them after migrations.
std::vector<serve::Event> SessionStream(const graph::GraphDataset& dataset) {
  std::vector<serve::Event> events;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const uint64_t id = i + 1;
    events.push_back(net::BeginEvent(id, dataset[i].graph));
    for (const graph::TemporalEdge& e : dataset[i].graph.edges()) {
      events.push_back(net::EdgeEvent(id, e.src, e.dst, e.time));
    }
  }
  return events;
}

// Synchronously re-scores every session of `dataset` and checks each
// result bitwise against the reference at its full prefix. The proof that
// a migration/failover preserved state exactly: a moved session must score
// the same bits as one that never moved.
void ExpectFullPrefixScores(net::Client& client,
                            const graph::GraphDataset& dataset,
                            const PrefixTable& table) {
  for (size_t i = 0; i < dataset.size(); ++i) {
    const uint64_t id = i + 1;
    const int64_t edges = dataset[i].graph.num_edges();
    serve::ScoreResult result;
    ASSERT_TRUE(client.Score(id, -1, &result).ok()) << "session " << id;
    ASSERT_EQ(result.edges_scored, edges) << "session " << id;
    const auto it = table.find({id, edges});
    ASSERT_NE(it, table.end());
    EXPECT_EQ(it->second.logit, result.logit) << "session " << id;
    EXPECT_EQ(it->second.probability, result.probability) << "session " << id;
  }
}

// Sessions of `dataset` owned by backend `name` under the harness ring.
std::vector<uint64_t> SessionsOwnedBy(const graph::GraphDataset& dataset,
                                      size_t num_backends,
                                      const std::string& name) {
  HashRing ring = HarnessRing(num_backends);
  std::vector<uint64_t> owned;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (*ring.OwnerOf(i + 1) == name) {
      owned.push_back(i + 1);
    }
  }
  return owned;
}

// The harness backend owning the most sessions of `dataset` — the most
// interesting one to kill or drain.
size_t BusiestBackend(const graph::GraphDataset& dataset,
                      size_t num_backends) {
  size_t busiest = 0;
  size_t most = 0;
  for (size_t b = 0; b < num_backends; ++b) {
    const size_t owned =
        SessionsOwnedBy(dataset, num_backends, RouterHarness::BackendName(b))
            .size();
    if (owned > most) {
      most = owned;
      busiest = b;
    }
  }
  return busiest;
}

TEST(RouterTest, SpeaksTheSingleServerProtocolThroughOneBackend) {
  RouterHarness harness(1);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());

  std::string json;
  ASSERT_TRUE(client.GetMetricsJson(&json).ok());
  // The payload is the single-server metrics shape plus a "cluster" block.
  EXPECT_NE(json.find("\"cluster\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"backends_up\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"backends_merged\": 1"), std::string::npos) << json;
  serve::MetricsSnapshot snap;
  EXPECT_TRUE(serve::ParseMetricsJson(json, &snap).ok());
}

TEST(RouterTest, ProxiesPipelinedStreamBitExactlyAcrossTwoBackends) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/8, /*seed=*/13);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  RouterHarness harness(2);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(replayer.events()).ok());
  ASSERT_TRUE(client.DrainResults().ok());

  std::vector<serve::ScoreResult> results = client.TakeResults();
  ASSERT_EQ(results.size(), replayer.num_score_requests());
  EXPECT_EQ(ExpectPrefixParityOrTypedFailure(table, results), 0u)
      << "no failover happened, so no typed failures are admissible";

  // The ring actually sharded the load: every backend that owns sessions
  // under the harness ring saw Begins.
  for (size_t b = 0; b < harness.num_backends(); ++b) {
    const size_t owned =
        SessionsOwnedBy(dataset, 2, RouterHarness::BackendName(b)).size();
    EXPECT_EQ(
        harness.backend(b).engine().metrics().sessions_begun.load(),
        owned);
  }
}

TEST(RouterTest, MultiOwnerBatchKeepsPrefixAckSemantics) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  const graph::TemporalGraph& g = dataset[0].graph;
  ASSERT_GE(g.num_edges(), 2);

  // Two sessions on different backends, so the batch splits into runs
  // that must forward sequentially; a third, never-begun session makes
  // the final run fail on the backend.
  HashRing ring = HarnessRing(2);
  uint64_t a = 0, b = 0, c = 0;
  for (uint64_t id = 1; a == 0 || b == 0; ++id) {
    (*ring.OwnerOf(id) == RouterHarness::BackendName(0) ? a : b) = id;
  }
  c = a + b + 1;  // Distinct from both; never Begun anywhere.

  const auto& e0 = g.edges()[0];
  const auto& e1 = g.edges()[1];
  std::vector<serve::Event> batch = {
      net::BeginEvent(a, g), net::EdgeEvent(a, e0.src, e0.dst, e0.time),
      net::BeginEvent(b, g), net::EdgeEvent(b, e1.src, e1.dst, e1.time),
      net::EdgeEvent(c, e0.src, e0.dst, e0.time)};  // Unknown session.

  RouterHarness harness(2);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  uint64_t applied = 0;
  Status status = client.IngestBatch(batch, &applied);
  // The ack counts a prefix of the ORIGINAL frame even though the router
  // forwarded it as three runs to two backends.
  EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();
  EXPECT_EQ(applied, 4u);

  // The applied prefix really landed: both sessions score, bit-equal to
  // an in-process engine fed the same four events.
  PrefixTable table;
  BuildPrefixTable({net::BeginEvent(a, g),
                    net::EdgeEvent(a, e0.src, e0.dst, e0.time),
                    net::BeginEvent(b, g),
                    net::EdgeEvent(b, e1.src, e1.dst, e1.time)},
                   &table);
  for (uint64_t id : {a, b}) {
    serve::ScoreResult result;
    ASSERT_TRUE(client.Score(id, -1, &result).ok());
    ASSERT_EQ(result.edges_scored, 1);
    const auto it = table.find({id, 1});
    ASSERT_NE(it, table.end());
    EXPECT_EQ(it->second.logit, result.logit);
  }
}

TEST(RouterTest, KillingABackendMidStreamKeepsExactlyOnceAndParity) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/10, /*seed=*/11);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  RouterHarness harness(2);
  const size_t victim = BusiestBackend(dataset, 2);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  // Ship ~60% of the stream, SIGKILL the busiest backend, ship the rest.
  const std::vector<serve::Event>& events = replayer.events();
  const size_t cut = events.size() * 6 / 10;
  ASSERT_TRUE(client
                  .IngestAll({events.begin(),
                              events.begin() + static_cast<ptrdiff_t>(cut)})
                  .ok());
  harness.KillBackend(victim);
  ASSERT_TRUE(client
                  .IngestAll({events.begin() + static_cast<ptrdiff_t>(cut),
                              events.end()})
                  .ok());
  ASSERT_TRUE(client.DrainResults().ok());

  // Exactly-once: every score request resolves exactly once — as a result
  // or a typed kDataLoss — never dropped, never duplicated.
  std::vector<serve::ScoreResult> results = client.TakeResults();
  EXPECT_EQ(results.size(), replayer.num_score_requests());
  const size_t failed = ExpectPrefixParityOrTypedFailure(table, results);
  client.Close();
  harness.Stop();

  const ClusterCounters& counters = harness.router().counters();
  EXPECT_GE(counters.backend_failovers, 1u);
  EXPECT_GE(counters.sessions_replayed + counters.scores_failed_over +
                counters.scores_reissued,
            1u)
      << "the kill left no trace in the failover counters";
  EXPECT_LE(failed, results.size());  // Parity already checked per result.
}

TEST(RouterTest, KilledBackendRestartsRejoinsAndServesBitExactly) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/11);
  std::vector<serve::Event> events = SessionStream(dataset);
  PrefixTable table;
  BuildPrefixTable(events, &table);

  RouterHarness harness(2);
  const size_t victim = BusiestBackend(dataset, 2);
  const int victim_port = harness.backend(victim).port();
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(events).ok());
  ExpectFullPrefixScores(client, dataset, table);

  // Crash: the victim's sessions journal-replay onto the survivor and
  // keep scoring the same bits.
  harness.KillBackend(victim);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (harness.router().connected_backends() != 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ExpectFullPrefixScores(client, dataset, table);

  // Restart on the SAME port, as a supervisor would: the router's dial
  // loop rejoins it, the ring rebalances, and sessions snapshot-migrate
  // back — still bit-exact.
  RestartedBackend replacement(victim_port);
  harness.WaitForConnectedBackends(2);
  ExpectFullPrefixScores(client, dataset, table);
  EXPECT_GT(replacement.engine().metrics().sessions_imported.load(), 0u);

  client.Close();
  harness.Stop();
  EXPECT_GE(harness.router().counters().backend_failovers, 1u);
  EXPECT_GE(harness.router().counters().sessions_replayed, 1u);
  EXPECT_GE(harness.router().counters().sessions_migrated, 1u);
}

TEST(RouterTest, DrainAndUndrainMigrateSessionsBitExactly) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/8, /*seed=*/13);
  std::vector<serve::Event> events = SessionStream(dataset);
  PrefixTable table;
  BuildPrefixTable(events, &table);

  // Hand-polled: DrainBackend/UndrainBackend are poll-thread-only, so the
  // test thread IS the poll thread and client work rides a side thread.
  RouterHarness harness(2, {}, /*threaded=*/false);
  harness.PumpUntil(
      [&] { return harness.router().connected_backends() == 2; });

  net::Client client(harness.client_options());
  std::atomic<bool> done{false};
  auto on_worker = [&](const std::function<void()>& work) {
    done = false;
    std::thread worker([&] {
      work();
      done = true;
    });
    harness.PumpUntil([&] { return done.load(); });
    worker.join();
  };

  on_worker([&] {
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.IngestAll(events).ok());
    ExpectFullPrefixScores(client, dataset, table);
  });

  const size_t victim = BusiestBackend(dataset, 2);
  const std::string victim_name = RouterHarness::BackendName(victim);
  const size_t owned = SessionsOwnedBy(dataset, 2, victim_name).size();
  ASSERT_GT(owned, 0u);

  // Drain: every session the victim owns moves away as a fold-state
  // snapshot (SESSION_EXPORT/SESSION_IMPORT), not a replay.
  ASSERT_TRUE(harness.router().DrainBackend(victim_name).ok());
  EXPECT_EQ(harness.router().counters().sessions_migrated, owned);
  EXPECT_EQ(harness.router().counters().migration_failures, 0u);
  EXPECT_EQ(harness.router().counters().sessions_replayed, 0u);
  EXPECT_EQ(
      harness.backend(victim).engine().metrics().sessions_exported.load(),
      owned);
  EXPECT_EQ(
      harness.backend(1 - victim).engine().metrics().sessions_imported.load(),
      owned);

  // Migrated sessions score the same bits as if they had never moved.
  on_worker([&] { ExpectFullPrefixScores(client, dataset, table); });

  // Undrain: the ring re-adds the backend and the sessions snapshot back.
  ASSERT_TRUE(harness.router().UndrainBackend(victim_name).ok());
  EXPECT_EQ(harness.router().counters().sessions_migrated, 2 * owned);
  EXPECT_EQ(harness.router().counters().migration_failures, 0u);
  on_worker([&] { ExpectFullPrefixScores(client, dataset, table); });

  on_worker([&] { client.Close(); });
  harness.Stop();
}

TEST(RouterTest, ShedsWithOverloadedWhenNoBackendIsUp) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  // A port with nothing behind it: start a real server, note its port,
  // stop it.
  int dead_port = 0;
  {
    net::ServerHarness ghost;
    dead_port = ghost.port();
  }

  RouterOptions options;
  options.registry.reconnect_backoff_seconds = 0.05;
  options.registry.reconnect_backoff_max_seconds = 0.1;
  Router router({{"ghost", "127.0.0.1", dead_port}}, options);
  ASSERT_TRUE(router.Start().ok());

  std::atomic<bool> done{false};
  Status ingest_status;
  uint64_t applied = 99;
  std::thread worker([&] {
    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client client(client_options);
    if (client.Connect().ok()) {
      ingest_status =
          client.IngestBatch({net::BeginEvent(1, dataset[0].graph)}, &applied);
    }
    client.Close();
    done = true;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done.load()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    router.PollOnce(5);
  }
  worker.join();

  // The standard retryable reply, exactly like an overloaded single
  // server: nothing applied, typed kOverloaded.
  EXPECT_EQ(ingest_status.code(), StatusCode::kOverloaded)
      << ingest_status.ToString();
  EXPECT_EQ(applied, 0u);

  router.RequestShutdown();
  while (router.PollOnce(5)) {
  }
  EXPECT_GE(router.counters().overloads_shed, 1u);
  EXPECT_EQ(router.counters().backend_connects, 0u);
}

TEST(RouterTest, MetricsMergeAcrossBackends) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/13);
  std::vector<serve::Event> events = SessionStream(dataset);
  PrefixTable table;
  BuildPrefixTable(events, &table);

  RouterHarness harness(2);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(events).ok());
  ExpectFullPrefixScores(client, dataset, table);

  std::string json;
  ASSERT_TRUE(client.GetMetricsJson(&json).ok());
  EXPECT_NE(json.find("\"backends_merged\": 2"), std::string::npos) << json;

  // The merged payload parses with the standard parser, and the engine
  // counters are the SUM over backends: all 6 sessions and all 6 scores
  // are visible through one RPC no matter which backend served them.
  serve::MetricsSnapshot snap;
  ASSERT_TRUE(serve::ParseMetricsJson(json, &snap).ok());
  EXPECT_EQ(snap.sessions_begun, dataset.size());
  EXPECT_EQ(snap.scores_completed, dataset.size());
  EXPECT_EQ(snap.score_latency.count, dataset.size());
}

TEST(RouterTest, ConnectFailpointFlapsDialsUntilCleared) {
  RouterOptions options;
  options.registry.reconnect_backoff_seconds = 0.05;
  options.registry.reconnect_backoff_max_seconds = 0.1;
  RouterHarness harness(1, options, /*threaded=*/false);
  {
    failpoint::ScopedFailpoint fp("router.backend_connect", 1.0,
                                  failpoint::Kind::kReturnError);
    harness.PumpUntil([&] { return fp.fires() >= 3; });
    EXPECT_EQ(harness.router().connected_backends(), 0u);
    EXPECT_EQ(harness.router().counters().backend_connects, 0u);
  }
  // Failpoint gone: the next allowed dial succeeds.
  harness.PumpUntil(
      [&] { return harness.router().connected_backends() == 1; });
  EXPECT_GE(harness.router().counters().backend_connects, 1u);
  harness.Stop();
}

TEST(RouterTest, ProbeFailpointForcesFailoverThenRecovery) {
  RouterOptions options;
  options.registry.probe_interval_seconds = 0.05;
  options.registry.probe_timeout_seconds = 0.1;
  options.registry.probe_failures_to_down = 2;
  options.registry.reconnect_backoff_seconds = 0.05;
  options.registry.reconnect_backoff_max_seconds = 0.1;
  RouterHarness harness(1, options, /*threaded=*/false);
  harness.PumpUntil(
      [&] { return harness.router().connected_backends() == 1; });

  {
    // Every outstanding probe is treated as missed; the second
    // consecutive miss crosses probe_failures_to_down and the backend —
    // although perfectly healthy — is failed over.
    failpoint::ScopedFailpoint fp("router.probe", 1.0,
                                  failpoint::Kind::kReturnError);
    harness.PumpUntil(
        [&] { return harness.router().counters().backend_failovers >= 1; });
    EXPECT_GE(harness.router().counters().probes_missed, 2u);
  }
  // Cleared: the dial loop brings the backend back and probes stay clean.
  harness.PumpUntil(
      [&] { return harness.router().connected_backends() == 1; });
  harness.Stop();
  EXPECT_GE(harness.router().counters().probes_sent, 2u);
  EXPECT_GE(harness.router().counters().backend_connects, 2u);
}

TEST(RouterTest, MigrateFailpointFailsOneMoveButKeepsServing) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/8, /*seed=*/13);
  std::vector<serve::Event> events = SessionStream(dataset);
  PrefixTable table;
  BuildPrefixTable(events, &table);

  RouterHarness harness(2, {}, /*threaded=*/false);
  harness.PumpUntil(
      [&] { return harness.router().connected_backends() == 2; });

  net::Client client(harness.client_options());
  std::atomic<bool> done{false};
  auto on_worker = [&](const std::function<void()>& work) {
    done = false;
    std::thread worker([&] {
      work();
      done = true;
    });
    harness.PumpUntil([&] { return done.load(); });
    worker.join();
  };
  on_worker([&] {
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.IngestAll(events).ok());
  });

  const size_t victim = BusiestBackend(dataset, 2);
  const std::string victim_name = RouterHarness::BackendName(victim);
  const size_t owned = SessionsOwnedBy(dataset, 2, victim_name).size();
  ASSERT_GT(owned, 1u) << "need at least two sessions on the victim";

  // Exactly one injected migration failure: that session's move aborts
  // before its export (nothing torn down), every other session migrates.
  failpoint::ScopedFailpoint fp("router.migrate", 1.0,
                                failpoint::Kind::kReturnError, /*arg=*/0,
                                /*max_fires=*/1);
  ASSERT_TRUE(harness.router().DrainBackend(victim_name).ok());
  EXPECT_EQ(fp.fires(), 1u);
  EXPECT_EQ(harness.router().counters().migration_failures, 1u);
  EXPECT_EQ(harness.router().counters().sessions_migrated, owned - 1);

  // The failed session stayed on the (draining but connected) victim and
  // still serves; the moved ones serve from the other side — all of them
  // bit-exact.
  on_worker([&] {
    ExpectFullPrefixScores(client, dataset, table);
    client.Close();
  });
  harness.Stop();
}

}  // namespace
}  // namespace tpgnn::cluster
