// Rolling a checkpoint across the cluster through the router's MODEL_LOAD /
// MODEL_ACTIVATE fan-out (DESIGN.md §4.8): the roll visits backends one at
// a time in name order, the first failing backend stops the roll (no
// half-applied fleet beyond the failure point), and MODEL_STATUS aggregates
// every live backend's registry snapshot under {"backends": {...}}. The
// end state is proven the strong way: a session scored through the router
// after the roll is bit-identical to the rolled checkpoint's offline
// forward.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster_test_util.h"
#include "core/model.h"
#include "data/datasets.h"
#include "net/client.h"
#include "nn/checkpoint.h"
#include "util/failpoint.h"

namespace tpgnn::cluster {
namespace {

constexpr uint64_t kCheckpointSeed = 7;  // != kClusterSeed: v2 scores differ.

std::string WriteCheckpoint(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "model_roll_" + tag + ".ckpt";
  const core::TpGnnConfig config = serve::TinyServeConfig();
  core::TpGnnModel model(config, kCheckpointSeed);
  Status s = nn::SaveParameters(model, path, core::ConfigMetadata(config));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return path;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ModelRollTest, RollingLoadAndActivateReachesEveryBackend) {
  RouterHarness harness(3);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  const std::string path = WriteCheckpoint("roll");
  ASSERT_TRUE(client.ModelLoad("v2", path).ok());

  // Every backend holds the new version, inactive; status aggregation
  // names each backend and still shows three v0 primaries.
  for (size_t i = 0; i < harness.num_backends(); ++i) {
    EXPECT_NE(harness.backend(i).engine().registry().Find("v2"), nullptr)
        << "backend " << i;
    EXPECT_EQ(harness.backend(i).engine().registry().Find("")->name(), "v0")
        << "backend " << i;
  }
  std::string json;
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_NE(json.find("\"backends\": {"), std::string::npos) << json;
  for (size_t i = 0; i < harness.num_backends(); ++i) {
    EXPECT_NE(json.find("\"" + RouterHarness::BackendName(i) + "\""),
              std::string::npos)
        << json;
  }
  EXPECT_EQ(CountOccurrences(json, "\"primary\": \"v0\""), 3u) << json;

  ASSERT_TRUE(
      client.ModelActivate("v2", net::ModelAdminMode::kActivateDrain).ok());
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_EQ(CountOccurrences(json, "\"primary\": \"v2\""), 3u) << json;

  // A fresh session scored through the router serves the rolled
  // checkpoint's parameters, whichever backend the ring picked.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(net::BeginEvent(1, g));
  for (const graph::TemporalEdge& e : g.edges()) {
    events.push_back(net::EdgeEvent(1, e.src, e.dst, e.time));
  }
  ASSERT_TRUE(client.IngestAll(events).ok());
  serve::ScoreResult result;
  ASSERT_TRUE(client.Score(1, -1, &result).ok());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  core::TpGnnModel reference(serve::TinyServeConfig(), kCheckpointSeed);
  EXPECT_EQ(result.logit, serve::OfflineLogit(reference, g));

  std::remove(path.c_str());
}

TEST(ModelRollTest, FirstFailingBackendStopsTheLoadRoll) {
  RouterHarness harness(3);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  // Backends roll in name order (b0, b1, b2). Pre-loading "v2" directly
  // into b1 makes the router's MODEL_LOAD a duplicate there: b0 applies,
  // b1 fails, and the roll must stop before ever reaching b2.
  const std::string path = WriteCheckpoint("partial");
  ASSERT_TRUE(
      harness.backend(1).engine().LoadModelVersion("v2", path).ok());

  Status st = client.ModelLoad("v2", path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  EXPECT_NE(st.message().find("backend b1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(harness.backend(0).engine().registry().Find("v2"), nullptr);
  EXPECT_EQ(harness.backend(2).engine().registry().Find("v2"), nullptr);

  std::remove(path.c_str());
}

TEST(ModelRollTest, InjectedActivateFaultStopsTheRollAtTheFirstBackend) {
  RouterHarness harness(3);
  net::Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  const std::string path = WriteCheckpoint("fault");
  ASSERT_TRUE(client.ModelLoad("v2", path).ok());

  {
    // All backends share this process's failpoints; with probability 1 the
    // very first activate faults, so exactly one firing proves the roll
    // stopped there instead of trying the rest of the fleet.
    failpoint::ScopedFailpoint fp("model.activate", 1.0,
                                  failpoint::Kind::kReturnError);
    Status st =
        client.ModelActivate("v2", net::ModelAdminMode::kActivateDrain);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
    EXPECT_NE(st.message().find("backend b0"), std::string::npos)
        << st.ToString();
    EXPECT_EQ(fp.fires(), 1u);
    for (size_t i = 0; i < harness.num_backends(); ++i) {
      EXPECT_EQ(harness.backend(i).engine().registry().Find("")->name(),
                "v0")
          << "backend " << i;
    }
  }

  // With the fault gone the same roll completes fleet-wide.
  ASSERT_TRUE(
      client.ModelActivate("v2", net::ModelAdminMode::kActivateDrain).ok());
  for (size_t i = 0; i < harness.num_backends(); ++i) {
    EXPECT_EQ(harness.backend(i).engine().registry().Find("")->name(), "v2")
        << "backend " << i;
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpgnn::cluster
