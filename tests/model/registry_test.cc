// The versioned model registry (DESIGN.md §4.8): lifecycle verbs, the
// deterministic A/B split, checkpoint load round-trips with architecture
// pre-flight, failpoint-injected faults that must never leave a
// half-registered version behind, and handle refcounts keeping retired
// versions alive for the sessions still pinned to them.

#include "model/registry.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/model.h"
#include "data/datasets.h"
#include "nn/checkpoint.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace tpgnn::model {
namespace {

core::TpGnnConfig TinyConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

float Logit(core::TpGnnModel& model, const graph::TemporalGraph& g) {
  tensor::NoGradGuard no_grad;
  Rng rng(0);
  return model.ForwardLogit(g, /*training=*/false, rng).item();
}

// Temp checkpoint path unique per test to keep parallel ctest runs apart.
std::string TempCheckpointPath(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "registry_" + info->name() + "_" + tag +
         ".ckpt";
}

TEST(ModelRegistryTest, InitialVersionIsPrimary) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_NE(registry.primary(), nullptr);
  EXPECT_EQ(registry.primary()->name(), "v0");
  EXPECT_EQ(registry.candidate(), nullptr);
  EXPECT_EQ(registry.shadow(), nullptr);
  // The empty name resolves to the primary (v1 snapshots carry no tag).
  EXPECT_EQ(registry.Find(""), registry.primary());
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.ResolveForSession(42), registry.primary());
}

TEST(ModelRegistryTest, RegisterRejectsDuplicatesAndEmptyNames) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  EXPECT_TRUE(registry.Register("v1", 7).ok());
  EXPECT_EQ(registry.Register("v1", 8).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("v0", 8).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("", 8).code(), StatusCode::kInvalidArgument);
  // Sequence numbers are strictly monotone across versions.
  EXPECT_GT(registry.Find("v1")->seq(), registry.Find("v0")->seq());
}

TEST(ModelRegistryTest, DrainActivationKeepsEpochRebaseBumpsIt) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  ASSERT_TRUE(registry.Register("v2", 9).ok());

  const uint64_t epoch0 = registry.assignment_epoch();
  ASSERT_TRUE(registry.Activate("v1", SwapPolicy::kDrain).ok());
  EXPECT_EQ(registry.primary()->name(), "v1");
  // Drain: live sessions keep their pinned version, so no epoch bump —
  // nothing about existing assignments changed.
  EXPECT_EQ(registry.assignment_epoch(), epoch0);

  ASSERT_TRUE(registry.Activate("v2", SwapPolicy::kImmediateRebase).ok());
  EXPECT_EQ(registry.primary()->name(), "v2");
  EXPECT_GT(registry.assignment_epoch(), epoch0);

  EXPECT_EQ(registry.Activate("nope", SwapPolicy::kDrain).code(),
            StatusCode::kNotFound);
}

TEST(ModelRegistryTest, AbSplitIsDeterministicAndEpochStamped) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());

  const uint64_t epoch0 = registry.assignment_epoch();
  ASSERT_TRUE(registry.SetCandidate("v1", 0.5).ok());
  EXPECT_GT(registry.assignment_epoch(), epoch0);
  EXPECT_DOUBLE_EQ(registry.ab_fraction(), 0.5);

  size_t candidate_hits = 0;
  for (uint64_t id = 0; id < 512; ++id) {
    uint64_t epoch = 0;
    ModelVersionPtr v = registry.ResolveForSession(id, &epoch);
    const bool expect_candidate =
        AbPicksCandidate(id, registry.ab_salt(), 0.5);
    EXPECT_EQ(v->name(), expect_candidate ? "v1" : "v0") << "session " << id;
    EXPECT_EQ(epoch, registry.assignment_epoch());
    if (expect_candidate) ++candidate_hits;
    // Pure function of (id, salt, fraction): resolving again agrees.
    EXPECT_EQ(registry.ResolveForSession(id), v);
  }
  // The split actually splits (splitmix64 is uniform; 512 draws at 0.5
  // land far from either edge).
  EXPECT_GT(candidate_hits, 512 / 4);
  EXPECT_LT(candidate_hits, 512 * 3 / 4);

  // Fraction edges: 0 routes nobody, 1 routes everybody.
  ASSERT_TRUE(registry.SetCandidate("v1", 0.0).ok());
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(registry.ResolveForSession(id)->name(), "v0");
  }
  ASSERT_TRUE(registry.SetCandidate("v1", 1.0).ok());
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(registry.ResolveForSession(id)->name(), "v1");
  }

  const uint64_t epoch1 = registry.assignment_epoch();
  ASSERT_TRUE(registry.ClearCandidate().ok());
  EXPECT_GT(registry.assignment_epoch(), epoch1);
  EXPECT_EQ(registry.candidate(), nullptr);
  EXPECT_EQ(registry.ResolveForSession(7)->name(), "v0");
}

TEST(ModelRegistryTest, ActivatingTheCandidateClearsTheRole) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  ASSERT_TRUE(registry.SetCandidate("v1", 0.25).ok());
  ASSERT_TRUE(registry.Activate("v1", SwapPolicy::kDrain).ok());
  EXPECT_EQ(registry.primary()->name(), "v1");
  EXPECT_EQ(registry.candidate(), nullptr);
  EXPECT_DOUBLE_EQ(registry.ab_fraction(), 0.0);
}

TEST(ModelRegistryTest, ShadowRoleSetAndClear) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  EXPECT_EQ(registry.SetShadow("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(registry.SetShadow("v1").ok());
  EXPECT_EQ(registry.shadow()->name(), "v1");
  ASSERT_TRUE(registry.ClearShadow().ok());
  EXPECT_EQ(registry.shadow(), nullptr);
}

TEST(ModelRegistryTest, RetireRefusesActiveRolesAndHandlesKeepVersionsAlive) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  EXPECT_EQ(registry.Retire("v0").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(registry.SetShadow("v1").ok());
  EXPECT_EQ(registry.Retire("v1").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(registry.ClearShadow().ok());

  // A session-style handle outlives the registry's reference.
  ModelVersionPtr pinned = registry.Find("v1");
  ASSERT_TRUE(registry.Retire("v1").ok());
  EXPECT_EQ(registry.Find("v1"), nullptr);
  EXPECT_EQ(pinned->name(), "v1");  // Still alive through the handle.
  EXPECT_EQ(registry.Retire("v1").code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, LoadRoundTripsCheckpointParameters) {
  const core::TpGnnConfig config = TinyConfig();
  const std::string path = TempCheckpointPath("v2");
  core::TpGnnModel source(config, /*seed=*/99);
  ASSERT_TRUE(
      nn::SaveParameters(source, path, core::ConfigMetadata(config)).ok());

  ModelRegistry registry(config, /*seed=*/3);
  ASSERT_TRUE(registry.Load("v2", path).ok());
  ASSERT_NE(registry.Find("v2"), nullptr);
  EXPECT_EQ(registry.Find("v2")->source_path(), path);
  // Loading does not activate.
  EXPECT_EQ(registry.primary()->name(), "v0");

  // The loaded version scores exactly as the checkpoint's source model.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/2, /*seed=*/33);
  core::TpGnnModel& loaded = const_cast<core::TpGnnModel&>(
      registry.Find("v2")->model());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(Logit(loaded, dataset[i].graph),
              Logit(source, dataset[i].graph))
        << "graph " << i;
  }

  EXPECT_EQ(registry.Load("v2", path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, LoadRejectsWrongArchitectureBeforeParameters) {
  core::TpGnnConfig other = TinyConfig();
  other.embed_dim = 16;  // Different architecture.
  const std::string path = TempCheckpointPath("wrong_arch");
  core::TpGnnModel source(other, /*seed=*/99);
  ASSERT_TRUE(
      nn::SaveParameters(source, path, core::ConfigMetadata(other)).ok());

  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  EXPECT_EQ(registry.Load("v2", path).code(),
            StatusCode::kFailedPrecondition);
  // The rejected load leaves no version behind; the name stays free.
  EXPECT_EQ(registry.Find("v2"), nullptr);
  std::remove(path.c_str());

  EXPECT_EQ(registry.Load("v2", path).code(), StatusCode::kNotFound)
      << "missing file surfaces the checkpoint I/O error";
}

TEST(ModelRegistryTest, InjectedLoadFaultLeavesRegistryUntouched) {
  const core::TpGnnConfig config = TinyConfig();
  const std::string path = TempCheckpointPath("faulted");
  core::TpGnnModel source(config, /*seed=*/99);
  ASSERT_TRUE(
      nn::SaveParameters(source, path, core::ConfigMetadata(config)).ok());

  ModelRegistry registry(config, /*seed=*/3);
  {
    failpoint::ScopedFailpoint fp("model.load", 1.0,
                                  failpoint::Kind::kReturnError);
    Status s = registry.Load("v2", path);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_EQ(fp.fires(), 1u);
  }
  EXPECT_EQ(registry.Find("v2"), nullptr);
  // With the failpoint gone the same load succeeds — no poisoned state.
  EXPECT_TRUE(registry.Load("v2", path).ok());
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, InjectedActivateFaultKeepsOldPrimary) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  const uint64_t epoch0 = registry.assignment_epoch();
  {
    failpoint::ScopedFailpoint fp("model.activate", 1.0,
                                  failpoint::Kind::kReturnError);
    Status s = registry.Activate("v1", SwapPolicy::kImmediateRebase);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(fp.fires(), 1u);
  }
  EXPECT_EQ(registry.primary()->name(), "v0");
  EXPECT_EQ(registry.assignment_epoch(), epoch0);
  EXPECT_TRUE(registry.Activate("v1", SwapPolicy::kImmediateRebase).ok());
  EXPECT_EQ(registry.primary()->name(), "v1");
}

TEST(ModelRegistryTest, StatusJsonNamesRolesAndVersions) {
  ModelRegistry registry(TinyConfig(), /*seed=*/3);
  ASSERT_TRUE(registry.Register("v1", 7).ok());
  ASSERT_TRUE(registry.Register("v2", 9).ok());
  ASSERT_TRUE(registry.SetCandidate("v1", 0.25).ok());
  ASSERT_TRUE(registry.SetShadow("v2").ok());

  const std::string json = registry.StatusJson();
  EXPECT_NE(json.find("\"primary\": \"v0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"candidate\": \"v1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shadow\": \"v2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ab_fraction\": 0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"versions\""), std::string::npos) << json;

  std::vector<ModelVersionInfo> versions = registry.Versions();
  ASSERT_EQ(versions.size(), 3u);
  for (const ModelVersionInfo& info : versions) {
    if (info.name == "v0") {
      EXPECT_TRUE(info.is_primary);
    }
    if (info.name == "v1") {
      EXPECT_TRUE(info.is_candidate);
    }
    if (info.name == "v2") {
      EXPECT_TRUE(info.is_shadow);
    }
  }
}

TEST(ModelRegistryTest, SplitMixAbPredicateMatchesDocumentedForm) {
  // The exposed predicate is the documented closed form — remote tooling
  // computes assignments without asking the server.
  const uint64_t salt = 0x7450474e4d4f444cULL;
  for (uint64_t id : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    EXPECT_FALSE(AbPicksCandidate(id, salt, 0.0));
    EXPECT_TRUE(AbPicksCandidate(id, salt, 1.0));
    const double threshold =
        static_cast<double>(SplitMix64(id ^ salt)) / 18446744073709551616.0;
    // Just above the hash's quantile picks the candidate, just below not.
    if (threshold > 0.001 && threshold < 0.999) {
      EXPECT_TRUE(AbPicksCandidate(id, salt, threshold + 0.001));
      EXPECT_FALSE(AbPicksCandidate(id, salt, threshold - 0.001));
    }
  }
}

}  // namespace
}  // namespace tpgnn::model
