// Property-style sweeps over the tensor library: algebraic identities that
// must hold for every shape/seed combination, checked with parameterized
// gtest.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

using ShapeSeed = std::tuple<int64_t, int64_t, uint64_t>;  // rows, cols, seed

class ElementwiseProperties : public ::testing::TestWithParam<ShapeSeed> {
 protected:
  Tensor Rand(Rng& rng, float lo = -2.0f, float hi = 2.0f) {
    auto [rows, cols, seed] = GetParam();
    return Tensor::Uniform({rows, cols}, lo, hi, rng);
  }
};

TEST_P(ElementwiseProperties, AddIsCommutative) {
  Rng rng(std::get<2>(GetParam()));
  Tensor a = Rand(rng);
  Tensor b = Rand(rng);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a), 0.0f, 0.0f));
}

TEST_P(ElementwiseProperties, AddIsAssociative) {
  Rng rng(std::get<2>(GetParam()) + 1);
  Tensor a = Rand(rng);
  Tensor b = Rand(rng);
  Tensor c = Rand(rng);
  EXPECT_TRUE(
      AllClose(Add(Add(a, b), c), Add(a, Add(b, c)), 1e-6f, 1e-6f));
}

TEST_P(ElementwiseProperties, MulDistributesOverAdd) {
  Rng rng(std::get<2>(GetParam()) + 2);
  Tensor a = Rand(rng);
  Tensor b = Rand(rng);
  Tensor c = Rand(rng);
  EXPECT_TRUE(AllClose(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)), 1e-5f,
                       1e-5f));
}

TEST_P(ElementwiseProperties, SubOfSelfIsZero) {
  Rng rng(std::get<2>(GetParam()) + 3);
  Tensor a = Rand(rng);
  Tensor z = Sub(a, a);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
}

TEST_P(ElementwiseProperties, NegIsScaleMinusOne) {
  Rng rng(std::get<2>(GetParam()) + 4);
  Tensor a = Rand(rng);
  EXPECT_TRUE(AllClose(Neg(a), Scale(a, -1.0f), 0.0f, 0.0f));
}

TEST_P(ElementwiseProperties, ExpLogRoundTrip) {
  Rng rng(std::get<2>(GetParam()) + 5);
  Tensor a = Rand(rng, 0.1f, 3.0f);
  EXPECT_TRUE(AllClose(Exp(Log(a)), a, 1e-5f, 1e-5f));
}

TEST_P(ElementwiseProperties, SinSquaredPlusCosSquared) {
  Rng rng(std::get<2>(GetParam()) + 6);
  Tensor a = Rand(rng, -6.0f, 6.0f);
  Tensor identity = Add(Mul(Sin(a), Sin(a)), Mul(Cos(a), Cos(a)));
  auto [rows, cols, seed] = GetParam();
  EXPECT_TRUE(AllClose(identity, Tensor::Ones({rows, cols}), 1e-5f, 1e-5f));
}

TEST_P(ElementwiseProperties, SigmoidSymmetry) {
  // sigmoid(-x) = 1 - sigmoid(x).
  Rng rng(std::get<2>(GetParam()) + 7);
  Tensor a = Rand(rng, -4.0f, 4.0f);
  Tensor lhs = Sigmoid(Neg(a));
  Tensor rhs = AddScalar(Neg(Sigmoid(a)), 1.0f);
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-6f, 1e-6f));
}

TEST_P(ElementwiseProperties, TransposeIsInvolution) {
  Rng rng(std::get<2>(GetParam()) + 8);
  Tensor a = Rand(rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a, 0.0f, 0.0f));
}

TEST_P(ElementwiseProperties, SumAxesAgreeWithTotal) {
  Rng rng(std::get<2>(GetParam()) + 9);
  Tensor a = Rand(rng);
  EXPECT_NEAR(Sum(SumAxis(a, 0)).item(), Sum(a).item(), 1e-3f);
  EXPECT_NEAR(Sum(SumAxis(a, 1)).item(), Sum(a).item(), 1e-3f);
}

TEST_P(ElementwiseProperties, SoftmaxRowsAreDistributions) {
  Rng rng(std::get<2>(GetParam()) + 10);
  Tensor a = Rand(rng, -5.0f, 5.0f);
  Tensor y = Softmax(a);
  auto [rows, cols, seed] = GetParam();
  for (int64_t r = 0; r < rows; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      const float v = y.at({r, c});
      EXPECT_GE(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, ElementwiseProperties,
    ::testing::Values(ShapeSeed{1, 1, 1}, ShapeSeed{1, 7, 2},
                      ShapeSeed{5, 1, 3}, ShapeSeed{3, 4, 4},
                      ShapeSeed{8, 8, 5}, ShapeSeed{2, 16, 6}),
    [](const ::testing::TestParamInfo<ShapeSeed>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

class MatMulProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulProperties, AssociativityOnRandomChains) {
  Rng rng(GetParam());
  const int64_t n = rng.UniformInt(1, 6);
  const int64_t k = rng.UniformInt(1, 6);
  const int64_t m = rng.UniformInt(1, 6);
  const int64_t p = rng.UniformInt(1, 6);
  Tensor a = Tensor::Uniform({n, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, m}, -1, 1, rng);
  Tensor c = Tensor::Uniform({m, p}, -1, 1, rng);
  EXPECT_TRUE(AllClose(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)),
                       1e-4f, 1e-4f));
}

TEST_P(MatMulProperties, TransposeOfProduct) {
  Rng rng(GetParam() + 100);
  const int64_t n = rng.UniformInt(1, 6);
  const int64_t k = rng.UniformInt(1, 6);
  const int64_t m = rng.UniformInt(1, 6);
  Tensor a = Tensor::Uniform({n, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, m}, -1, 1, rng);
  EXPECT_TRUE(AllClose(Transpose(MatMul(a, b)),
                       MatMul(Transpose(b), Transpose(a)), 1e-5f, 1e-5f));
}

TEST_P(MatMulProperties, IdentityIsNeutral) {
  Rng rng(GetParam() + 200);
  const int64_t n = rng.UniformInt(1, 8);
  const int64_t m = rng.UniformInt(1, 8);
  Tensor a = Tensor::Uniform({n, m}, -1, 1, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(m)), a, 1e-6f, 1e-6f));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Eye(n), a), a, 1e-6f, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperties,
                         ::testing::Range<uint64_t>(1, 9));

TEST(TensorDeathTest, MatMulShapeMismatch) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "MatMul");
}

TEST(TensorDeathTest, IncompatibleBroadcast) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(Add(a, b), "broadcast");
}

TEST(TensorDeathTest, BackwardOnNonScalar) {
  Tensor a = Tensor::Ones({2}, true);
  Tensor b = Add(a, a);
  EXPECT_DEATH(b.Backward(), "scalar");
}

TEST(TensorDeathTest, BackwardTwiceOnSameTape) {
  Tensor a = Tensor::Ones({2}, true);
  Tensor loss = Sum(Add(a, a));
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "twice");
}

TEST(TensorDeathTest, ItemOnMultiElement) {
  Tensor a = Tensor::Zeros({2});
  EXPECT_DEATH(a.item(), "single-element");
}

TEST(TensorDeathTest, ReshapeNumelMismatch) {
  Tensor a = Tensor::Zeros({2, 3});
  EXPECT_DEATH(Reshape(a, {4, 2}), "Reshape");
}

TEST(TensorDeathTest, OutOfRangeIndex) {
  Tensor a = Tensor::Zeros({2, 2});
  EXPECT_DEATH(a.at({2, 0}), "Check failed");
}

}  // namespace
}  // namespace tpgnn::tensor
