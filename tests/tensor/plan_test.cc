// Arena-planning contracts of the compiled per-edge programs
// (tensor/plan.h + tensor/executor.h):
//  * Liveness slot reuse never aliases two temps whose lifetimes overlap;
//    the GRU edge program's candidate temp provably recycles the retired
//    message slot.
//  * A poisoned arena (NaN pre-fill before every run) produces bit-identical
//    results to a warm arena — no op reads a slot it did not define first.
//  * A compiled plan is reused allocation-free: 10k executor runs grow the
//    arena exactly once and never touch the buffer pool.
//  * PlanCache re-plans exactly when the spec changes.

#include "tensor/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/executor.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace tpgnn::tensor::plan {
namespace {

constexpr int32_t kDim = 16;
constexpr int32_t kTimeDim = 5;

PlanSpec GruSpec() {
  PlanSpec spec;
  spec.updater = PlanSpec::Updater::kGru;
  spec.embed_dim = kDim;
  spec.time_dim = kTimeDim;
  return spec;
}

PlanSpec SumSpec(bool stabilize, bool invariant) {
  PlanSpec spec;
  spec.updater = PlanSpec::Updater::kSum;
  spec.embed_dim = kDim;
  spec.time_dim = kTimeDim;
  spec.stabilize = stabilize;
  spec.invariant = invariant;
  return spec;
}

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(-1.0f, 1.0f);
  return v;
}

// A full parameter table with GRU weights for input width kDim + kTimeDim
// and Time2Vec parameters for kTimeDim.
struct ParamStore {
  std::vector<float> w0, phi0, w, phi;
  std::vector<float> wz, uz, bz, wr, ur, br, wn, un, bn;
  std::vector<const float*> table;

  ParamStore() {
    const int64_t k = kDim + kTimeDim;
    w0 = RandomVec(1, 1);
    phi0 = RandomVec(1, 2);
    w = RandomVec(kTimeDim - 1, 3);
    phi = RandomVec(kTimeDim - 1, 4);
    wz = RandomVec(k * kDim, 5);
    uz = RandomVec(kDim * kDim, 6);
    bz = RandomVec(kDim, 7);
    wr = RandomVec(k * kDim, 8);
    ur = RandomVec(kDim * kDim, 9);
    br = RandomVec(kDim, 10);
    wn = RandomVec(k * kDim, 11);
    un = RandomVec(kDim * kDim, 12);
    bn = RandomVec(kDim, 13);
    table.assign(kNumParamSlots, nullptr);
    table[kParamW0] = w0.data();
    table[kParamPhi0] = phi0.data();
    table[kParamW] = w.data();
    table[kParamPhi] = phi.data();
    table[kParamWz] = wz.data();
    table[kParamUz] = uz.data();
    table[kParamBz] = bz.data();
    table[kParamWr] = wr.data();
    table[kParamUr] = ur.data();
    table[kParamBr] = br.data();
    table[kParamWn] = wn.data();
    table[kParamUn] = un.data();
    table[kParamBn] = bn.data();
  }
};

void ExpectNoLiveOverlap(const CompiledProgram& program, const char* what) {
  const auto& temps = program.temps();
  for (size_t i = 0; i < temps.size(); ++i) {
    for (size_t j = i + 1; j < temps.size(); ++j) {
      const TempInfo& a = temps[i];
      const TempInfo& b = temps[j];
      const bool lifetimes_overlap =
          a.first_op <= b.last_op && b.first_op <= a.last_op;
      if (!lifetimes_overlap) continue;
      const bool ranges_disjoint =
          a.offset + a.len <= b.offset || b.offset + b.len <= a.offset;
      EXPECT_TRUE(ranges_disjoint)
          << what << ": temps " << i << " and " << j
          << " are live together but share arena range [" << a.offset << ","
          << a.offset + a.len << ") vs [" << b.offset << ","
          << b.offset + b.len << ")";
    }
  }
  for (size_t i = 0; i < temps.size(); ++i) {
    EXPECT_GE(temps[i].offset, 0) << what;
    EXPECT_LE(temps[i].offset + temps[i].len, program.arena_size()) << what;
  }
}

TEST(PlanLivenessTest, NoProgramAliasesLiveTemps) {
  for (bool stabilize : {false, true}) {
    for (bool invariant : {false, true}) {
      const PlanSpec spec = SumSpec(stabilize, invariant);
      ExpectNoLiveOverlap(BuildEdgeProgram(spec), "sum edge");
      ExpectNoLiveOverlap(BuildTimeProgram(spec), "sum time");
      ExpectNoLiveOverlap(BuildFinalizeProgram(spec), "sum finalize");
    }
  }
  const PlanSpec gru = GruSpec();
  ExpectNoLiveOverlap(BuildEdgeProgram(gru), "gru edge");
  ExpectNoLiveOverlap(BuildFinalizeProgram(gru), "gru finalize");
}

TEST(PlanLivenessTest, GruCandidateRecyclesTheRetiredMessageSlot) {
  const CompiledProgram program = BuildEdgeProgram(GruSpec());
  // Temps in declaration order: msg, z, r, hu, xn, cand. The candidate is
  // declared after the message's last use, so the planner must hand it the
  // message's slot instead of growing the arena.
  ASSERT_EQ(program.temps().size(), 6u);
  const TempInfo& msg = program.temps()[0];
  const TempInfo& cand = program.temps()[5];
  EXPECT_GT(msg.last_op, 0);
  EXPECT_GT(cand.first_op, msg.last_op);
  EXPECT_EQ(cand.offset, msg.offset);
  // Arena holds msg + the four gate temps; the candidate adds nothing.
  EXPECT_EQ(program.arena_size(), (kDim + kTimeDim) + 4 * kDim);
}

TEST(PlanLivenessTest, FinalizeProgramsPlanNoArenaTemps) {
  // FinalizeState relies on this: it runs a throwaway executor per call and
  // stays allocation-free because the program writes rows directly.
  for (bool invariant : {false, true}) {
    EXPECT_EQ(BuildFinalizeProgram(SumSpec(true, invariant)).arena_size(), 0);
  }
  EXPECT_EQ(BuildFinalizeProgram(GruSpec()).arena_size(), 0);
}

// Runs the GRU edge program twice — once with a NaN-poisoned arena, once
// warm — and expects bit-identical state. Any op consuming an arena slot it
// did not define first would drag NaN into the output.
TEST(PlanExecutorTest, PoisonedArenaMatchesWarmArenaBitwise) {
  const ParamStore params;
  const CompiledProgram edge = BuildEdgeProgram(GruSpec());

  auto run = [&](bool poison) {
    std::vector<float> state = RandomVec(2 * kDim, 42);
    PlanExecutor exec;
    exec.set_poison(poison);
    RunContext ctx;
    ctx.src = state.data();              // Node 0 row.
    ctx.dst = state.data() + kDim;       // Node 1 row.
    ctx.t = 1.75f;
    for (int step = 0; step < 5; ++step) {
      exec.Run(edge, params.table.data(), ctx);
    }
    return state;
  };

  const std::vector<float> warm = run(false);
  const std::vector<float> poisoned = run(true);
  ASSERT_EQ(warm.size(), poisoned.size());
  for (size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i], poisoned[i]) << "element " << i;
    EXPECT_FALSE(std::isnan(warm[i])) << "element " << i;
  }
}

TEST(PlanExecutorTest, TenThousandRunsGrowTheArenaOnceAndSkipThePool) {
  const ParamStore params;
  const CompiledPlans plans = BuildPlans(SumSpec(true, true));
  std::vector<float> state = RandomVec(2 * kDim, 7);
  std::vector<float> m(static_cast<size_t>(2 * kTimeDim), 0.0f);

  PlanExecutor exec;
  const util::BufferPoolStats before = util::GetBufferPoolStats();
  RunContext ctx;
  for (int i = 0; i < 10000; ++i) {
    ctx.src = state.data();
    ctx.dst = state.data() + kDim;
    exec.Run(plans.edge, params.table.data(), ctx);
    ctx.m = m.data();
    ctx.t = static_cast<float>(i);
    exec.Run(plans.time, params.table.data(), ctx);
  }
  const util::BufferPoolStats after = util::GetBufferPoolStats();

  // The invariant time program is the only one with temps here; its first
  // run sizes the arena and every later run reuses it.
  EXPECT_EQ(exec.arena_grows(), 1u);
  EXPECT_GT(exec.arena_size(), 0u);
  EXPECT_EQ(after.acquires, before.acquires);
  EXPECT_EQ(after.node_acquires, before.node_acquires);
}

TEST(PlanCacheTest, RePlansExactlyOnSpecChange) {
  PlanCache& cache = PlanCache::Global();
  PlanSpec spec = SumSpec(true, false);
  spec.embed_dim = 24;  // Unique to this test; first Get must build.
  const uint64_t builds0 = cache.builds();

  auto first = cache.Get(spec);
  EXPECT_EQ(cache.builds(), builds0 + 1);

  // Same spec: shared entry, no rebuild.
  auto again = cache.Get(spec);
  EXPECT_EQ(cache.builds(), builds0 + 1);
  EXPECT_EQ(first.get(), again.get());

  // Any field change is a new spec: exactly one more build each.
  PlanSpec stabilized = spec;
  stabilized.stabilize = !spec.stabilize;
  cache.Get(stabilized);
  EXPECT_EQ(cache.builds(), builds0 + 2);

  PlanSpec wider = spec;
  wider.time_dim += 1;
  cache.Get(wider);
  EXPECT_EQ(cache.builds(), builds0 + 3);

  // And the original is still cached.
  cache.Get(spec);
  EXPECT_EQ(cache.builds(), builds0 + 3);
}

TEST(PlanProgramShapeTest, SumEdgeProgramIsASingleFusedOp) {
  EXPECT_EQ(BuildEdgeProgram(SumSpec(true, false)).ops().size(), 1u);
  EXPECT_EQ(BuildEdgeProgram(SumSpec(true, false)).ops()[0].code,
            OpCode::kTanhAdd);
  EXPECT_EQ(BuildEdgeProgram(SumSpec(false, false)).ops()[0].code,
            OpCode::kAddAccumulate);
}

TEST(PlanProgramShapeTest, TimeProgramIsEmptyWithoutAnAccumulator) {
  EXPECT_TRUE(BuildTimeProgram(GruSpec()).empty());
  PlanSpec no_time = SumSpec(true, false);
  no_time.time_dim = 0;
  EXPECT_TRUE(BuildTimeProgram(no_time).empty());
  EXPECT_FALSE(BuildTimeProgram(SumSpec(true, false)).empty());
}

}  // namespace
}  // namespace tpgnn::tensor::plan
