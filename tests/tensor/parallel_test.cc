// Concurrency contracts of the tensor engine and the thread pool:
// NoGradGuard is per-thread, ParallelFor is deterministic and exhaustive,
// and concurrent forward/backward over shared parameters is race-free when
// gradients are redirected through ShadowGradScope. Run locally under
// -fsanitize=thread to surface ordering bugs the assertions cannot.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace tpgnn::tensor {
namespace {

TEST(ParallelTest, NoGradGuardIsPerThread) {
  ASSERT_TRUE(GradEnabled());
  NoGradGuard outer;
  ASSERT_FALSE(GradEnabled());

  // A freshly spawned thread is unaffected by this thread's guard, and its
  // own nesting unwinds independently.
  bool fresh_thread_enabled = false;
  bool nested_disabled = true;
  bool unwound_enabled = false;
  std::thread worker([&] {
    fresh_thread_enabled = GradEnabled();
    {
      NoGradGuard inner1;
      NoGradGuard inner2;
      nested_disabled = !GradEnabled();
    }
    unwound_enabled = GradEnabled();
  });
  worker.join();
  EXPECT_TRUE(fresh_thread_enabled);
  EXPECT_TRUE(nested_disabled);
  EXPECT_TRUE(unwound_enabled);
  EXPECT_FALSE(GradEnabled());
}

TEST(ParallelTest, NoGradGuardNestsInsidePoolWorkers) {
  ThreadPool pool(4);
  std::atomic<int> violations{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t) {
    if (!GradEnabled()) violations.fetch_add(1);
    NoGradGuard guard;
    if (GradEnabled()) violations.fetch_add(1);
    {
      NoGradGuard nested;
      if (GradEnabled()) violations.fetch_add(1);
    }
    if (GradEnabled()) violations.fetch_add(1);
  });
  // Guards must fully unwind before the next task reuses the thread.
  pool.ParallelFor(0, 64, 1, [&](int64_t) {
    if (!GradEnabled()) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t grain : {1, 3, 16, 1000}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, 257, grain, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ParallelTest, ParallelMapIsDeterministicAcrossThreadCounts) {
  auto square = [](int64_t i) { return i * i; };
  ThreadPool serial(1);
  ThreadPool wide(8);
  std::vector<int64_t> a = ParallelMap<int64_t>(serial, 100, 7, square);
  std::vector<int64_t> b = ParallelMap<int64_t>(wide, 100, 7, square);
  EXPECT_EQ(a, b);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    // Nested calls must complete inline without deadlocking on the pool —
    // including the SECOND one: the first nested scope must not clear the
    // worker flag on exit, or the second call would submit a job and wait
    // on its own enclosing job forever.
    pool.ParallelFor(0, 4, 1, [&](int64_t) { total.fetch_add(1); });
    EXPECT_TRUE(ThreadPool::InWorker());
    pool.ParallelFor(0, 4, 1, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(ThreadPool::InWorker());
}

// Per-task reference gradients for loss = Sum(Tanh(x W)), each computed
// serially on a fresh tape with a zeroed gradient buffer — the same float
// operations the shadow buffers see, so the comparison is bit-exact.
std::vector<std::vector<float>> SerialTaskGrads(const Tensor& w_proto,
                                                const std::vector<Tensor>& xs) {
  std::vector<std::vector<float>> grads;
  for (const Tensor& x : xs) {
    Tensor w = Tensor::FromVector(w_proto.shape(), w_proto.data(), true);
    Tensor loss = Sum(Tanh(MatMul(x, w)));
    loss.Backward();
    grads.push_back(w.grad());
  }
  return grads;
}

TEST(ParallelTest, ConcurrentBackwardWithShadowGradsMatchesSerial) {
  const int64_t kTasks = 16;
  const int64_t dim = 12;
  Rng rng(99);
  Tensor w = Tensor::Uniform({dim, dim}, -0.5f, 0.5f, rng, true);
  std::vector<Tensor> xs;
  for (int64_t t = 0; t < kTasks; ++t) {
    xs.push_back(Tensor::Uniform({3, dim}, -1.0f, 1.0f, rng, false));
  }
  const std::vector<std::vector<float>> expected = SerialTaskGrads(w, xs);

  ThreadPool pool(4);
  std::vector<std::shared_ptr<TensorImpl>> shadowed = {w.impl()};
  std::vector<std::vector<float>> shadow_grads(static_cast<size_t>(kTasks));
  pool.ParallelFor(0, kTasks, 1, [&](int64_t t) {
    ShadowGradScope scope(shadowed);
    Tensor loss = Sum(Tanh(MatMul(xs[static_cast<size_t>(t)], w)));
    loss.Backward();
    shadow_grads[static_cast<size_t>(t)] = scope.shadow_grad(0);
  });

  // The shared parameter's real gradient buffer must be untouched...
  for (float g : w.grad()) {
    ASSERT_EQ(g, 0.0f);
  }
  // ...and every concurrently computed shadow gradient must be bit-identical
  // to its serial reference, no matter which worker ran it or when.
  for (int64_t t = 0; t < kTasks; ++t) {
    const std::vector<float>& got = shadow_grads[static_cast<size_t>(t)];
    const std::vector<float>& want = expected[static_cast<size_t>(t)];
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "task " << t << " element " << i;
    }
  }
}

TEST(ParallelTest, ShadowScopeLeavesUnrelatedTensorsAlone) {
  Tensor w = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor v = Tensor::FromVector({2}, {3.0f, 4.0f}, true);
  {
    ShadowGradScope scope({w.impl()});
    Tensor loss = Sum(Mul(w, v));
    loss.Backward();
    // w's gradient went to the shadow buffer; v's went to the real one.
    EXPECT_FLOAT_EQ(scope.shadow_grad(0)[0], 3.0f);
    EXPECT_FLOAT_EQ(scope.shadow_grad(0)[1], 4.0f);
  }
  EXPECT_FLOAT_EQ(w.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(w.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(v.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(v.grad()[1], 2.0f);
}

}  // namespace
}  // namespace tpgnn::tensor
