// Coverage for the fused per-edge ops and zero-copy row views added with
// the tensor memory subsystem:
//  * GatherRows / ScatterRowAdd forward values and gradients, checked both
//    numerically and against compositions of the pre-existing ops
//    (IndexSelect, Row, Stack, Concat), including duplicate-row scatters.
//  * Affine / Affine2 / MulAdd / TanhAdd / GruBlend forward + gradcheck.
//  * RowSpanOf / MutableRowSpan aliasing rules.
//  * AddInPlace / ScaledAddInPlace and their autograd guard rails.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

using testing::GradCheck;
using testing::GradCheckResult;

Tensor SquaredSum(const Tensor& t) { return Sum(Mul(t, t)); }

TEST(GatherRowsTest, ForwardMatchesIndexSelectWithDuplicates) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  const std::vector<int64_t> idx = {2, 0, 2, 1};
  Tensor gathered = GatherRows(a, idx);
  Tensor reference = IndexSelect(a, idx);
  ASSERT_EQ(gathered.shape(), reference.shape());
  EXPECT_EQ(gathered.data(), reference.data());
  EXPECT_EQ(gathered.data(), (std::vector<float>{5, 6, 1, 2, 5, 6, 3, 4}));
}

TEST(GatherRowsTest, GradientMatchesIndexSelectComposition) {
  const std::vector<int64_t> idx = {1, 1, 0, 2};
  Tensor a = Tensor::FromVector({3, 2}, {0.5f, -1, 2, 0.25f, -3, 1.5f},
                                /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({3, 2}, {0.5f, -1, 2, 0.25f, -3, 1.5f},
                                /*requires_grad=*/true);

  SquaredSum(GatherRows(a, idx)).Backward();
  SquaredSum(IndexSelect(b, idx)).Backward();
  ASSERT_EQ(a.grad().size(), b.grad().size());
  for (size_t i = 0; i < a.grad().size(); ++i) {
    EXPECT_EQ(a.grad()[i], b.grad()[i]) << "element " << i;
  }
}

TEST(GatherRowsTest, GradCheckWithDuplicateIndices) {
  Rng rng(5);
  Tensor a = Tensor::Uniform({4, 3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(GatherRows(p[0], {3, 1, 3, 0, 3}));
      },
      {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ScatterRowAddTest, ForwardAccumulatesDuplicateRows) {
  Tensor base = Tensor::FromVector({3, 2}, {10, 20, 30, 40, 50, 60});
  Tensor updates = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = ScatterRowAdd(base, {0, 2, 0}, updates);
  // Row 0 receives updates row 0 and row 2; row 1 is untouched.
  EXPECT_EQ(out.data(), (std::vector<float>{16, 28, 30, 40, 53, 64}));
  // Inputs are not mutated (the op is functional).
  EXPECT_EQ(base.data(), (std::vector<float>{10, 20, 30, 40, 50, 60}));
}

TEST(ScatterRowAddTest, MatchesRowStackComposition) {
  // Reference built purely from pre-existing ops: per destination row,
  // accumulate the update rows that target it in scatter order, then stack.
  const std::vector<int64_t> idx = {0, 2, 0, 1};
  Tensor base = Tensor::FromVector({3, 2}, {1, -2, 3, 0.5f, -1, 4},
                                   /*requires_grad=*/true);
  Tensor updates =
      Tensor::FromVector({4, 2}, {0.25f, 1, -0.5f, 2, 1.5f, -1, 0, 3},
                         /*requires_grad=*/true);
  Tensor base_ref = Tensor::FromVector({3, 2}, {1, -2, 3, 0.5f, -1, 4},
                                       /*requires_grad=*/true);
  Tensor updates_ref =
      Tensor::FromVector({4, 2}, {0.25f, 1, -0.5f, 2, 1.5f, -1, 0, 3},
                         /*requires_grad=*/true);

  Tensor fused = ScatterRowAdd(base, idx, updates);

  std::vector<Tensor> rows;
  for (int64_t r = 0; r < 3; ++r) {
    Tensor row = Row(base_ref, r);
    for (size_t i = 0; i < idx.size(); ++i) {
      if (idx[i] == r) {
        row = Add(row, Row(updates_ref, static_cast<int64_t>(i)));
      }
    }
    rows.push_back(row);
  }
  Tensor reference = Stack(rows);

  ASSERT_EQ(fused.shape(), reference.shape());
  EXPECT_EQ(fused.data(), reference.data());

  SquaredSum(fused).Backward();
  SquaredSum(reference).Backward();
  EXPECT_EQ(base.grad(), base_ref.grad());
  EXPECT_EQ(updates.grad(), updates_ref.grad());
}

TEST(ScatterRowAddTest, GradCheckWithDuplicateIndices) {
  Rng rng(9);
  Tensor base =
      Tensor::Uniform({3, 2}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor updates =
      Tensor::Uniform({4, 2}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(ScatterRowAdd(p[0], {1, 1, 2, 0}, p[1]));
      },
      {base, updates});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AffineTest, BitIdenticalToMatMulAddAndGradChecks) {
  Rng rng(3);
  Tensor x = Tensor::Uniform({2, 4}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor w = Tensor::Uniform({4, 3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor b = Tensor::Uniform({3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);

  Tensor fused = Affine(x, w, b);
  Tensor reference = Add(MatMul(x, w), b);
  EXPECT_EQ(fused.data(), reference.data());

  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(Affine(p[0], p[1], p[2]));
      },
      {x, w, b});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Affine2Test, MatchesUnfusedChainAndGradChecks) {
  Rng rng(4);
  Tensor x = Tensor::Uniform({2, 4}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor w = Tensor::Uniform({4, 3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor h = Tensor::Uniform({2, 5}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor u = Tensor::Uniform({5, 3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor b = Tensor::Uniform({3}, -1.0f, 1.0f, rng, /*requires_grad=*/true);

  // Both GEMMs accumulate into one buffer, so only closeness (not bit
  // identity) is promised against the unfused chain.
  Tensor fused = Affine2(x, w, h, u, b);
  Tensor reference = Add(Add(MatMul(x, w), MatMul(h, u)), b);
  EXPECT_TRUE(AllClose(fused, reference, 1e-5f, 1e-5f));

  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(Affine2(p[0], p[1], p[2], p[3], p[4]));
      },
      {x, w, h, u, b});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(FusedElementwiseTest, MulAddForwardAndGradCheck) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = Tensor::FromVector({2, 2}, {0.5f, -0.5f, 1, -1});
  EXPECT_EQ(MulAdd(a, b, c).data(), (std::vector<float>{5.5f, 11.5f, 22, 31}));

  Rng rng(6);
  Tensor ga = Tensor::Uniform({6}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor gb = Tensor::Uniform({6}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor gc = Tensor::Uniform({6}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(MulAdd(p[0], p[1], p[2]));
      },
      {ga, gb, gc});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(FusedElementwiseTest, TanhAddForwardAndGradCheck) {
  Tensor a = Tensor::FromVector({3}, {0.25f, -1, 2});
  Tensor b = Tensor::FromVector({3}, {0.75f, 1, -2});
  Tensor out = TanhAdd(a, b);
  EXPECT_FLOAT_EQ(out.data()[0], std::tanh(1.0f));
  EXPECT_FLOAT_EQ(out.data()[1], std::tanh(0.0f));
  EXPECT_FLOAT_EQ(out.data()[2], std::tanh(0.0f));

  Rng rng(7);
  Tensor ga = Tensor::Uniform({5}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor gb = Tensor::Uniform({5}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(TanhAdd(p[0], p[1]));
      },
      {ga, gb});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(FusedElementwiseTest, GruBlendBitIdenticalToUnfusedChain) {
  Rng rng(8);
  Tensor z = Tensor::Uniform({1, 6}, 0.1f, 0.9f, rng, /*requires_grad=*/true);
  Tensor h = Tensor::Uniform({1, 6}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor n = Tensor::Uniform({1, 6}, -1.0f, 1.0f, rng, /*requires_grad=*/true);

  Tensor fused = GruBlend(z, h, n);
  Tensor ones = Tensor::Ones({1, 6});
  Tensor reference = Add(Mul(z, h), Mul(Sub(ones, z), n));
  EXPECT_EQ(fused.data(), reference.data());

  GradCheckResult r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return SquaredSum(GruBlend(p[0], p[1], p[2]));
      },
      {z, h, n});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(RowViewTest, RowSpanOfReadsTheRowInPlace) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  ConstRowSpan row = RowSpanOf(a, 1);
  ASSERT_EQ(row.size, 3);
  EXPECT_EQ(row.data[0], 4.0f);
  EXPECT_EQ(row.data[2], 6.0f);
  // The span aliases the tensor's storage; no copy is made.
  EXPECT_EQ(row.data, a.data().data() + 3);
}

TEST(RowViewTest, MutableRowSpanWritesThrough) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  RowSpan row = MutableRowSpan(a, 0);
  ASSERT_EQ(row.size, 3);
  row.data[0] = -1.0f;
  row.data[2] = -3.0f;
  EXPECT_EQ(a.data(), (std::vector<float>{-1, 2, -3, 4, 5, 6}));
}

TEST(RowViewTest, MutableRowSpanRejectsAutogradTensors) {
  Tensor leaf = Tensor::Zeros({2, 3}, /*requires_grad=*/true);
  EXPECT_DEATH(MutableRowSpan(leaf, 0), "Check failed");
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6},
                                /*requires_grad=*/true);
  Tensor recorded = Tanh(a);
  EXPECT_DEATH(MutableRowSpan(recorded, 0), "Check failed");
}

TEST(InPlaceOpsTest, AddInPlaceAndScaledAddInPlace) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({4}, {10, 20, 30, 40});
  AddInPlace(a, b);
  EXPECT_EQ(a.data(), (std::vector<float>{11, 22, 33, 44}));
  ScaledAddInPlace(a, b, -0.5f);
  EXPECT_EQ(a.data(), (std::vector<float>{6, 12, 18, 24}));
}

TEST(InPlaceOpsTest, InPlaceOpsRejectAutogradTensors) {
  Tensor leaf = Tensor::Zeros({4}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({4}, {1, 1, 1, 1});
  EXPECT_DEATH(AddInPlace(leaf, b), "Check failed");
  EXPECT_DEATH(ScaledAddInPlace(leaf, b, 2.0f), "Check failed");
}

}  // namespace
}  // namespace tpgnn::tensor
