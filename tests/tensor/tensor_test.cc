#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

TEST(ShapeTest, Numel) {
  EXPECT_EQ(Numel({}), 1);
  EXPECT_EQ(Numel({0}), 0);
  EXPECT_EQ(Numel({3}), 3);
  EXPECT_EQ(Numel({2, 3}), 6);
  EXPECT_EQ(Numel({2, 3, 4}), 24);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZerosAndOnes) {
  Tensor z = Tensor::Zeros({2, 2});
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor o = Tensor::Ones({3});
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({2, 3}, 2.5f);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromVectorAndAccess) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorTest, MutableAtWrites) {
  Tensor t = Tensor::Zeros({2, 2});
  t.MutableAt({1, 1}) = 5.0f;
  EXPECT_EQ(t.at({1, 1}), 5.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), 3.5f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor e = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(e.at({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, UniformWithinBounds) {
  Rng rng(1);
  Tensor t = Tensor::Uniform({100}, -2.0f, 3.0f, rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(TensorTest, RandnStddev) {
  Rng rng(2);
  Tensor t = Tensor::Randn({10000}, 2.0f, rng);
  double sum_sq = 0.0;
  for (float v : t.data()) sum_sq += static_cast<double>(v) * v;
  EXPECT_NEAR(sum_sq / t.numel(), 4.0, 0.3);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;  // Handle copy: shares impl.
  b.MutableAt({0}) = 7.0f;
  EXPECT_EQ(a.at({0}), 7.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a.Clone();
  b.MutableAt({0}) = 7.0f;
  EXPECT_EQ(a.at({0}), 0.0f);
}

TEST(TensorTest, DetachDropsGradHistory) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor b = Add(a, a);
  EXPECT_TRUE(b.requires_grad());
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at({0}), 2.0f);
}

TEST(TensorTest, RequiresGradFlagPropagation) {
  Tensor a = Tensor::Ones({2}, true);
  Tensor b = Tensor::Ones({2}, false);
  EXPECT_TRUE(Add(a, b).requires_grad());
  EXPECT_FALSE(Add(b, b).requires_grad());
}

TEST(TensorTest, NoGradGuardDisablesTape) {
  Tensor a = Tensor::Ones({2}, true);
  {
    NoGradGuard guard;
    Tensor b = Add(a, a);
    EXPECT_FALSE(b.requires_grad());
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
}

TEST(TensorTest, NoGradGuardNests) {
  NoGradGuard g1;
  {
    NoGradGuard g2;
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_FALSE(GradEnabled());
}

TEST(TensorTest, ZeroGradClears) {
  Tensor a = Tensor::Ones({2}, true);
  Tensor loss = Sum(Mul(a, a));
  loss.Backward();
  EXPECT_EQ(a.grad()[0], 2.0f);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, ToStringContainsShape) {
  Tensor t = Tensor::FromVector({2}, {1.0f, 2.0f});
  EXPECT_NE(t.ToString().find("[2]"), std::string::npos);
}

TEST(TensorTest, DefaultTensorIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.defined());
}

}  // namespace
}  // namespace tpgnn::tensor
