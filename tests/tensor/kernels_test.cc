// Parity contracts of the runtime-dispatched kernel layer (tensor/kernels.h):
//  * Bitwise class — GEMM (all three transpose variants), the linear
//    elementwise kernels, and the time-encoding kernels must be
//    bit-identical between the scalar table and every supported ISA table,
//    across edge shapes: n/k/m of 0, 1, odd tails below the vector width,
//    and multiples straddling the blocked-GEMM tiles.
//  * ulp class — tanh_inplace / tanh_add / sigmoid_bias / gru_candidate may
//    use a vector exp polynomial, but must stay within
//    kTranscendentalUlpBound ULPs of the scalar kernel per element.
//  * Dispatch — mode parsing, support queries, and the ScopedSimdMode pin.

#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

// Edge shapes: empty, single element, odd tails below the 8-lane AVX2 width
// and the GEMM k-tile, and widths straddling both.
const int64_t kEdgeSizes[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65};

std::vector<float> RandomVec(int64_t n, uint64_t seed, float lo = -2.5f,
                             float hi = 2.5f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(lo, hi);
  return v;
}

int32_t UlpDistance(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return INT32_MAX;
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float encoding onto a monotone integer line.
  if (ia < 0) ia = INT32_MIN - ia;
  if (ib < 0) ib = INT32_MIN - ib;
  const int64_t d = static_cast<int64_t>(ia) - static_cast<int64_t>(ib);
  const int64_t mag = d < 0 ? -d : d;
  return mag > INT32_MAX ? INT32_MAX : static_cast<int32_t>(mag);
}

std::vector<const Kernels*> SupportedIsaTables() {
  std::vector<const Kernels*> tables;
  if (internal::Avx2Supported()) tables.push_back(&internal::Avx2Kernels());
  if (internal::NeonSupported()) tables.push_back(&internal::NeonKernels());
  return tables;
}

void ExpectBitwiseEq(const std::vector<float>& expected,
                     const std::vector<float>& got, const std::string& what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], got[i]) << what << " element " << i;
  }
}

void ExpectUlpClose(const std::vector<float>& expected,
                    const std::vector<float>& got, const std::string& what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_LE(UlpDistance(expected[i], got[i]), kTranscendentalUlpBound)
        << what << " element " << i << ": scalar " << expected[i] << " vs "
        << got[i];
  }
}

// --- GEMM bitwise parity across edge shapes --------------------------------

TEST(KernelsGemmTest, AccumulateBitwiseMatchesScalarAcrossEdgeShapes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{3}}) {
      for (int64_t k : kEdgeSizes) {
        for (int64_t m : kEdgeSizes) {
          auto a = RandomVec(n * k, 17 * static_cast<uint64_t>(k + 1) + 1);
          auto b = RandomVec(k * m, 23 * static_cast<uint64_t>(m + 1) + 2);
          auto c_scalar = RandomVec(n * m, 5);
          auto c_isa = c_scalar;
          ScalarKernels().gemm_accumulate(a.data(), b.data(), c_scalar.data(),
                                          n, k, m);
          isa->gemm_accumulate(a.data(), b.data(), c_isa.data(), n, k, m);
          ExpectBitwiseEq(c_scalar, c_isa,
                          std::string(isa->name) + " gemm n=" +
                              std::to_string(n) + " k=" + std::to_string(k) +
                              " m=" + std::to_string(m));
        }
      }
    }
  }
}

TEST(KernelsGemmTest, AccumulateNTBitwiseMatchesScalarAcrossEdgeShapes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{3}}) {
      for (int64_t k : kEdgeSizes) {
        for (int64_t m : kEdgeSizes) {
          auto a = RandomVec(n * m, 31 * static_cast<uint64_t>(m + 1) + 3);
          auto b = RandomVec(k * m, 37 * static_cast<uint64_t>(k + 1) + 4);
          auto c_scalar = RandomVec(n * k, 7);
          auto c_isa = c_scalar;
          ScalarKernels().gemm_accumulate_nt(a.data(), b.data(),
                                             c_scalar.data(), n, k, m);
          isa->gemm_accumulate_nt(a.data(), b.data(), c_isa.data(), n, k, m);
          ExpectBitwiseEq(c_scalar, c_isa,
                          std::string(isa->name) + " gemm_nt n=" +
                              std::to_string(n) + " k=" + std::to_string(k) +
                              " m=" + std::to_string(m));
        }
      }
    }
  }
}

TEST(KernelsGemmTest, AccumulateTNBitwiseMatchesScalarAcrossEdgeShapes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{3}}) {
      for (int64_t k : kEdgeSizes) {
        for (int64_t m : kEdgeSizes) {
          auto a = RandomVec(n * k, 41 * static_cast<uint64_t>(k + 1) + 5);
          auto b = RandomVec(n * m, 43 * static_cast<uint64_t>(m + 1) + 6);
          auto c_scalar = RandomVec(k * m, 9);
          auto c_isa = c_scalar;
          ScalarKernels().gemm_accumulate_tn(a.data(), b.data(),
                                             c_scalar.data(), n, k, m);
          isa->gemm_accumulate_tn(a.data(), b.data(), c_isa.data(), n, k, m);
          ExpectBitwiseEq(c_scalar, c_isa,
                          std::string(isa->name) + " gemm_tn n=" +
                              std::to_string(n) + " k=" + std::to_string(k) +
                              " m=" + std::to_string(m));
        }
      }
    }
  }
}

// --- Linear elementwise bitwise parity -------------------------------------

TEST(KernelsElementwiseTest, BitwiseClassMatchesScalarAcrossEdgeShapes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    for (int64_t n : kEdgeSizes) {
      const std::string tag =
          std::string(isa->name) + " n=" + std::to_string(n);
      auto src = RandomVec(n, 51);
      auto z = RandomVec(n, 52, 0.0f, 1.0f);
      auto h = RandomVec(n, 53);
      auto nn = RandomVec(n, 54);
      auto c = RandomVec(n, 55, -1.0f, 1.0f);
      auto s = RandomVec(n, 56, -1.0f, 1.0f);

      auto a_scalar = RandomVec(n, 50);
      auto a_isa = a_scalar;
      ScalarKernels().copy(a_scalar.data(), src.data(), n);
      isa->copy(a_isa.data(), src.data(), n);
      ExpectBitwiseEq(a_scalar, a_isa, tag + " copy");

      ScalarKernels().zero(a_scalar.data(), n);
      isa->zero(a_isa.data(), n);
      ExpectBitwiseEq(a_scalar, a_isa, tag + " zero");

      a_scalar = RandomVec(n, 57);
      a_isa = a_scalar;
      ScalarKernels().add_accumulate(a_scalar.data(), src.data(), n);
      isa->add_accumulate(a_isa.data(), src.data(), n);
      ExpectBitwiseEq(a_scalar, a_isa, tag + " add_accumulate");

      ScalarKernels().scale_inplace(a_scalar.data(), 0.3713f, n);
      isa->scale_inplace(a_isa.data(), 0.3713f, n);
      ExpectBitwiseEq(a_scalar, a_isa, tag + " scale_inplace");

      auto out_scalar = RandomVec(n, 58);
      auto out_isa = out_scalar;
      ScalarKernels().gru_blend(out_scalar.data(), z.data(), h.data(),
                                nn.data(), n);
      isa->gru_blend(out_isa.data(), z.data(), h.data(), nn.data(), n);
      ExpectBitwiseEq(out_scalar, out_isa, tag + " gru_blend");

      // gru_blend allows out == h.
      auto h_scalar = h;
      auto h_isa = h;
      ScalarKernels().gru_blend(h_scalar.data(), z.data(), h_scalar.data(),
                                nn.data(), n);
      isa->gru_blend(h_isa.data(), z.data(), h_isa.data(), nn.data(), n);
      ExpectBitwiseEq(h_scalar, h_isa, tag + " gru_blend aliased");

      ScalarKernels().rotate_pairs(out_scalar.data(), src.data(), nn.data(),
                                   c.data(), s.data(), n);
      isa->rotate_pairs(out_isa.data(), src.data(), nn.data(), c.data(),
                        s.data(), n);
      ExpectBitwiseEq(out_scalar, out_isa, tag + " rotate_pairs");
    }
  }
}

// --- Time-encoding bitwise parity ------------------------------------------

TEST(KernelsTimeEncodingTest, BitwiseMatchesScalarAcrossEdgeShapesAndTimes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    // Large raw timestamps exercise the libm sin/cos range reduction that a
    // vector polynomial could not match — these kernels keep sin/cos scalar
    // on every ISA precisely so big-t invariant folds stay bitwise.
    for (float t : {0.0f, 1.5f, 123.25f, 98765.0f}) {
      for (int64_t dim : {int64_t{2}, int64_t{3}, int64_t{6}, int64_t{9},
                          int64_t{17}}) {
        const std::string tag = std::string(isa->name) +
                                " dim=" + std::to_string(dim) +
                                " t=" + std::to_string(t);
        auto w0 = RandomVec(1, 61);
        auto phi0 = RandomVec(1, 62);
        auto w = RandomVec(dim - 1, 63, 0.0f, 1.0f);
        auto phi = RandomVec(dim - 1, 64, 0.0f, 6.28f);

        std::vector<float> out_scalar(static_cast<size_t>(dim));
        std::vector<float> out_isa(static_cast<size_t>(dim));
        ScalarKernels().time2vec(out_scalar.data(), t, w0.data(), phi0.data(),
                                 w.data(), phi.data(), dim);
        isa->time2vec(out_isa.data(), t, w0.data(), phi0.data(), w.data(),
                      phi.data(), dim);
        ExpectBitwiseEq(out_scalar, out_isa, tag + " time2vec");

        const int64_t p = dim - 1;
        std::vector<float> sin_scalar(static_cast<size_t>(p));
        std::vector<float> cos_scalar(static_cast<size_t>(p));
        std::vector<float> sin_isa(static_cast<size_t>(p));
        std::vector<float> cos_isa(static_cast<size_t>(p));
        ScalarKernels().phasor(sin_scalar.data(), cos_scalar.data(), t,
                               w.data(), phi.data(), p);
        isa->phasor(sin_isa.data(), cos_isa.data(), t, w.data(), phi.data(),
                    p);
        ExpectBitwiseEq(sin_scalar, sin_isa, tag + " phasor sin");
        ExpectBitwiseEq(cos_scalar, cos_isa, tag + " phasor cos");

        ScalarKernels().rotation(cos_scalar.data(), sin_scalar.data(), t,
                                 w.data(), p);
        isa->rotation(cos_isa.data(), sin_isa.data(), t, w.data(), p);
        ExpectBitwiseEq(cos_scalar, cos_isa, tag + " rotation cos");
        ExpectBitwiseEq(sin_scalar, sin_isa, tag + " rotation sin");
      }
    }
  }
}

// --- ulp-class tolerance ----------------------------------------------------

TEST(KernelsTranscendentalTest, UlpClassWithinBoundAcrossEdgeShapes) {
  for (const Kernels* isa : SupportedIsaTables()) {
    for (int64_t n : kEdgeSizes) {
      const std::string tag =
          std::string(isa->name) + " n=" + std::to_string(n);
      // Cover the saturating tails as well as the active region.
      auto v = RandomVec(n, 71, -12.0f, 12.0f);
      auto src = RandomVec(n, 72, -3.0f, 3.0f);
      auto bias = RandomVec(n, 73);
      auto r = RandomVec(n, 74, 0.0f, 1.0f);
      auto hu = RandomVec(n, 75);
      auto xn = RandomVec(n, 76);

      auto v_scalar = v;
      auto v_isa = v;
      ScalarKernels().tanh_inplace(v_scalar.data(), n);
      isa->tanh_inplace(v_isa.data(), n);
      ExpectUlpClose(v_scalar, v_isa, tag + " tanh_inplace");

      v_scalar = v;
      v_isa = v;
      ScalarKernels().tanh_add(v_scalar.data(), src.data(), n);
      isa->tanh_add(v_isa.data(), src.data(), n);
      ExpectUlpClose(v_scalar, v_isa, tag + " tanh_add");

      v_scalar = v;
      v_isa = v;
      ScalarKernels().sigmoid_bias(v_scalar.data(), bias.data(), n);
      isa->sigmoid_bias(v_isa.data(), bias.data(), n);
      ExpectUlpClose(v_scalar, v_isa, tag + " sigmoid_bias");

      std::vector<float> out_scalar(static_cast<size_t>(n));
      std::vector<float> out_isa(static_cast<size_t>(n));
      ScalarKernels().gru_candidate(out_scalar.data(), r.data(), hu.data(),
                                    xn.data(), bias.data(), n);
      isa->gru_candidate(out_isa.data(), r.data(), hu.data(), xn.data(),
                         bias.data(), n);
      ExpectUlpClose(out_scalar, out_isa, tag + " gru_candidate");
    }
  }
}

TEST(KernelsTranscendentalTest, SaturatedTailsAreExactlyPlusMinusOne) {
  for (const Kernels* isa : SupportedIsaTables()) {
    std::vector<float> v = {-100.0f, -15.0f, 15.0f, 100.0f};
    isa->tanh_inplace(v.data(), static_cast<int64_t>(v.size()));
    EXPECT_EQ(v[0], -1.0f) << isa->name;
    EXPECT_EQ(v[1], -1.0f) << isa->name;
    EXPECT_EQ(v[2], 1.0f) << isa->name;
    EXPECT_EQ(v[3], 1.0f) << isa->name;
  }
}

// --- Dispatch ----------------------------------------------------------------

TEST(KernelsDispatchTest, ParseSimdModeRoundTripsAndRejectsJunk) {
  SimdMode mode;
  ASSERT_TRUE(ParseSimdMode("scalar", &mode));
  EXPECT_EQ(mode, SimdMode::kScalar);
  ASSERT_TRUE(ParseSimdMode("avx2", &mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);
  ASSERT_TRUE(ParseSimdMode("neon", &mode));
  EXPECT_EQ(mode, SimdMode::kNeon);
  ASSERT_TRUE(ParseSimdMode("auto", &mode));
  EXPECT_EQ(mode, SimdMode::kAuto);
  EXPECT_FALSE(ParseSimdMode("avx512", &mode));
  EXPECT_FALSE(ParseSimdMode("", &mode));
}

TEST(KernelsDispatchTest, ScalarModeIsAlwaysSupported) {
  EXPECT_TRUE(SimdModeSupported(SimdMode::kScalar));
  EXPECT_TRUE(SimdModeSupported(SimdMode::kAuto));
}

TEST(KernelsDispatchTest, ScopedSimdModeRestoresThePreviousMode) {
  const SimdMode before = ActiveSimdMode();
  {
    ScopedSimdMode pin(SimdMode::kScalar);
    EXPECT_EQ(ActiveSimdMode(), SimdMode::kScalar);
    EXPECT_STREQ(ActiveKernels().name, "scalar");
  }
  EXPECT_EQ(ActiveSimdMode(), before);
}

TEST(KernelsDispatchTest, AutoResolvesToAConcreteSupportedMode) {
  ScopedSimdMode pin(SimdMode::kAuto);
  const SimdMode resolved = ActiveSimdMode();
  EXPECT_NE(resolved, SimdMode::kAuto);
  EXPECT_TRUE(SimdModeSupported(resolved));
  if (internal::Avx2Supported()) {
    EXPECT_EQ(resolved, SimdMode::kAvx2);
    EXPECT_STREQ(ActiveKernels().name, "avx2");
  }
}

}  // namespace
}  // namespace tpgnn::tensor
