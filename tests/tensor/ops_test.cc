#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace tpgnn::tensor {
namespace {

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(OpsTest, AddBroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, AddBroadcastScalar) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(100.0f);
  Tensor c = Add(a, s);
  EXPECT_EQ(c.data(), (std::vector<float>{101, 102, 103, 104}));
}

TEST(OpsTest, AddBroadcastColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {10, 100});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.data(), (std::vector<float>{11, 12, 13, 104, 105, 106}));
}

TEST(OpsTest, BroadcastShapeRules) {
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 1}, {1, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({1}, {4}), (Shape{4}));
  EXPECT_EQ(BroadcastShape({5}, {5}), (Shape{5}));
}

TEST(OpsTest, SubMulDiv) {
  Tensor a = Tensor::FromVector({3}, {4, 9, 16});
  Tensor b = Tensor::FromVector({3}, {2, 3, 4});
  EXPECT_EQ(Sub(a, b).data(), (std::vector<float>{2, 6, 12}));
  EXPECT_EQ(Mul(a, b).data(), (std::vector<float>{8, 27, 64}));
  EXPECT_EQ(Div(a, b).data(), (std::vector<float>{2, 3, 4}));
}

TEST(OpsTest, ScaleAndAddScalar) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  EXPECT_EQ(Scale(a, 3.0f).data(), (std::vector<float>{3, -6}));
  EXPECT_EQ(AddScalar(a, 1.0f).data(), (std::vector<float>{2, -1}));
}

TEST(OpsTest, PowSquares) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ(Pow(a, 2.0f).data(), (std::vector<float>{1, 4, 9}));
}

TEST(OpsTest, UnaryValues) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(Neg(a).at({1}), -1.0f);
  EXPECT_FLOAT_EQ(Exp(a).at({1}), std::exp(1.0f));
  EXPECT_FLOAT_EQ(Tanh(a).at({1}), std::tanh(1.0f));
  EXPECT_FLOAT_EQ(Sigmoid(a).at({0}), 0.5f);
  EXPECT_FLOAT_EQ(Sin(a).at({1}), std::sin(1.0f));
  EXPECT_FLOAT_EQ(Cos(a).at({0}), 1.0f);
}

TEST(OpsTest, LogAndSqrt) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 4.0f});
  EXPECT_FLOAT_EQ(Log(a).at({0}), 0.0f);
  EXPECT_FLOAT_EQ(Sqrt(a).at({1}), 2.0f);
}

TEST(OpsTest, ReluClampsNegatives) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5f, 0, 3});
  EXPECT_EQ(Relu(a).data(), (std::vector<float>{0, 0, 0, 3}));
}

TEST(OpsTest, LeakyReluKeepsSlope) {
  Tensor a = Tensor::FromVector({2}, {-10, 10});
  Tensor y = LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(y.at({0}), -1.0f);
  EXPECT_FLOAT_EQ(y.at({1}), 10.0f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.data(), a.data());
}

TEST(OpsTest, TransposeSwapsAxes) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_EQ(t.at({2, 0}), 3.0f);
}

TEST(OpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsTest, ConcatAxis1) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 3, 4, 2, 5, 6}));
}

TEST(OpsTest, ConcatVectors) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({3}, {3, 4, 5});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{5}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 2, 3, 4, 5}));
}

TEST(OpsTest, StackBuildsMatrix) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  Tensor m = Stack({a, b});
  EXPECT_EQ(m.shape(), (Shape{2, 3}));
  EXPECT_EQ(m.at({1, 2}), 6.0f);
}

TEST(OpsTest, IndexSelectGathersRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = IndexSelect(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_EQ(g.data(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(OpsTest, IndexSelect1D) {
  Tensor a = Tensor::FromVector({4}, {10, 20, 30, 40});
  Tensor g = IndexSelect(a, {3, 1});
  EXPECT_EQ(g.shape(), (Shape{2}));
  EXPECT_EQ(g.data(), (std::vector<float>{40, 20}));
}

TEST(OpsTest, RowExtracts1D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Row(a, 1);
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r.data(), (std::vector<float>{4, 5, 6}));
}

TEST(OpsTest, MatMulBasic) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = MatMul(a, Tensor::Eye(2));
  EXPECT_EQ(c.data(), a.data());
}

TEST(OpsTest, SumAndMean) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsTest, SumAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SumAxis(a, 0).data(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(SumAxis(a, 1).data(), (std::vector<float>{6, 15}));
}

TEST(OpsTest, MeanAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(MeanAxis(a, 0).data(), (std::vector<float>{2.5f, 3.5f, 4.5f}));
  EXPECT_EQ(MeanAxis(a, 1).data(), (std::vector<float>{2, 5}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor y = Softmax(a);
  for (int64_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 3; ++c) total += y.at({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  EXPECT_GT(y.at({0, 2}), y.at({0, 0}));
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a = Tensor::FromVector({3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor b = Tensor::FromVector({3}, {0.0f, 1.0f, 2.0f});
  EXPECT_TRUE(AllClose(Softmax(a), Softmax(b), 1e-6f, 1e-5f));
  // Bind the result before iterating: data() returns a reference into the
  // tensor, which a temporary would destroy at the end of the range-init.
  Tensor sa = Softmax(a);
  for (float v : sa.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(OpsTest, BceWithLogitsMatchesManual) {
  Tensor logits = Tensor::FromVector({2}, {0.0f, 2.0f});
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  const float l0 = -std::log(0.5f);
  const float sig2 = 1.0f / (1.0f + std::exp(-2.0f));
  const float l1 = -std::log(1.0f - sig2);
  EXPECT_NEAR(BinaryCrossEntropyWithLogits(logits, targets).item(),
              (l0 + l1) / 2.0f, 1e-5f);
}

TEST(OpsTest, BceWithLogitsStableOnExtremeLogits) {
  Tensor logits = Tensor::FromVector({2}, {1000.0f, -1000.0f});
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  float loss = BinaryCrossEntropyWithLogits(logits, targets).item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
}

TEST(OpsTest, Argmax) {
  Tensor a = Tensor::FromVector({4}, {1, 9, 3, 9});
  EXPECT_EQ(Argmax(a), 1);  // First maximum wins.
}

TEST(OpsTest, AllCloseDetectsDifference) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {1.0f, 2.1f});
  EXPECT_FALSE(AllClose(a, b, 1e-5f, 1e-5f));
  EXPECT_TRUE(AllClose(a, a));
}

TEST(OpsTest, AllCloseShapeMismatch) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(AllClose(a, b));
}

TEST(OpsTest, EmptyTensorOps) {
  Tensor a = Tensor::Zeros({0});
  Tensor b = Tensor::Zeros({0});
  EXPECT_EQ(Add(a, b).numel(), 0);
}

}  // namespace
}  // namespace tpgnn::tensor
