#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

using testing::GradCheck;

Tensor RandParam(const Shape& shape, Rng& rng, float lo = -1.0f,
                 float hi = 1.0f) {
  return Tensor::Uniform(shape, lo, hi, rng, /*requires_grad=*/true);
}

TEST(AutogradTest, AddGrad) {
  Rng rng(1);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Add(p[0], p[1])); },
      {RandParam({2, 3}, rng), RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, AddBroadcastGrad) {
  Rng rng(2);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Mul(Add(p[0], p[1]), Add(p[0], p[1])));
      },
      {RandParam({2, 3}, rng), RandParam({3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, SubGrad) {
  Rng rng(3);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Mul(Sub(p[0], p[1]), Sub(p[0], p[1])));
      },
      {RandParam({4}, rng), RandParam({4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, MulGrad) {
  Rng rng(4);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Mul(p[0], p[1])); },
      {RandParam({3, 2}, rng), RandParam({3, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, DivGrad) {
  Rng rng(5);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Div(p[0], p[1])); },
      {RandParam({4}, rng), RandParam({4}, rng, 1.0f, 2.0f)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, MulBroadcastColumnGrad) {
  Rng rng(6);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Mul(p[0], p[1])); },
      {RandParam({3, 4}, rng), RandParam({3, 1}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, UnaryChainGrads) {
  Rng rng(7);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Tanh(Scale(Sigmoid(p[0]), 2.0f)));
      },
      {RandParam({5}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, ExpLogGrad) {
  Rng rng(8);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Log(Exp(p[0]))); },
      {RandParam({4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, SqrtGrad) {
  Rng rng(9);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Sqrt(p[0])); },
      {RandParam({4}, rng, 0.5f, 2.0f)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, SinCosGrad) {
  Rng rng(10);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Add(Sin(p[0]), Cos(p[0])));
      },
      {RandParam({6}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, PowGrad) {
  Rng rng(11);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) { return Sum(Pow(p[0], 3.0f)); },
      {RandParam({4}, rng, 0.5f, 1.5f)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, LeakyReluGrad) {
  Rng rng(12);
  // Keep values away from the kink at 0 for finite differences.
  Tensor p = Tensor::FromVector({4}, {-2.0f, -1.0f, 1.0f, 2.0f}, true);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(LeakyRelu(p[0], 0.2f));
      },
      {p});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, MatMulGrad) {
  Rng rng(13);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Mul(MatMul(p[0], p[1]), MatMul(p[0], p[1])));
      },
      {RandParam({2, 3}, rng), RandParam({3, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, TransposeGrad) {
  Rng rng(14);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        return Sum(Mul(Transpose(p[0]), Transpose(p[0])));
      },
      {RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, ReshapeGrad) {
  Rng rng(15);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor r = Reshape(p[0], {3, 2});
        return Sum(Mul(r, r));
      },
      {RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, ConcatGradAxis0) {
  Rng rng(16);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor c = Concat({p[0], p[1]}, 0);
        return Sum(Mul(c, c));
      },
      {RandParam({1, 3}, rng), RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, ConcatGradAxis1) {
  Rng rng(17);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor c = Concat({p[0], p[1]}, 1);
        return Sum(Mul(c, c));
      },
      {RandParam({2, 2}, rng), RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, StackGrad) {
  Rng rng(18);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor m = Stack({p[0], p[1]});
        return Sum(Mul(m, m));
      },
      {RandParam({3}, rng), RandParam({3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, IndexSelectGradWithRepeats) {
  Rng rng(19);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor g = IndexSelect(p[0], {0, 2, 0});
        return Sum(Mul(g, g));
      },
      {RandParam({3, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, RowGrad) {
  Rng rng(20);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor row = Row(p[0], 1);
        return Sum(Mul(row, row));
      },
      {RandParam({3, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, SumAxisGrads) {
  Rng rng(21);
  auto r0 = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor s = SumAxis(p[0], 0);
        return Sum(Mul(s, s));
      },
      {RandParam({3, 4}, rng)});
  EXPECT_TRUE(r0.ok) << r0.message;
  auto r1 = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor s = SumAxis(p[0], 1);
        return Sum(Mul(s, s));
      },
      {RandParam({3, 4}, rng)});
  EXPECT_TRUE(r1.ok) << r1.message;
}

TEST(AutogradTest, MeanAxisGrad) {
  Rng rng(22);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor m = MeanAxis(p[0], 0);
        return Sum(Mul(m, m));
      },
      {RandParam({4, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, SoftmaxGrad) {
  Rng rng(23);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        Tensor y = Softmax(p[0]);
        // Weighted sum to produce asymmetric gradients.
        Tensor w = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
        return Sum(Mul(y, w));
      },
      {RandParam({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, BceWithLogitsGrad) {
  Rng rng(24);
  Tensor targets = Tensor::FromVector({4}, {1.0f, 0.0f, 1.0f, 0.0f});
  auto r = GradCheck(
      [targets](const std::vector<Tensor>& p) {
        return BinaryCrossEntropyWithLogits(p[0], targets);
      },
      {RandParam({4}, rng, -2.0f, 2.0f)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AutogradTest, ReusedTensorAccumulatesGrad) {
  // loss = sum(a*a + a) -> d/da = 2a + 1.
  Tensor a = Tensor::FromVector({2}, {3.0f, -1.0f}, true);
  Tensor loss = Sum(Add(Mul(a, a), a));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 7.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], -1.0f);
}

TEST(AutogradTest, DiamondGraphGrad) {
  // b = 2a; c = 3a; loss = sum(b*c) = 6*a^2 -> d/da = 12a.
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor b = Scale(a, 2.0f);
  Tensor c = Scale(a, 3.0f);
  Tensor loss = Sum(Mul(b, c));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 12.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 24.0f);
}

TEST(AutogradTest, DeepChainGrad) {
  // 60 sequential adds of the same leaf: d loss/da = 61 per element... no:
  // x_{k+1} = x_k + a, x_0 = a -> x_60 = 61a; loss = sum -> grad 61.
  Tensor a = Tensor::FromVector({2}, {0.5f, -0.5f}, true);
  Tensor x = a;
  for (int i = 0; i < 60; ++i) {
    x = Add(x, a);
  }
  Tensor loss = Sum(x);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 61.0f);
}

TEST(AutogradTest, BackwardTwiceAccumulates) {
  Tensor a = Tensor::FromVector({1}, {2.0f}, true);
  Tensor loss = Mul(a, a);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  Tensor loss2 = Mul(a, a);
  loss2.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor b = Mul(a, a).Detach();
  Tensor c = Mul(a, b);
  Sum(c).Backward();
  // b is constant: d/da = b = a^2.
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
}

TEST(AutogradTest, MixedRequiresGradOnlyFlowsToLeaf) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor b = Tensor::FromVector({2}, {3.0f, 4.0f}, false);
  Tensor loss = Sum(Mul(a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
}

TEST(AutogradTest, GruLikeCompositeGradCheck) {
  // A miniature gated-recurrence step exercising the op set used by the
  // model: z = sigmoid(Wx+Uh), htilde = tanh(Wx), h' = z*h + (1-z)*htilde.
  Rng rng(25);
  auto r = GradCheck(
      [](const std::vector<Tensor>& p) {
        const Tensor& w = p[0];
        const Tensor& u = p[1];
        const Tensor& x = p[2];
        const Tensor& h = p[3];
        Tensor z = Sigmoid(Add(MatMul(x, w), MatMul(h, u)));
        Tensor htilde = Tanh(MatMul(x, w));
        Tensor ones = Tensor::Ones({1, 3});
        Tensor hprime = Add(Mul(z, h), Mul(Sub(ones, z), htilde));
        return Sum(Mul(hprime, hprime));
      },
      {RandParam({3, 3}, rng), RandParam({3, 3}, rng), RandParam({1, 3}, rng),
       RandParam({1, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace tpgnn::tensor
