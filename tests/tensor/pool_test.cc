// Interaction between the autograd tape and the buffer pool:
//  * Backward() releases interior gradient buffers and recycles tape nodes,
//    so steady-state training loops stop allocating.
//  * Leaf gradients and the ability to detect a second Backward() survive
//    the tape teardown.
//  * Toggling TPGNN_TENSOR_POOL cannot change any computed value.

#include <gtest/gtest.h>

#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace tpgnn::tensor {
namespace {

class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : previous_(util::BufferPoolEnabled()) {
    util::SetBufferPoolEnabled(enabled);
  }
  ~ScopedPoolEnabled() { util::SetBufferPoolEnabled(previous_); }

 private:
  bool previous_;
};

// A small op chain exercising GEMM, fused, and reduction kernels.
std::vector<float> RunChain(uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Uniform({3, 4}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor w = Tensor::Uniform({4, 4}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor b = Tensor::Uniform({4}, -1.0f, 1.0f, rng, /*requires_grad=*/true);
  Tensor y = Tanh(Affine(x, w, b));
  Tensor z = GruBlend(Sigmoid(y), y, Tanh(MatMul(y, w)));
  Tensor loss = Sum(Mul(z, z));
  loss.Backward();
  std::vector<float> out = z.data();
  const std::vector<float>& gx = x.grad();
  out.insert(out.end(), gx.begin(), gx.end());
  out.push_back(loss.item());
  return out;
}

TEST(PoolTest, BackwardReleasesInteriorTapeState) {
  ScopedPoolEnabled enabled(true);
  Tensor a = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({3}, {4, 5, 6}, /*requires_grad=*/true);
  Tensor y = Mul(a, b);  // Interior node.
  Tensor loss = Sum(y);  // Root node.
  ASSERT_NE(y.impl()->grad_fn, nullptr);
  loss.Backward();

  // Interior tensors drop their tape node and gradient buffer; the root
  // keeps a (cleared) node so a second Backward() still CHECK-fails; leaf
  // gradients are untouched.
  EXPECT_EQ(y.impl()->grad_fn, nullptr);
  EXPECT_TRUE(y.impl()->grad.empty());
  EXPECT_NE(loss.impl()->grad_fn, nullptr);
  EXPECT_EQ(a.grad(), (std::vector<float>{4, 5, 6}));
  EXPECT_EQ(b.grad(), (std::vector<float>{1, 2, 3}));
  EXPECT_DEATH(loss.Backward(), "twice");
}

TEST(PoolTest, DisabledPoolKeepsInteriorTapeState) {
  ScopedPoolEnabled disabled(false);
  Tensor a = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor y = Scale(a, 2.0f);
  Tensor loss = Sum(y);
  loss.Backward();
  // Without the pool the tape is left as the seed implementation built it.
  EXPECT_NE(y.impl()->grad_fn, nullptr);
  EXPECT_EQ(a.grad(), (std::vector<float>{2, 2, 2}));
}

TEST(PoolTest, SteadyStateIterationsRecycleNodesAndBuffers) {
  ScopedPoolEnabled enabled(true);
  RunChain(42);  // Warm-up: populate the node freelist and buffer pool.

  const util::BufferPoolStats before = util::GetBufferPoolStats();
  RunChain(42);
  const util::BufferPoolStats after = util::GetBufferPoolStats();

  // The second, identically-shaped iteration must reuse recycled tape nodes
  // and pooled buffers rather than allocating everything fresh.
  EXPECT_GT(after.node_reuses, before.node_reuses);
  EXPECT_GT(after.pool_hits, before.pool_hits);
  EXPECT_GT(after.node_acquires, before.node_acquires);
}

TEST(PoolTest, PoolToggleDoesNotChangeValues) {
  std::vector<float> pooled_first;
  std::vector<float> pooled_second;
  {
    ScopedPoolEnabled enabled(true);
    pooled_first = RunChain(7);
    pooled_second = RunChain(7);  // Runs on recycled nodes/buffers.
  }
  std::vector<float> unpooled;
  {
    ScopedPoolEnabled disabled(false);
    unpooled = RunChain(7);
  }
  ASSERT_EQ(pooled_first.size(), unpooled.size());
  for (size_t i = 0; i < pooled_first.size(); ++i) {
    EXPECT_EQ(pooled_first[i], pooled_second[i]) << "element " << i;
    EXPECT_EQ(pooled_first[i], unpooled[i]) << "element " << i;
  }
}

TEST(PoolTest, RecycledStorageNeverLeaksIntoFreshTensors) {
  ScopedPoolEnabled enabled(true);
  {
    Tensor junk = Tensor::Zeros({4, 4});
    for (float& v : junk.MutableData()) {
      v = 99.0f;
    }
    // `junk` dies here and its storage returns to the pool dirty.
  }
  Tensor fresh = Tensor::Zeros({4, 4});
  for (float v : fresh.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace tpgnn::tensor
