#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tpgnn {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedDifferentSequence) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(37);
  Rng child = parent.Fork();
  // Child stream should differ from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() != child.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(weights)]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(43);
  std::vector<double> weights = {2.5};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 0u);
  }
}

TEST(RngTest, SplitMix64IsDeterministic) {
  uint64_t s1 = 123;
  uint64_t s2 = 123;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace tpgnn
