#include "util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace tpgnn {
namespace {

TEST(EnvTest, MissingVariableReturnsDefault) {
  unsetenv("TPGNN_TEST_MISSING");
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_MISSING", 42), 42);
  EXPECT_EQ(GetEnvString("TPGNN_TEST_MISSING", "d"), "d");
}

TEST(EnvTest, ParsesInteger) {
  setenv("TPGNN_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_INT", 0), 123);
  unsetenv("TPGNN_TEST_INT");
}

TEST(EnvTest, ParsesNegativeInteger) {
  setenv("TPGNN_TEST_INT", "-5", 1);
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_INT", 0), -5);
  unsetenv("TPGNN_TEST_INT");
}

TEST(EnvTest, UnparsableFallsBackToDefault) {
  setenv("TPGNN_TEST_INT", "abc", 1);
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_INT", 7), 7);
  setenv("TPGNN_TEST_INT", "12x", 1);
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_INT", 7), 7);
  unsetenv("TPGNN_TEST_INT");
}

TEST(EnvTest, EmptyValueFallsBackToDefault) {
  setenv("TPGNN_TEST_INT", "", 1);
  EXPECT_EQ(GetEnvInt("TPGNN_TEST_INT", 9), 9);
  unsetenv("TPGNN_TEST_INT");
}

TEST(EnvTest, StringValue) {
  setenv("TPGNN_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("TPGNN_TEST_STR", "d"), "hello");
  unsetenv("TPGNN_TEST_STR");
}

}  // namespace
}  // namespace tpgnn
