#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tpgnn::failpoint {
namespace {

// Every test starts from a clean registry with a known seed.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearAll();
    SetSeed(1);
  }
  void TearDown() override {
    ClearAll();
    ResetCounters();
  }
};

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(Armed());
  Hit hit;
  EXPECT_FALSE(TPGNN_FAILPOINT("nothing.installed", &hit));
  EXPECT_EQ(TotalFires(), 0u);
}

TEST_F(FailpointTest, ArmedOnlyWhileInstalled) {
  EXPECT_FALSE(Armed());
  {
    ScopedFailpoint fp("some.site", 1.0, Kind::kReturnError);
    EXPECT_TRUE(Armed());
    EXPECT_EQ(ActiveCount(), 1u);
  }
  EXPECT_FALSE(Armed());
  EXPECT_EQ(ActiveCount(), 0u);
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFires) {
  ScopedFailpoint fp("always.site", 1.0, Kind::kReturnError, /*arg=*/42);
  for (uint64_t i = 0; i < 10; ++i) {
    Hit hit;
    ASSERT_TRUE(TPGNN_FAILPOINT("always.site", &hit));
    EXPECT_EQ(hit.kind, Kind::kReturnError);
    EXPECT_EQ(hit.arg, 42u);
    EXPECT_EQ(hit.fire_index, i);
  }
  EXPECT_EQ(fp.fires(), 10u);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  ScopedFailpoint fp("never.site", 0.0, Kind::kReturnError);
  Hit hit;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(TPGNN_FAILPOINT("never.site", &hit));
  }
  EXPECT_EQ(fp.fires(), 0u);
}

TEST_F(FailpointTest, MaxFiresCapsInjection) {
  ScopedFailpoint fp("capped.site", 1.0, Kind::kReturnError, /*arg=*/0,
                     /*max_fires=*/3);
  Hit hit;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (TPGNN_FAILPOINT("capped.site", &hit)) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fp.fires(), 3u);
}

// The schedule of a fractional-probability site is a pure function of
// (seed, name, evaluation index): same seed => identical fires.
TEST_F(FailpointTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    SetSeed(seed);
    ScopedFailpoint fp("sched.site", 0.3, Kind::kShortIo);
    std::vector<bool> fires;
    Hit hit;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(TPGNN_FAILPOINT("sched.site", &hit));
    }
    return fires;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // Astronomically unlikely to collide over 200 draws.
  // p = 0.3 over 200 draws: the count should be in a loose central band.
  const int count = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(count, 20);
  EXPECT_LT(count, 120);
}

TEST_F(FailpointTest, DistinctSitesHaveDistinctSchedules) {
  SetSeed(5);
  ScopedFailpoint fa("site.a", 0.5, Kind::kDelay);
  ScopedFailpoint fb("site.b", 0.5, Kind::kDelay);
  std::vector<bool> a, b;
  Hit hit;
  for (int i = 0; i < 64; ++i) {
    a.push_back(TPGNN_FAILPOINT("site.a", &hit));
    b.push_back(TPGNN_FAILPOINT("site.b", &hit));
  }
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, ScopedFailpointRestoresPrevious) {
  Install({"nested.site", 1.0, Kind::kDelay, /*arg=*/100, /*max_fires=*/0});
  {
    ScopedFailpoint inner("nested.site", 1.0, Kind::kReturnError);
    Hit hit;
    ASSERT_TRUE(TPGNN_FAILPOINT("nested.site", &hit));
    EXPECT_EQ(hit.kind, Kind::kReturnError);
  }
  // The outer registration is back.
  Hit hit;
  ASSERT_TRUE(TPGNN_FAILPOINT("nested.site", &hit));
  EXPECT_EQ(hit.kind, Kind::kDelay);
  EXPECT_EQ(hit.arg, 100u);
  EXPECT_TRUE(Remove("nested.site"));
}

TEST_F(FailpointTest, FireCountSurvivesRemoval) {
  {
    ScopedFailpoint fp("counted.site", 1.0, Kind::kReturnError);
    Hit hit;
    EXPECT_TRUE(TPGNN_FAILPOINT("counted.site", &hit));
    EXPECT_TRUE(TPGNN_FAILPOINT("counted.site", &hit));
  }
  EXPECT_EQ(FireCount("counted.site"), 2u);
  EXPECT_EQ(TotalFires(), 2u);
  ResetCounters();
  EXPECT_EQ(FireCount("counted.site"), 0u);
}

TEST_F(FailpointTest, SpecStringInstallsEntries) {
  ASSERT_TRUE(InstallFromSpecString(
                  "net.recv=0.25:short_io:8, shard.score=1:return_error,"
                  "server.dispatch=0.5:delay:1000:7")
                  .ok());
  EXPECT_EQ(ActiveCount(), 3u);
  Hit hit;
  ASSERT_TRUE(TPGNN_FAILPOINT("shard.score", &hit));
  EXPECT_EQ(hit.kind, Kind::kReturnError);
}

TEST_F(FailpointTest, SpecStringRejectsMalformedEntries) {
  EXPECT_FALSE(InstallFromSpecString("noequals").ok());
  EXPECT_FALSE(InstallFromSpecString("a=1").ok());  // Missing kind.
  EXPECT_FALSE(InstallFromSpecString("a=1:bogus_kind").ok());
  EXPECT_FALSE(InstallFromSpecString("a=2:delay").ok());  // p > 1.
  EXPECT_FALSE(InstallFromSpecString("a=x:delay").ok());  // Bad number.
  EXPECT_FALSE(InstallFromSpecString("a=1:delay:1:2:3").ok());  // Extra field.
  // A parse error is atomic: the valid leading entry is not installed.
  EXPECT_FALSE(InstallFromSpecString("good=1:delay,bad=1:nope").ok());
  EXPECT_EQ(ActiveCount(), 0u);
  // Empty entries (trailing commas, spaces) are tolerated.
  EXPECT_TRUE(InstallFromSpecString("a=1:delay, ,").ok());
  EXPECT_EQ(ActiveCount(), 1u);
}

TEST_F(FailpointTest, InjectedErrorNamesTheSite) {
  const Status s = InjectedError(StatusCode::kDataLoss, "net.recv");
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("injected fault"), std::string::npos);
  EXPECT_NE(s.message().find("net.recv"), std::string::npos);
}

TEST_F(FailpointTest, ShortIoBudgetClampsToSizeAndMin) {
  Hit hit;
  hit.kind = Kind::kShortIo;
  hit.arg = 4;
  EXPECT_EQ(ShortIoBudget(hit, 100), 4u);
  EXPECT_EQ(ShortIoBudget(hit, 2), 2u);
  hit.arg = 0;  // Simulated would-block ...
  EXPECT_EQ(ShortIoBudget(hit, 100), 0u);
  // ... unless the caller is on a blocking path and demands progress.
  EXPECT_EQ(ShortIoBudget(hit, 100, /*min_bytes=*/1), 1u);
  EXPECT_EQ(ShortIoBudget(hit, 0, /*min_bytes=*/1), 0u);  // Nothing to give.
}

TEST_F(FailpointTest, CorruptByteFlipsExactlyOneBit) {
  Hit hit;
  hit.site_seed = 123;
  std::vector<uint8_t> data(64, 0xAB);
  const std::vector<uint8_t> orig = data;
  CorruptByte(hit, data.data(), data.size());
  int changed_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    changed_bits += __builtin_popcount(data[i] ^ orig[i]);
  }
  EXPECT_EQ(changed_bits, 1);
  // Deterministic: the same hit flips the same bit.
  std::vector<uint8_t> again = orig;
  CorruptByte(hit, again.data(), again.size());
  EXPECT_EQ(data, again);
  // A different fire index flips a different position (with 64*8 choices a
  // collision over 4 indices would be suspicious but possible; just check
  // at least one of them differs from fire 0).
  bool any_different = false;
  for (uint64_t f = 1; f <= 4 && !any_different; ++f) {
    std::vector<uint8_t> other = orig;
    Hit h2 = hit;
    h2.fire_index = f;
    CorruptByte(h2, other.data(), other.size());
    any_different = other != data;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(FailpointTest, CorruptFrameHeaderOnlyTouchesDetectedBytes) {
  // Offsets 5 (type) and 8..11 (length) must never be touched: exercise
  // many fire indices and check the flipped byte is always in the
  // always-validated header region.
  for (uint64_t f = 0; f < 100; ++f) {
    Hit hit;
    hit.site_seed = 99;
    hit.fire_index = f;
    std::vector<uint8_t> frame(32, 0);
    CorruptFrameHeader(hit, frame.data(), frame.size());
    int flipped = -1;
    for (size_t i = 0; i < frame.size(); ++i) {
      if (frame[i] != 0) {
        ASSERT_EQ(flipped, -1) << "more than one byte flipped";
        flipped = static_cast<int>(i);
      }
    }
    ASSERT_NE(flipped, -1);
    EXPECT_TRUE(flipped <= 4 || flipped == 6 || flipped == 7)
        << "flipped byte " << flipped << " outside magic/version/reserved";
  }
  // Too small to hold a header: untouched.
  std::vector<uint8_t> tiny(11, 0);
  Hit hit;
  CorruptFrameHeader(hit, tiny.data(), tiny.size());
  EXPECT_EQ(tiny, std::vector<uint8_t>(11, 0));
}

TEST_F(FailpointTest, ApplyDelayIgnoresNonDelayHits) {
  Hit hit;
  hit.kind = Kind::kReturnError;
  hit.arg = 60'000'000;  // Would sleep a minute if the kind were honored.
  ApplyDelay(hit);       // Returns immediately.
  SUCCEED();
}

}  // namespace
}  // namespace tpgnn::failpoint
