// Contracts of the pooled buffer allocator (util/buffer_pool.h):
//  * AcquireBuffer(n) always returns a zero-filled vector of exactly n
//    floats, whether the buffer is fresh or recycled.
//  * Free lists are strictly thread-local, so concurrent acquire/release
//    cycles from a ThreadPool never race.
//  * The global stats counters are monotonic.
//  * SetBufferPoolEnabled(false) turns the facade into plain allocation.

#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/thread_pool.h"

namespace tpgnn::util {
namespace {

// Restores the pool's enabled flag on scope exit so tests cannot leak a
// disabled pool into the rest of the binary.
class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled) : previous_(BufferPoolEnabled()) {
    SetBufferPoolEnabled(enabled);
  }
  ~ScopedPoolEnabled() { SetBufferPoolEnabled(previous_); }

 private:
  bool previous_;
};

TEST(BufferPoolTest, AcquireReturnsZeroFilledBufferOfRequestedSize) {
  ScopedPoolEnabled enabled(true);
  std::vector<float> buf = AcquireBuffer(37);
  ASSERT_EQ(buf.size(), 37u);
  for (float v : buf) {
    EXPECT_EQ(v, 0.0f);
  }
  ReleaseBuffer(std::move(buf));
}

TEST(BufferPoolTest, RecycledBuffersComeBackCleared) {
  ScopedPoolEnabled enabled(true);
  // Dirty a buffer, park it in the pool, and draw from the same size class:
  // the hit must be indistinguishable from a fresh zero-filled allocation.
  std::vector<float> dirty = AcquireBuffer(64);
  for (float& v : dirty) {
    v = -123.5f;
  }
  ReleaseBuffer(std::move(dirty));

  const BufferPoolStats before = GetBufferPoolStats();
  std::vector<float> reused = AcquireBuffer(64);
  const BufferPoolStats after = GetBufferPoolStats();

  EXPECT_GT(after.pool_hits, before.pool_hits);
  ASSERT_EQ(reused.size(), 64u);
  for (float v : reused) {
    EXPECT_EQ(v, 0.0f);
  }
  ReleaseBuffer(std::move(reused));
}

TEST(BufferPoolTest, SmallerRequestReusesLargerCapacityWithoutShrinking) {
  ScopedPoolEnabled enabled(true);
  // A released capacity-100 buffer files under the bucket its capacity
  // fully covers, so a later size-70 request (same bucket) can reuse it.
  std::vector<float> big = AcquireBuffer(100);
  ReleaseBuffer(std::move(big));

  const BufferPoolStats before = GetBufferPoolStats();
  std::vector<float> small = AcquireBuffer(70);
  const BufferPoolStats after = GetBufferPoolStats();

  EXPECT_GT(after.pool_hits, before.pool_hits);
  EXPECT_EQ(small.size(), 70u);
  EXPECT_GE(small.capacity(), 70u);
  ReleaseBuffer(std::move(small));
}

TEST(BufferPoolTest, StatsAreMonotonic) {
  ScopedPoolEnabled enabled(true);
  BufferPoolStats last = GetBufferPoolStats();
  for (int round = 0; round < 8; ++round) {
    std::vector<float> a = AcquireBuffer(16);
    std::vector<float> b = AcquireBuffer(1024);
    ReleaseBuffer(std::move(a));
    ReleaseBuffer(std::move(b));

    const BufferPoolStats now = GetBufferPoolStats();
    EXPECT_GE(now.acquires, last.acquires + 2);
    EXPECT_GE(now.pool_hits, last.pool_hits);
    EXPECT_GE(now.pool_misses, last.pool_misses);
    EXPECT_GE(now.releases, last.releases + 2);
    EXPECT_GE(now.bytes_peak, last.bytes_peak);
    EXPECT_GE(now.bytes_live, 0u);
    last = now;
  }
}

TEST(BufferPoolTest, DisabledPoolNeverCachesOrHits) {
  ScopedPoolEnabled disabled(false);
  // Park attempt: with the pool off, released buffers are freed, so an
  // immediate same-size acquire cannot hit the cache.
  std::vector<float> buf = AcquireBuffer(256);
  ReleaseBuffer(std::move(buf));

  const BufferPoolStats before = GetBufferPoolStats();
  std::vector<float> again = AcquireBuffer(256);
  const BufferPoolStats after = GetBufferPoolStats();

  EXPECT_EQ(after.pool_hits, before.pool_hits);
  ASSERT_EQ(again.size(), 256u);
  for (float v : again) {
    EXPECT_EQ(v, 0.0f);
  }
  ReleaseBuffer(std::move(again));
}

TEST(BufferPoolTest, ThreadLocalPoolsUnderParallelFor) {
  ScopedPoolEnabled enabled(true);
  ThreadPool pool(4);
  const BufferPoolStats before = GetBufferPoolStats();

  constexpr int64_t kIters = 64;
  constexpr int kCyclesPerIter = 8;
  std::atomic<int64_t> bad_buffers{0};
  pool.ParallelFor(0, kIters, /*grain=*/1, [&](int64_t i) {
    for (int c = 0; c < kCyclesPerIter; ++c) {
      const std::size_t n = 8u << (static_cast<std::size_t>(i + c) % 5);
      std::vector<float> buf = AcquireBuffer(n);
      bool ok = buf.size() == n;
      for (float v : buf) {
        ok = ok && v == 0.0f;
      }
      if (!ok) {
        bad_buffers.fetch_add(1, std::memory_order_relaxed);
      }
      // Dirty before returning so a broken pool would hand the garbage to
      // another acquire.
      for (float& v : buf) {
        v = static_cast<float>(i + 1);
      }
      ReleaseBuffer(std::move(buf));
    }
  });

  EXPECT_EQ(bad_buffers.load(), 0);
  const BufferPoolStats after = GetBufferPoolStats();
  EXPECT_GE(after.acquires, before.acquires + kIters * kCyclesPerIter);
  EXPECT_GE(after.releases, before.releases + kIters * kCyclesPerIter);
}

TEST(BufferPoolTest, SteadyStateCyclesAreAllHits) {
  ScopedPoolEnabled enabled(true);
  // Warm the bucket, then measure: a ping-pong acquire/release loop on one
  // thread must be served entirely from the free list.
  ReleaseBuffer(AcquireBuffer(512));
  const BufferPoolStats before = GetBufferPoolStats();
  for (int i = 0; i < 32; ++i) {
    ReleaseBuffer(AcquireBuffer(512));
  }
  const BufferPoolStats after = GetBufferPoolStats();
  EXPECT_EQ(after.pool_hits - before.pool_hits, 32u);
  EXPECT_EQ(after.pool_misses, before.pool_misses);
}

}  // namespace
}  // namespace tpgnn::util
