#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tpgnn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound("missing");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing");
}

TEST(StatusTest, FailedPrecondition) {
  Status s = Status::FailedPrecondition("not trained");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(StatusTest, Internal) {
  Status s = Status::Internal("bug");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(StatusTest, Overloaded) {
  Status s = Status::Overloaded("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  EXPECT_EQ(s.ToString(), "OVERLOADED: queue full");
}

TEST(StatusTest, DeadlineExceeded) {
  Status s = Status::DeadlineExceeded("io timeout after 50 ms");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DEADLINE_EXCEEDED: io timeout after 50 ms");
}

TEST(StatusTest, DataLoss) {
  Status s = Status::DataLoss("bad frame magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: bad frame magic");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::InvalidArgument("x");
  EXPECT_EQ(os.str(), "INVALID_ARGUMENT: x");
}

}  // namespace
}  // namespace tpgnn
