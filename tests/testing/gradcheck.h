#ifndef TPGNN_TESTS_TESTING_GRADCHECK_H_
#define TPGNN_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

// Numerical gradient checking for autograd ops: compares analytic gradients
// produced by Tensor::Backward() against central finite differences.

namespace tpgnn::testing {

struct GradCheckResult {
  bool ok = true;
  std::string message;
};

// `fn` maps the given parameters to a scalar tensor and must be
// deterministic. Every parameter must be a leaf with requires_grad set.
inline GradCheckResult GradCheck(
    const std::function<tensor::Tensor(const std::vector<tensor::Tensor>&)>&
        fn,
    std::vector<tensor::Tensor> params, float eps = 1e-3f, float tol = 2e-2f) {
  using tensor::Tensor;
  for (Tensor& p : params) {
    p.ZeroGrad();
  }
  Tensor loss = fn(params);
  if (loss.numel() != 1) {
    return {false, "loss is not scalar"};
  }
  loss.Backward();

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = params[pi];
    const std::vector<float> analytic = p.grad();
    for (int64_t i = 0; i < p.numel(); ++i) {
      const size_t s = static_cast<size_t>(i);
      const float original = p.MutableData()[s];
      p.MutableData()[s] = original + eps;
      const float plus = fn(params).item();
      p.MutableData()[s] = original - eps;
      const float minus = fn(params).item();
      p.MutableData()[s] = original;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float diff = std::abs(numeric - analytic[s]);
      const float scale = std::max(1.0f, std::max(std::abs(numeric),
                                                  std::abs(analytic[s])));
      if (diff / scale > tol) {
        return {false, "param " + std::to_string(pi) + " elem " +
                           std::to_string(i) + ": analytic " +
                           std::to_string(analytic[s]) + " vs numeric " +
                           std::to_string(numeric)};
      }
    }
  }
  return {true, ""};
}

}  // namespace tpgnn::testing

#endif  // TPGNN_TESTS_TESTING_GRADCHECK_H_
