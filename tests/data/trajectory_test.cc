#include "data/trajectory_generator.h"

#include <set>

#include <gtest/gtest.h>

namespace tpgnn::data {
namespace {

TrajectoryGenerator::Options GowallaOptions() {
  TrajectoryGenerator::Options options;
  options.avg_nodes = 72;
  options.avg_edges = 117;
  return options;
}

TEST(TrajectoryTest, SizesNearTargets) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(1);
  double nodes = 0.0;
  double edges = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    auto g = gen.GeneratePositive(rng);
    nodes += static_cast<double>(g.num_nodes());
    edges += static_cast<double>(g.num_edges());
  }
  EXPECT_NEAR(nodes / trials, 72.0, 8.0);
  EXPECT_NEAR(edges / trials, 117.0, 12.0);
}

TEST(TrajectoryTest, EveryPoiIsVisited) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = gen.GeneratePositive(rng);
    std::set<int64_t> touched;
    for (const auto& e : g.edges()) {
      touched.insert(e.src);
      touched.insert(e.dst);
    }
    EXPECT_EQ(static_cast<int64_t>(touched.size()), g.num_nodes());
  }
}

TEST(TrajectoryTest, WalkIsConnectedSequence) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(3);
  auto g = gen.GeneratePositive(rng);
  auto edges = g.ChronologicalEdges();
  for (size_t i = 1; i < edges.size(); ++i) {
    // Consecutive movements chain: destination of step i-1 is source of i.
    EXPECT_EQ(edges[i].src, edges[i - 1].dst);
  }
}

TEST(TrajectoryTest, TimestampsStrictlyIncrease) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(4);
  auto g = gen.GeneratePositive(rng);
  auto edges = g.ChronologicalEdges();
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i].time, edges[i - 1].time);
  }
}

TEST(TrajectoryTest, FeaturesWithinGeographicBounds) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(5);
  auto g = gen.GeneratePositive(rng);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const auto& f = g.node_feature(v);
    EXPECT_GE(f[0], -1.5f);  // lon / 180 with noise.
    EXPECT_LE(f[0], 1.5f);
    EXPECT_GE(f[1], -1.5f);
    EXPECT_LE(f[1], 1.5f);
    EXPECT_GE(f[2], 0.0f);  // country / num_countries.
    EXPECT_LT(f[2], 1.0f);
  }
}

TEST(TrajectoryTest, RevisitsAreCommon) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(6);
  auto g = gen.GeneratePositive(rng);
  std::set<std::pair<int64_t, int64_t>> distinct;
  for (const auto& e : g.edges()) {
    distinct.insert({e.src, e.dst});
  }
  // Many movements repeat (favourite POIs): distinct pairs < total edges.
  EXPECT_LT(static_cast<int64_t>(distinct.size()), g.num_edges());
}

TEST(TrajectoryTest, TemporalNegativeKeepsChainButChangesOrder) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Rng pos_rng = rng;  // Same stream: negative corrupts this positive.
    auto pos = gen.GeneratePositive(pos_rng);
    auto neg = gen.GenerateNegative(/*temporal_fraction=*/1.0, rng);
    // The loop swap keeps every local movement valid: no single edge is
    // anomalous even in time order (unlike a full shuffle).
    auto edges = neg.ChronologicalEdges();
    for (size_t i = 1; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i].src, edges[i - 1].dst) << "trial " << trial;
    }
    // But the establishment order differs from the positive twin.
    auto pos_edges = pos.ChronologicalEdges();
    ASSERT_EQ(pos_edges.size(), edges.size());
    bool order_changed = false;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!(pos_edges[i] == edges[i])) order_changed = true;
    }
    EXPECT_TRUE(order_changed) << "trial " << trial;
  }
}

TEST(TrajectoryTest, StructuralNegativeBreaksChain) {
  TrajectoryGenerator gen(GowallaOptions());
  Rng rng(8);
  auto g = gen.GenerateNegative(/*temporal_fraction=*/0.0, rng);
  // Rewired edges break the src==prev.dst chain at insertion order level.
  const auto& edges = g.edges();
  bool chain_broken = false;
  for (size_t i = 1; i < edges.size(); ++i) {
    if (edges[i].src != edges[i - 1].dst) chain_broken = true;
  }
  EXPECT_TRUE(chain_broken);
}

TEST(TrajectoryTest, MinimumSizeGraph) {
  TrajectoryGenerator::Options options;
  options.avg_nodes = 2;
  options.avg_edges = 3;
  options.size_jitter = 0.0;
  TrajectoryGenerator gen(options);
  Rng rng(9);
  auto g = gen.GeneratePositive(rng);
  EXPECT_GE(g.num_nodes(), 2);
  EXPECT_GE(g.num_edges(), 2);
}

}  // namespace
}  // namespace tpgnn::data
