#include "data/negative_sampling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace tpgnn::data {
namespace {

using graph::TemporalEdge;
using graph::TemporalGraph;

TemporalGraph MakeChain(int64_t n) {
  TemporalGraph g(n, 3);
  for (int64_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(i, i + 1, static_cast<double>(i + 1));
  }
  return g;
}

TEST(RewireNegativeTest, KeepsCounts) {
  Rng rng(1);
  TemporalGraph pos = MakeChain(10);
  TemporalGraph neg = RewireNegative(pos, 0.3, rng);
  EXPECT_EQ(neg.num_nodes(), pos.num_nodes());
  EXPECT_EQ(neg.num_edges(), pos.num_edges());
}

TEST(RewireNegativeTest, IntroducesNonNormalEdge) {
  Rng rng(2);
  TemporalGraph pos = MakeChain(10);
  std::set<std::pair<int64_t, int64_t>> normal;
  for (const TemporalEdge& e : pos.edges()) normal.insert({e.src, e.dst});
  TemporalGraph neg = RewireNegative(pos, 0.3, rng);
  int new_edges = 0;
  for (const TemporalEdge& e : neg.edges()) {
    if (normal.count({e.src, e.dst}) == 0) ++new_edges;
  }
  EXPECT_GT(new_edges, 0);
}

TEST(RewireNegativeTest, RewiredEdgesNeverDuplicateNormalPairs) {
  Rng rng(3);
  TemporalGraph pos = MakeChain(12);
  std::set<std::pair<int64_t, int64_t>> normal;
  for (const TemporalEdge& e : pos.edges()) normal.insert({e.src, e.dst});
  for (int trial = 0; trial < 20; ++trial) {
    TemporalGraph neg = RewireNegative(pos, 0.25, rng);
    for (size_t i = 0; i < neg.edges().size(); ++i) {
      const TemporalEdge& e = neg.edges()[i];
      const TemporalEdge& orig = pos.edges()[i];
      if (e.dst != orig.dst) {
        // Rewired: must not coincide with a normal pair.
        EXPECT_EQ(normal.count({e.src, e.dst}), 0u);
      }
    }
  }
}

TEST(RewireNegativeTest, PreservesTimestamps) {
  Rng rng(4);
  TemporalGraph pos = MakeChain(8);
  TemporalGraph neg = RewireNegative(pos, 0.5, rng);
  for (size_t i = 0; i < neg.edges().size(); ++i) {
    EXPECT_EQ(neg.edges()[i].time, pos.edges()[i].time);
  }
}

TEST(RewireNegativeTest, TinyGraphUnchanged) {
  Rng rng(5);
  TemporalGraph pos(1, 3);
  TemporalGraph neg = RewireNegative(pos, 0.5, rng);
  EXPECT_EQ(neg.num_edges(), 0);
}

TEST(ShuffleNegativeTest, PreservesTopologyAndTimestampMultiset) {
  Rng rng(6);
  TemporalGraph pos = MakeChain(10);
  TemporalGraph neg = ShuffleNegative(pos, rng);
  ASSERT_EQ(neg.num_edges(), pos.num_edges());
  std::multiset<double> pos_times;
  std::multiset<double> neg_times;
  for (size_t i = 0; i < pos.edges().size(); ++i) {
    EXPECT_EQ(neg.edges()[i].src, pos.edges()[i].src);
    EXPECT_EQ(neg.edges()[i].dst, pos.edges()[i].dst);
    pos_times.insert(pos.edges()[i].time);
    neg_times.insert(neg.edges()[i].time);
  }
  EXPECT_EQ(pos_times, neg_times);
}

TEST(ShuffleNegativeTest, ChangesChronologicalOrder) {
  Rng rng(7);
  TemporalGraph pos = MakeChain(20);
  TemporalGraph neg = ShuffleNegative(pos, rng);
  auto pos_order = pos.ChronologicalEdges();
  auto neg_order = neg.ChronologicalEdges();
  bool differs = false;
  for (size_t i = 0; i < pos_order.size(); ++i) {
    if (!(pos_order[i] == neg_order[i])) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BlockSwapNegativeTest, PreservesTopologyAndTimestampMultiset) {
  Rng rng(10);
  TemporalGraph pos = MakeChain(30);
  TemporalGraph neg = BlockSwapNegative(pos, 0.2, rng);
  ASSERT_EQ(neg.num_edges(), pos.num_edges());
  std::multiset<std::pair<int64_t, int64_t>> pos_pairs;
  std::multiset<std::pair<int64_t, int64_t>> neg_pairs;
  std::multiset<double> pos_times;
  std::multiset<double> neg_times;
  for (const TemporalEdge& e : pos.edges()) {
    pos_pairs.insert({e.src, e.dst});
    pos_times.insert(e.time);
  }
  for (const TemporalEdge& e : neg.edges()) {
    neg_pairs.insert({e.src, e.dst});
    neg_times.insert(e.time);
  }
  EXPECT_EQ(pos_pairs, neg_pairs);
  EXPECT_EQ(pos_times, neg_times);
}

TEST(BlockSwapNegativeTest, SwapsExactlyTwoBlocks) {
  Rng rng(11);
  TemporalGraph pos = MakeChain(40);  // 39 edges, distinct times.
  TemporalGraph neg = BlockSwapNegative(pos, 0.2, rng);
  auto pos_order = pos.ChronologicalEdges();
  auto neg_order = neg.ChronologicalEdges();
  // Some positions changed (the two blocks) and some are fixed.
  int changed = 0;
  for (size_t i = 0; i < pos_order.size(); ++i) {
    if (!(pos_order[i].src == neg_order[i].src &&
          pos_order[i].dst == neg_order[i].dst)) {
      ++changed;
    }
  }
  const int block = static_cast<int>(0.2 * 39);
  EXPECT_GE(changed, 2);           // At least the two blocks moved.
  EXPECT_LE(changed, 2 * block + 2);
  EXPECT_LT(changed, static_cast<int>(pos_order.size()));
}

TEST(BlockSwapNegativeTest, WithinBlockOrderPreserved) {
  // The relative order of any two edges from the same original block is
  // preserved; we check the whole sequence is a block-reordering by
  // verifying each original edge appears exactly once.
  Rng rng(12);
  TemporalGraph pos = MakeChain(25);
  TemporalGraph neg = BlockSwapNegative(pos, 0.2, rng);
  auto pos_order = pos.ChronologicalEdges();
  auto neg_order = neg.ChronologicalEdges();
  std::multiset<std::pair<int64_t, int64_t>> pos_set;
  std::multiset<std::pair<int64_t, int64_t>> neg_set;
  for (const auto& e : pos_order) pos_set.insert({e.src, e.dst});
  for (const auto& e : neg_order) neg_set.insert({e.src, e.dst});
  EXPECT_EQ(pos_set, neg_set);
}

TEST(BlockSwapNegativeTest, TinyGraphFallsBackToShuffle) {
  Rng rng(13);
  TemporalGraph pos = MakeChain(3);  // 2 edges only.
  TemporalGraph neg = BlockSwapNegative(pos, 0.4, rng);
  EXPECT_EQ(neg.num_edges(), pos.num_edges());
}

TEST(BlockSwapNegativeTest, PreservesNodeFeatures) {
  Rng rng(14);
  TemporalGraph pos = MakeChain(20);
  pos.SetNodeFeature(5, {1.0f, 2.0f, 3.0f});
  TemporalGraph neg = BlockSwapNegative(pos, 0.2, rng);
  EXPECT_EQ(neg.node_feature(5), (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

// A walk 0 -> a -> 0 -> b -> 0 ... with three closed home-anchored loops.
TemporalGraph MakeLoopWalk() {
  TemporalGraph g(7, 3);
  int64_t current = 0;
  double t = 0.0;
  for (int64_t loop = 0; loop < 3; ++loop) {
    const int64_t a = 1 + loop * 2;
    const int64_t b = 2 + loop * 2;
    for (int64_t next : {a, b, int64_t{0}}) {
      t += 1.0;
      g.AddEdge(current, next, t);
      current = next;
    }
  }
  return g;
}

TEST(LoopSwapNegativeTest, PreservesWalkChainProperty) {
  Rng rng(20);
  TemporalGraph pos = MakeLoopWalk();
  for (int trial = 0; trial < 10; ++trial) {
    TemporalGraph neg = LoopSwapNegative(pos, rng);
    auto edges = neg.ChronologicalEdges();
    ASSERT_EQ(edges.size(), pos.edges().size());
    for (size_t i = 1; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i].src, edges[i - 1].dst);
    }
  }
}

TEST(LoopSwapNegativeTest, PreservesTopologyAndTimestamps) {
  Rng rng(21);
  TemporalGraph pos = MakeLoopWalk();
  TemporalGraph neg = LoopSwapNegative(pos, rng);
  std::multiset<std::pair<int64_t, int64_t>> pos_pairs;
  std::multiset<std::pair<int64_t, int64_t>> neg_pairs;
  std::multiset<double> pos_times;
  std::multiset<double> neg_times;
  for (const TemporalEdge& e : pos.edges()) {
    pos_pairs.insert({e.src, e.dst});
    pos_times.insert(e.time);
  }
  for (const TemporalEdge& e : neg.edges()) {
    neg_pairs.insert({e.src, e.dst});
    neg_times.insert(e.time);
  }
  EXPECT_EQ(pos_pairs, neg_pairs);
  EXPECT_EQ(pos_times, neg_times);
}

TEST(LoopSwapNegativeTest, PermutesLoopOrder) {
  Rng rng(22);
  TemporalGraph pos = MakeLoopWalk();
  bool changed = false;
  for (int trial = 0; trial < 10 && !changed; ++trial) {
    TemporalGraph neg = LoopSwapNegative(pos, rng);
    auto pos_order = pos.ChronologicalEdges();
    auto neg_order = neg.ChronologicalEdges();
    for (size_t i = 0; i < pos_order.size(); ++i) {
      if (pos_order[i].dst != neg_order[i].dst) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(LoopSwapNegativeTest, FewLoopsFallsBackGracefully) {
  // Single loop: 0 -> 1 -> 2 -> 0 three times would be one cut... build a
  // walk with a single home departure so the loop permutation cannot apply.
  Rng rng(23);
  TemporalGraph pos(4, 3);
  pos.AddEdge(0, 1, 1.0);
  pos.AddEdge(1, 2, 2.0);
  pos.AddEdge(2, 3, 3.0);
  pos.AddEdge(3, 1, 4.0);
  pos.AddEdge(1, 2, 5.0);
  pos.AddEdge(2, 3, 6.0);
  TemporalGraph neg = LoopSwapNegative(pos, rng);
  EXPECT_EQ(neg.num_edges(), pos.num_edges());  // Fallback block swap.
}

TEST(ShuffleNegativeTest, SingleEdgeGraphUnchanged) {
  Rng rng(8);
  TemporalGraph pos(2, 3);
  pos.AddEdge(0, 1, 1.0);
  TemporalGraph neg = ShuffleNegative(pos, rng);
  EXPECT_EQ(neg.edges()[0].time, 1.0);
}

}  // namespace
}  // namespace tpgnn::data
