#include "data/datasets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace tpgnn::data {
namespace {

TEST(DatasetSpecTest, AllFivePresets) {
  auto specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "Forum-java");
  EXPECT_EQ(specs[1].name, "HDFS");
  EXPECT_EQ(specs[2].name, "Gowalla");
  EXPECT_EQ(specs[3].name, "FourSquare");
  EXPECT_EQ(specs[4].name, "Brightkite");
}

TEST(DatasetSpecTest, TableIStatisticsEncoded) {
  DatasetSpec forum = ForumJavaSpec();
  EXPECT_EQ(forum.avg_nodes, 27);
  EXPECT_EQ(forum.avg_edges, 30);
  EXPECT_NEAR(forum.negative_ratio, 0.325, 1e-9);
  DatasetSpec bk = BrightkiteSpec();
  EXPECT_EQ(bk.avg_nodes, 46);
  EXPECT_EQ(bk.avg_edges, 188);
  EXPECT_EQ(bk.flavor, DatasetFlavor::kTrajectory);
}

TEST(MakeDatasetTest, CountAndLabels) {
  auto ds = MakeDataset(HdfsSpec(), 200, /*seed=*/1);
  EXPECT_EQ(ds.size(), 200u);
  graph::DatasetStats stats = graph::ComputeDatasetStats(ds);
  EXPECT_NEAR(stats.negative_ratio, 0.298, 0.08);
  EXPECT_EQ(stats.feature_dim, 3);
}

TEST(MakeDatasetTest, StatisticsMatchTableIShape) {
  auto ds = MakeDataset(ForumJavaSpec(), 300, /*seed=*/2);
  graph::DatasetStats stats = graph::ComputeDatasetStats(ds);
  EXPECT_NEAR(stats.avg_nodes, 27.0, 4.0);
  EXPECT_NEAR(stats.avg_edges, 30.0, 6.0);
}

TEST(MakeDatasetTest, TrajectoryFlavor) {
  auto ds = MakeDataset(BrightkiteSpec(), 50, /*seed=*/3);
  graph::DatasetStats stats = graph::ComputeDatasetStats(ds);
  EXPECT_NEAR(stats.avg_nodes, 46.0, 8.0);
  EXPECT_NEAR(stats.avg_edges, 188.0, 25.0);
}

TEST(MakeDatasetTest, DefaultCountFromSpec) {
  auto ds = MakeDataset(BrightkiteSpec(), 0, /*seed=*/4);
  EXPECT_EQ(static_cast<int64_t>(ds.size()),
            BrightkiteSpec().default_graph_count);
}

TEST(MakeDatasetTest, DeterministicInSeed) {
  auto a = MakeDataset(HdfsSpec(), 20, 7);
  auto b = MakeDataset(HdfsSpec(), 20, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].graph.num_edges(), b[i].graph.num_edges());
  }
  auto c = MakeDataset(HdfsSpec(), 20, 8);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != c[i].label ||
        a[i].graph.num_edges() != c[i].graph.num_edges()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FilterMinEdgesTest, DropsSmallGraphs) {
  graph::GraphDataset ds;
  graph::TemporalGraph small(2, 3);
  small.AddEdge(0, 1, 1.0);
  ds.push_back({small, 1});
  graph::TemporalGraph big(3, 3);
  big.AddEdge(0, 1, 1.0);
  big.AddEdge(1, 2, 2.0);
  big.AddEdge(2, 0, 3.0);
  ds.push_back({big, 0});
  auto filtered = FilterMinEdges(ds, 3);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].label, 0);
}

TEST(SplitDatasetTest, ThirtySeventySplit) {
  auto ds = MakeDataset(HdfsSpec(), 100, 5);
  auto split = SplitDataset(ds, 0.3);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.test.size(), 70u);
}

TEST(SplitDatasetTest, DegenerateFractions) {
  auto ds = MakeDataset(HdfsSpec(), 10, 6);
  EXPECT_EQ(SplitDataset(ds, 0.0).train.size(), 0u);
  EXPECT_EQ(SplitDataset(ds, 1.0).test.size(), 0u);
}

TEST(MakeDatasetTest, BothSplitsContainBothClasses) {
  auto ds = MakeDataset(GowallaSpec(), 120, 9);
  auto split = SplitDataset(ds, 0.3);
  auto has_both = [](const graph::GraphDataset& part) {
    bool pos = false;
    bool neg = false;
    for (const auto& g : part) {
      (g.label == 1 ? pos : neg) = true;
    }
    return pos && neg;
  };
  EXPECT_TRUE(has_both(split.train));
  EXPECT_TRUE(has_both(split.test));
}

}  // namespace
}  // namespace tpgnn::data
