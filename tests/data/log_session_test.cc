#include "data/log_session_generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include <gtest/gtest.h>

namespace tpgnn::data {
namespace {

LogSessionGenerator::Options ForumOptions() {
  LogSessionGenerator::Options options;
  options.avg_nodes = 27;
  options.avg_edges = 30;
  options.num_event_types = 81;
  return options;
}

TEST(LogSessionTest, PositiveSizesNearTargets) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(1);
  double nodes = 0.0;
  double edges = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto g = gen.GeneratePositive(rng);
    nodes += static_cast<double>(g.num_nodes());
    edges += static_cast<double>(g.num_edges());
  }
  EXPECT_NEAR(nodes / trials, 27.0, 4.0);
  EXPECT_NEAR(edges / trials, 30.0, 5.0);
}

TEST(LogSessionTest, HdfsShapeHasManyRepeats) {
  LogSessionGenerator::Options options;
  options.avg_nodes = 12;
  options.avg_edges = 31;
  options.num_event_types = 64;
  LogSessionGenerator gen(options);
  Rng rng(2);
  double nodes = 0.0;
  double edges = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto g = gen.GeneratePositive(rng);
    nodes += static_cast<double>(g.num_nodes());
    edges += static_cast<double>(g.num_edges());
  }
  EXPECT_NEAR(nodes / trials, 12.0, 3.0);
  EXPECT_NEAR(edges / trials, 31.0, 6.0);
  EXPECT_GT(edges / nodes, 1.8);  // Edge/node ratio from repeated loops.
}

TEST(LogSessionTest, TimestampsStrictlyIncreaseInPositives) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(3);
  auto g = gen.GeneratePositive(rng);
  auto edges = g.ChronologicalEdges();
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i].time, edges[i - 1].time);
  }
}

TEST(LogSessionTest, PositiveHasNoExceptionFlags) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(4);
  auto g = gen.GeneratePositive(rng);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.node_feature(v)[2], 0.0f);
  }
}

TEST(LogSessionTest, TimestampShuffleKeepsTopology) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(5);
  auto g = gen.GenerateNegative(LogFault::kOrderAnomaly, rng);
  EXPECT_GT(g.num_edges(), 0);
  // Edges are consecutive-event pairs in some normal session: each node has
  // positive degree.
  std::set<int64_t> touched;
  for (const auto& e : g.edges()) {
    touched.insert(e.src);
    touched.insert(e.dst);
  }
  EXPECT_EQ(static_cast<int64_t>(touched.size()), g.num_nodes());
}

TEST(LogSessionTest, CrashLoopRepeatsAnEdgePathologically) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(6);
  auto max_multiplicity = [](const graph::TemporalGraph& g) {
    std::map<std::pair<int64_t, int64_t>, int> counts;
    int best = 0;
    for (const auto& e : g.edges()) {
      best = std::max(best, ++counts[{e.src, e.dst}]);
    }
    return best;
  };
  // A crash loop replays the same step pair 3-6 times, so some edge pair
  // repeats far more often than in any normal session.
  for (int i = 0; i < 20; ++i) {
    auto neg = gen.GenerateNegative(LogFault::kCrashLoop, rng);
    EXPECT_GE(max_multiplicity(neg), 4);
  }
  double pos_max = 0.0;
  for (int i = 0; i < 20; ++i) {
    pos_max += max_multiplicity(gen.GeneratePositive(rng));
  }
  EXPECT_LT(pos_max / 20.0, 4.0);
}

TEST(LogSessionTest, ExceptionBurstSetsExceptionFeature) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(7);
  auto g = gen.GenerateNegative(LogFault::kExceptionBurst, rng);
  bool has_exception = false;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (g.node_feature(v)[2] == 1.0f) has_exception = true;
  }
  EXPECT_TRUE(has_exception);
}

TEST(LogSessionTest, MissingStepShrinksDistinctEvents) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng(8);
  double pos_nodes = 0.0;
  double neg_nodes = 0.0;
  for (int i = 0; i < 100; ++i) {
    pos_nodes += static_cast<double>(gen.GeneratePositive(rng).num_nodes());
    neg_nodes += static_cast<double>(
        gen.GenerateNegative(LogFault::kMissingStep, rng).num_nodes());
  }
  EXPECT_LT(neg_nodes / 100.0, pos_nodes / 100.0);
}

TEST(LogSessionTest, SampleFaultRespectsTemporalFraction) {
  Rng rng(9);
  int temporal = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (LogSessionGenerator::SampleFault(0.5, rng) ==
        LogFault::kOrderAnomaly) {
      ++temporal;
    }
  }
  EXPECT_NEAR(static_cast<double>(temporal) / n, 0.5, 0.03);
}

TEST(LogSessionTest, DeterministicGivenSameRngSeed) {
  LogSessionGenerator gen(ForumOptions());
  Rng rng1(42);
  Rng rng2(42);
  auto g1 = gen.GeneratePositive(rng1);
  auto g2 = gen.GeneratePositive(rng2);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (size_t i = 0; i < g1.edges().size(); ++i) {
    EXPECT_EQ(g1.edges()[i], g2.edges()[i]);
  }
}

}  // namespace
}  // namespace tpgnn::data
