// Tests for the design-choice extensions: the six EdgeAgg methods of
// Sec. IV-C and the Transformer global extractor proposed for large graphs.

#include <cmath>

#include <gtest/gtest.h>

#include "core/global_extractor.h"
#include "core/model.h"
#include "core/transformer_extractor.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace tpgnn::core {
namespace {

using graph::TemporalEdge;
using tensor::Shape;
using tensor::Tensor;

TEST(EdgeAggTest, AverageMatchesFormula) {
  Tensor u = Tensor::FromVector({2}, {2.0f, 4.0f});
  Tensor v = Tensor::FromVector({2}, {6.0f, -2.0f});
  EXPECT_EQ(AggregateEdge(EdgeAgg::kAverage, u, v).data(),
            (std::vector<float>{4.0f, 1.0f}));
}

TEST(EdgeAggTest, HadamardMatchesFormula) {
  Tensor u = Tensor::FromVector({2}, {2.0f, 4.0f});
  Tensor v = Tensor::FromVector({2}, {6.0f, -2.0f});
  EXPECT_EQ(AggregateEdge(EdgeAgg::kHadamard, u, v).data(),
            (std::vector<float>{12.0f, -8.0f}));
}

TEST(EdgeAggTest, WeightedL1IsAbsoluteDifference) {
  Tensor u = Tensor::FromVector({2}, {2.0f, -4.0f});
  Tensor v = Tensor::FromVector({2}, {6.0f, -2.0f});
  EXPECT_EQ(AggregateEdge(EdgeAgg::kWeightedL1, u, v).data(),
            (std::vector<float>{4.0f, 2.0f}));
}

TEST(EdgeAggTest, WeightedL2IsSquaredDifference) {
  Tensor u = Tensor::FromVector({2}, {2.0f, -4.0f});
  Tensor v = Tensor::FromVector({2}, {6.0f, -2.0f});
  EXPECT_EQ(AggregateEdge(EdgeAgg::kWeightedL2, u, v).data(),
            (std::vector<float>{16.0f, 4.0f}));
}

TEST(EdgeAggTest, ActivationIsBounded) {
  Tensor u = Tensor::FromVector({2}, {10.0f, -10.0f});
  Tensor v = Tensor::FromVector({2}, {10.0f, -10.0f});
  Tensor out = AggregateEdge(EdgeAgg::kActivation, u, v);
  for (float x : out.data()) {
    EXPECT_LE(std::abs(x), 1.0f);
  }
}

TEST(EdgeAggTest, ConcatenationDoublesWidth) {
  Tensor u = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor v = Tensor::FromVector({2}, {3.0f, 4.0f});
  Tensor out = AggregateEdge(EdgeAgg::kConcatenation, u, v);
  EXPECT_EQ(out.shape(), (Shape{4}));
  EXPECT_EQ(out.data(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(EdgeAggOutputDim(EdgeAgg::kConcatenation, 2), 4);
  EXPECT_EQ(EdgeAggOutputDim(EdgeAgg::kAverage, 2), 2);
}

TEST(EdgeAggTest, SymmetricAggregationsIgnoreDirection) {
  Rng rng(1);
  Tensor u = Tensor::Uniform({4}, -1, 1, rng);
  Tensor v = Tensor::Uniform({4}, -1, 1, rng);
  for (EdgeAgg agg : {EdgeAgg::kAverage, EdgeAgg::kHadamard,
                      EdgeAgg::kWeightedL1, EdgeAgg::kWeightedL2,
                      EdgeAgg::kActivation}) {
    EXPECT_TRUE(tensor::AllClose(AggregateEdge(agg, u, v),
                                 AggregateEdge(agg, v, u), 1e-6f, 1e-6f));
  }
  // Concatenation is the only direction-sensitive aggregation.
  EXPECT_FALSE(tensor::AllClose(AggregateEdge(EdgeAgg::kConcatenation, u, v),
                                AggregateEdge(EdgeAgg::kConcatenation, v, u),
                                1e-6f, 1e-6f));
}

TEST(EdgeAggTest, ExtractorAcceptsEveryAggregation) {
  Rng data_rng(2);
  Tensor h = Tensor::Uniform({3, 4}, -1, 1, data_rng);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  for (EdgeAgg agg : {EdgeAgg::kAverage, EdgeAgg::kHadamard,
                      EdgeAgg::kWeightedL1, EdgeAgg::kWeightedL2,
                      EdgeAgg::kActivation, EdgeAgg::kConcatenation}) {
    Rng rng(3);
    GlobalTemporalExtractor extractor(4, 6, rng,
                                      ExtractorReadout::kMeanState, agg);
    Tensor g = extractor.Forward(h, edges);
    EXPECT_EQ(g.shape(), (Shape{6}));
    for (float v : g.data()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

graph::TemporalGraph SmallGraph() {
  graph::TemporalGraph g(4, 3);
  g.SetNodeFeature(0, {0.1f, 0.2f, 0.0f});
  g.SetNodeFeature(1, {0.3f, 0.1f, 0.0f});
  g.SetNodeFeature(2, {0.2f, 0.4f, 0.0f});
  g.SetNodeFeature(3, {0.5f, 0.3f, 0.0f});
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  return g;
}

TEST(TransformerExtractorTest, OutputShapeAndFinite) {
  Rng rng(1);
  TransformerGlobalExtractor extractor(4, 8, /*num_heads=*/2, rng);
  Tensor h = Tensor::Uniform({4, 4}, -1, 1, rng);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
  Tensor g = extractor.Forward(h, edges);
  EXPECT_EQ(g.shape(), (Shape{8}));
  for (float v : g.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TransformerExtractorTest, EdgelessGraphGivesZeros) {
  Rng rng(2);
  TransformerGlobalExtractor extractor(4, 8, 2, rng);
  Tensor h = Tensor::Uniform({3, 4}, -1, 1, rng);
  Tensor g = extractor.Forward(h, {});
  for (float v : g.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(TransformerExtractorTest, PositionalEncodingMakesOrderMatter) {
  Rng rng(3);
  TransformerGlobalExtractor extractor(4, 8, 2, rng);
  Tensor h = Tensor::Uniform({4, 4}, -1, 1, rng);
  std::vector<TemporalEdge> forward_order = {
      {0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
  std::vector<TemporalEdge> reversed = {
      {2, 3, 1.0}, {1, 2, 2.0}, {0, 1, 3.0}};
  EXPECT_FALSE(tensor::AllClose(extractor.Forward(h, forward_order),
                                extractor.Forward(h, reversed), 1e-6f,
                                1e-6f));
}

TEST(TransformerExtractorTest, GradFlowsToAllParameters) {
  Rng rng(4);
  TransformerGlobalExtractor extractor(3, 4, 2, rng);
  Tensor h = Tensor::Uniform({3, 3}, -1, 1, rng, /*requires_grad=*/true);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  Tensor g = extractor.Forward(h, edges);
  tensor::Sum(tensor::Mul(g, g)).Backward();
  for (const auto& [name, p] : extractor.NamedParameters()) {
    float norm = 0.0f;
    for (float gv : p.grad()) norm += gv * gv;
    EXPECT_GT(norm, 0.0f) << name;
  }
}

TEST(TransformerModelTest, EndToEndForwardAndName) {
  TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  config.global_module = GlobalModule::kTransformer;
  TpGnnModel model(config, 1);
  EXPECT_EQ(model.name(), "TP-GNN-SUM (transformer)");
  Rng rng(1);
  Tensor logit = model.ForwardLogit(SmallGraph(), true, rng);
  EXPECT_TRUE(std::isfinite(logit.item()));
  tensor::BinaryCrossEntropyWithLogits(logit, Tensor::Scalar(1.0f))
      .Backward();
  float norm = 0.0f;
  for (const auto& p : model.TrainableParameters()) {
    for (float gv : p.grad()) norm += gv * gv;
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(EdgeAggModelTest, ConcatenationEdgeAggEndToEnd) {
  TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  config.edge_agg = EdgeAgg::kConcatenation;
  TpGnnModel model(config, 2);
  Rng rng(1);
  Tensor logit = model.ForwardLogit(SmallGraph(), false, rng);
  EXPECT_TRUE(std::isfinite(logit.item()));
}

}  // namespace
}  // namespace tpgnn::core
