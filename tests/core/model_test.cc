#include "core/model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "eval/trainer.h"
#include "tensor/ops.h"

namespace tpgnn::core {
namespace {

using graph::TemporalGraph;
using tensor::Tensor;

TpGnnConfig SmallConfig(Updater updater = Updater::kSum,
                        Variant variant = Variant::kFull) {
  TpGnnConfig config;
  config.updater = updater;
  config.variant = variant;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

TemporalGraph SmallGraph() {
  TemporalGraph g(4, 3);
  g.SetNodeFeature(0, {0.1f, 0.2f, 0.0f});
  g.SetNodeFeature(1, {0.3f, 0.1f, 0.0f});
  g.SetNodeFeature(2, {0.2f, 0.4f, 0.0f});
  g.SetNodeFeature(3, {0.5f, 0.3f, 0.0f});
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  g.AddEdge(3, 0, 4.0);
  return g;
}

TEST(TpGnnModelTest, LogitShape) {
  TpGnnModel model(SmallConfig(), /*seed=*/1);
  Rng rng(1);
  Tensor logit = model.ForwardLogit(SmallGraph(), /*training=*/false, rng);
  EXPECT_EQ(logit.shape(), (tensor::Shape{1}));
}

TEST(TpGnnModelTest, InferenceIsDeterministic) {
  TpGnnModel model(SmallConfig(), 2);
  Rng rng1(1);
  Rng rng2(999);
  Tensor a = model.ForwardLogit(SmallGraph(), false, rng1);
  Tensor b = model.ForwardLogit(SmallGraph(), false, rng2);
  EXPECT_EQ(a.item(), b.item());
}

TEST(TpGnnModelTest, SameSeedSameModel) {
  TpGnnModel m1(SmallConfig(), 7);
  TpGnnModel m2(SmallConfig(), 7);
  Rng rng(1);
  EXPECT_EQ(m1.ForwardLogit(SmallGraph(), false, rng).item(),
            m2.ForwardLogit(SmallGraph(), false, rng).item());
}

TEST(TpGnnModelTest, DifferentSeedDifferentModel) {
  TpGnnModel m1(SmallConfig(), 7);
  TpGnnModel m2(SmallConfig(), 8);
  Rng rng(1);
  EXPECT_NE(m1.ForwardLogit(SmallGraph(), false, rng).item(),
            m2.ForwardLogit(SmallGraph(), false, rng).item());
}

TEST(TpGnnModelTest, EmbedReturnsConfiguredDim) {
  TpGnnModel model(SmallConfig(), 3);
  Tensor g = model.Embed(SmallGraph());
  EXPECT_EQ(g.shape(), (tensor::Shape{8}));  // hidden_dim.
}

TEST(TpGnnModelTest, GradientReachesEveryParameter) {
  for (Updater updater : {Updater::kSum, Updater::kGru}) {
    TpGnnModel model(SmallConfig(updater), 4);
    Rng rng(1);
    Tensor logit = model.ForwardLogit(SmallGraph(), true, rng);
    Tensor target = Tensor::Scalar(1.0f);
    tensor::BinaryCrossEntropyWithLogits(logit, target).Backward();
    for (const auto& [name, p] : model.NamedParameters()) {
      float norm = 0.0f;
      for (float g : p.grad()) norm += g * g;
      EXPECT_GT(norm, 0.0f) << "no grad for " << name << " updater "
                            << static_cast<int>(updater);
    }
  }
}

TEST(TpGnnModelTest, AllVariantsProduceFiniteLogits) {
  for (Variant variant :
       {Variant::kFull, Variant::kRand, Variant::kWithoutTem, Variant::kTemp,
        Variant::kTime2Vec}) {
    for (Updater updater : {Updater::kSum, Updater::kGru}) {
      TpGnnModel model(SmallConfig(updater, variant), 5);
      Rng rng(2);
      Tensor logit = model.ForwardLogit(SmallGraph(), true, rng);
      EXPECT_TRUE(std::isfinite(logit.item()))
          << model.name() << " produced non-finite logit";
    }
  }
}

TEST(TpGnnModelTest, ModelNames) {
  EXPECT_EQ(TpGnnModel(SmallConfig(Updater::kSum), 1).name(), "TP-GNN-SUM");
  EXPECT_EQ(TpGnnModel(SmallConfig(Updater::kGru), 1).name(), "TP-GNN-GRU");
  EXPECT_EQ(TpGnnModel(SmallConfig(Updater::kSum, Variant::kRand), 1).name(),
            "TP-GNN-SUM (rand)");
  EXPECT_EQ(
      TpGnnModel(SmallConfig(Updater::kGru, Variant::kTime2Vec), 1).name(),
      "TP-GNN-GRU (time2Vec)");
}

TEST(TpGnnModelTest, DistinguishesFig1StylePair) {
  // Two graphs with identical topology but different timestamp order must
  // receive different logits (the paper's motivating example).
  TpGnnModel model(SmallConfig(), 6);
  TemporalGraph g1 = SmallGraph();
  TemporalGraph g2 = SmallGraph();
  // Reverse the timestamps: establishment order flips.
  for (size_t i = 0; i < g2.mutable_edges().size(); ++i) {
    g2.mutable_edges()[i].time = 5.0 - g2.mutable_edges()[i].time;
  }
  Rng rng(1);
  EXPECT_NE(model.ForwardLogit(g1, false, rng).item(),
            model.ForwardLogit(g2, false, rng).item());
}

TEST(TpGnnModelTest, TrainsToSeparateEasyClasses) {
  // End-to-end smoke test: a tiny HDFS-flavoured dataset is learnable well
  // above chance within a few epochs.
  data::DatasetSpec spec = data::HdfsSpec();
  auto dataset = data::MakeDataset(spec, 160, /*seed=*/11);
  auto split = data::SplitDataset(dataset, 0.5);

  TpGnnConfig config = SmallConfig();
  config.embed_dim = 16;
  config.hidden_dim = 16;
  TpGnnModel model(config, 12);
  eval::TrainOptions options;
  options.epochs = 12;
  options.learning_rate = 3e-3f;
  options.seed = 12;
  eval::TrainResult result =
      eval::TrainClassifier(model, split.train, options);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  eval::Metrics metrics = eval::EvaluateClassifier(model, split.test);
  EXPECT_GT(metrics.accuracy, 0.75) << "F1=" << metrics.f1;
}

}  // namespace
}  // namespace tpgnn::core
