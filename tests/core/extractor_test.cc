#include "core/global_extractor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace tpgnn::core {
namespace {

using graph::TemporalEdge;
using tensor::Shape;
using tensor::Tensor;

TEST(GlobalExtractorTest, OutputShape) {
  Rng rng(1);
  GlobalTemporalExtractor extractor(4, 8, rng);
  Tensor h = Tensor::Uniform({3, 4}, -1, 1, rng);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  EXPECT_EQ(extractor.Forward(h, edges).shape(), (Shape{8}));
}

TEST(GlobalExtractorTest, EdgelessGraphGivesZeroState) {
  Rng rng(2);
  GlobalTemporalExtractor extractor(4, 6, rng);
  Tensor h = Tensor::Uniform({3, 4}, -1, 1, rng);
  Tensor g = extractor.Forward(h, {});
  for (float v : g.data()) EXPECT_EQ(v, 0.0f);
}

TEST(GlobalExtractorTest, EdgeOrderChangesEmbedding) {
  Rng rng(3);
  GlobalTemporalExtractor extractor(4, 8, rng);
  Tensor h = Tensor::Uniform({4, 4}, -1, 1, rng);
  std::vector<TemporalEdge> order1 = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
  std::vector<TemporalEdge> order2 = {{2, 3, 3.0}, {1, 2, 2.0}, {0, 1, 1.0}};
  Tensor g1 = extractor.Forward(h, order1);
  Tensor g2 = extractor.Forward(h, order2);
  EXPECT_FALSE(tensor::AllClose(g1, g2, 1e-6f, 1e-6f));
}

TEST(GlobalExtractorTest, AverageEdgeAggIsSymmetricInEndpoints) {
  // With a single edge, swapping src/dst gives the same edge embedding,
  // hence the same graph embedding.
  Rng rng(4);
  GlobalTemporalExtractor extractor(4, 8, rng);
  Tensor h = Tensor::Uniform({2, 4}, -1, 1, rng);
  Tensor g1 = extractor.Forward(h, {{0, 1, 1.0}});
  Tensor g2 = extractor.Forward(h, {{1, 0, 1.0}});
  EXPECT_TRUE(tensor::AllClose(g1, g2, 1e-7f, 1e-7f));
}

TEST(GlobalExtractorTest, DependsOnNodeEmbeddings) {
  Rng rng(5);
  GlobalTemporalExtractor extractor(4, 8, rng);
  Tensor h1 = Tensor::Uniform({2, 4}, -1, 1, rng);
  Tensor h2 = Tensor::Uniform({2, 4}, -1, 1, rng);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}};
  EXPECT_FALSE(tensor::AllClose(extractor.Forward(h1, edges),
                                extractor.Forward(h2, edges), 1e-6f, 1e-6f));
}

TEST(GlobalExtractorTest, LastEdgesDominateLongSequences) {
  // GRU state summarises the full sequence; identical suffixes after
  // different prefixes must still differ (information is retained).
  Rng rng(6);
  GlobalTemporalExtractor extractor(3, 6, rng);
  Tensor h = Tensor::Uniform({4, 3}, -1, 1, rng);
  std::vector<TemporalEdge> a = {{0, 1, 1}, {2, 3, 2}, {1, 2, 3}};
  std::vector<TemporalEdge> b = {{2, 3, 1}, {0, 1, 2}, {1, 2, 3}};
  EXPECT_FALSE(tensor::AllClose(extractor.Forward(h, a),
                                extractor.Forward(h, b), 1e-6f, 1e-6f));
}

TEST(GlobalExtractorTest, GradCheck) {
  Rng rng(7);
  GlobalTemporalExtractor extractor(3, 4, rng);
  Tensor h = Tensor::Uniform({3, 3}, -1, 1, rng, /*requires_grad=*/true);
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}};
  std::vector<Tensor> params = extractor.Parameters();
  params.push_back(h);
  auto r = tpgnn::testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor g = extractor.Forward(h, edges);
        return tensor::Sum(tensor::Mul(g, g));
      },
      params, /*eps=*/1e-2f, /*tol=*/3e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace tpgnn::core
