// Property test for Theorem 1: for any nodes u, v, u is influential to v
// (Definition 4) if and only if v's local embedding h(v) depends on the
// input feature vector X(u). The oracle is the brute-force valid-path
// closure in graph/influence.h; the subject is the actual temporal
// propagation implementation (both updaters).

#include <cmath>

#include <gtest/gtest.h>

#include "core/temporal_propagation.h"
#include "graph/influence.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tpgnn::core {
namespace {

using graph::InfluenceClosure;
using graph::TemporalGraph;
using tensor::Tensor;

TpGnnConfig Config(Updater updater) {
  TpGnnConfig config;
  config.updater = updater;
  config.feature_dim = 3;
  config.embed_dim = 6;
  config.time_dim = 3;
  return config;
}

TemporalGraph RandomGraph(int64_t n, int64_t m, Rng& rng) {
  TemporalGraph g(n, 3);
  // Small base features keep the SUM updater's accumulated sums inside
  // tanh's active range (path counts grow multiplicatively), so a genuine
  // dependence is never hidden by saturation.
  for (int64_t v = 0; v < n; ++v) {
    g.SetNodeFeature(v,
                     {rng.UniformFloat(-0.05f, 0.05f),
                      rng.UniformFloat(-0.05f, 0.05f),
                      rng.UniformFloat(-0.05f, 0.05f)});
  }
  for (int64_t e = 0; e < m; ++e) {
    int64_t src = rng.UniformInt(0, n - 1);
    int64_t dst = rng.UniformInt(0, n - 1);
    while (dst == src) dst = rng.UniformInt(0, n - 1);
    g.AddEdge(src, dst, static_cast<double>(e + 1));  // Distinct times.
  }
  return g;
}

// Rows of H that change when X(u) is perturbed.
std::vector<bool> DependentRows(const TemporalPropagation& prop,
                                TemporalGraph g, int64_t u) {
  const auto order = g.ChronologicalEdges();
  Tensor h_before = prop.Forward(g, order);
  std::vector<float> f = g.node_feature(u);
  f[0] += 0.8f;
  f[1] -= 0.6f;
  f[2] += 0.7f;
  g.SetNodeFeature(u, f);
  Tensor h_after = prop.Forward(g, order);
  std::vector<bool> changed(static_cast<size_t>(g.num_nodes()), false);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    for (int64_t c = 0; c < h_before.size(1); ++c) {
      if (std::abs(h_before.at({v, c}) - h_after.at({v, c})) > 1e-6f) {
        changed[static_cast<size_t>(v)] = true;
        break;
      }
    }
  }
  return changed;
}

class Theorem1Test : public ::testing::TestWithParam<Updater> {};

TEST_P(Theorem1Test, InfluenceEqualsDependenceOnRandomGraphs) {
  Rng rng(2024);
  TemporalPropagation prop(Config(GetParam()), rng);
  for (int trial = 0; trial < 8; ++trial) {
    TemporalGraph g = RandomGraph(/*n=*/7, /*m=*/10, rng);
    InfluenceClosure closure(g);
    for (int64_t u = 0; u < g.num_nodes(); ++u) {
      std::vector<bool> dependent = DependentRows(prop, g, u);
      for (int64_t v = 0; v < g.num_nodes(); ++v) {
        const bool expected =
            v == u || closure.Influences(u, v);  // X(u) always reaches h(u).
        EXPECT_EQ(dependent[static_cast<size_t>(v)], expected)
            << "trial " << trial << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST_P(Theorem1Test, ChainPropagatesAllTheWay) {
  Rng rng(7);
  TemporalPropagation prop(Config(GetParam()), rng);
  TemporalGraph g(5, 3);
  for (int64_t i = 0; i + 1 < 5; ++i) {
    g.AddEdge(i, i + 1, static_cast<double>(i + 1));
  }
  std::vector<bool> dependent = DependentRows(prop, g, 0);
  for (int64_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(dependent[static_cast<size_t>(v)]) << "v=" << v;
  }
}

TEST_P(Theorem1Test, ReverseChainDoesNotPropagate) {
  Rng rng(8);
  TemporalPropagation prop(Config(GetParam()), rng);
  // Edges in decreasing time: 3->2 at t=3 fires BEFORE 2->1 consumes it?
  // No: 2->1 is at t=2, processed first, so node 0's info never moves.
  TemporalGraph g(4, 3);
  g.AddEdge(2, 3, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 1, 3.0);
  std::vector<bool> dependent = DependentRows(prop, g, 0);
  EXPECT_TRUE(dependent[0]);
  EXPECT_TRUE(dependent[1]);   // Direct edge 0->1.
  EXPECT_FALSE(dependent[2]);  // 1->2 fired before 0's info reached 1.
  EXPECT_FALSE(dependent[3]);
}

INSTANTIATE_TEST_SUITE_P(BothUpdaters, Theorem1Test,
                         ::testing::Values(Updater::kSum, Updater::kGru),
                         [](const ::testing::TestParamInfo<Updater>& info) {
                           return info.param == Updater::kSum ? "SUM" : "GRU";
                         });

}  // namespace
}  // namespace tpgnn::core
