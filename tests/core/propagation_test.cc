#include "core/temporal_propagation.h"

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "util/buffer_pool.h"

namespace tpgnn::core {
namespace {

using graph::TemporalGraph;
using tensor::Shape;
using tensor::Tensor;

TpGnnConfig SmallConfig(Updater updater) {
  TpGnnConfig config;
  config.updater = updater;
  config.feature_dim = 3;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

TemporalGraph Fig1StyleGraph() {
  TemporalGraph g(4, 3);
  for (int64_t v = 0; v < 4; ++v) {
    g.SetNodeFeature(v, {static_cast<float>(v) * 0.1f, 0.5f, 0.0f});
  }
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  return g;
}

TEST(TemporalPropagationTest, SumOutputShapeIncludesTimeBlock) {
  Rng rng(1);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  TemporalPropagation prop(config, rng);
  EXPECT_EQ(prop.output_dim(), 12);
  TemporalGraph g = Fig1StyleGraph();
  Tensor h = prop.Forward(g, g.ChronologicalEdges());
  EXPECT_EQ(h.shape(), (Shape{4, 12}));
}

TEST(TemporalPropagationTest, GruOutputShape) {
  Rng rng(2);
  TpGnnConfig config = SmallConfig(Updater::kGru);
  TemporalPropagation prop(config, rng);
  EXPECT_EQ(prop.output_dim(), 8);
  TemporalGraph g = Fig1StyleGraph();
  Tensor h = prop.Forward(g, g.ChronologicalEdges());
  EXPECT_EQ(h.shape(), (Shape{4, 8}));
}

TEST(TemporalPropagationTest, TempVariantHasNoTimeBlock) {
  Rng rng(3);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  config.variant = Variant::kTemp;
  TemporalPropagation prop(config, rng);
  EXPECT_EQ(prop.output_dim(), 8);
}

TEST(TemporalPropagationTest, WithoutTemSkipsPropagation) {
  Rng rng(4);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  config.variant = Variant::kWithoutTem;
  TemporalPropagation prop(config, rng);
  TemporalGraph g = Fig1StyleGraph();
  Tensor h = prop.Forward(g, g.ChronologicalEdges());
  // No propagation: isolated node embedding equals the edge-connected ones'
  // function of raw features only — H must not depend on the edges.
  TemporalGraph no_edges(4, 3);
  for (int64_t v = 0; v < 4; ++v) {
    no_edges.SetNodeFeature(v, g.node_feature(v));
  }
  Tensor h2 = prop.Forward(no_edges, no_edges.ChronologicalEdges());
  EXPECT_TRUE(tensor::AllClose(h, h2, 1e-7f, 1e-7f));
}

TEST(TemporalPropagationTest, OutputBoundedByTanh) {
  Rng rng(5);
  TemporalPropagation prop(SmallConfig(Updater::kSum), rng);
  TemporalGraph g = Fig1StyleGraph();
  Tensor h = prop.Forward(g, g.ChronologicalEdges());
  for (float v : h.data()) {
    EXPECT_LE(std::abs(v), 1.0f);
  }
}

TEST(TemporalPropagationTest, EdgeOrderMattersWithIdenticalTopology) {
  // The Fig. 1 motivation: same edges, different timestamps -> different H.
  Rng rng(6);
  for (Updater updater : {Updater::kSum, Updater::kGru}) {
    TemporalPropagation prop(SmallConfig(updater), rng);
    TemporalGraph g1(3, 3);
    g1.SetNodeFeature(0, {0.1f, 0.2f, 0.3f});
    g1.SetNodeFeature(1, {0.4f, 0.5f, 0.6f});
    g1.SetNodeFeature(2, {0.7f, 0.8f, 0.9f});
    g1.AddEdge(0, 1, 1.0);
    g1.AddEdge(1, 2, 2.0);
    TemporalGraph g2 = g1;
    g2.mutable_edges()[0].time = 2.0;
    g2.mutable_edges()[1].time = 1.0;
    Tensor h1 = prop.Forward(g1, g1.ChronologicalEdges());
    Tensor h2 = prop.Forward(g2, g2.ChronologicalEdges());
    EXPECT_FALSE(tensor::AllClose(h1, h2, 1e-6f, 1e-6f))
        << "updater " << static_cast<int>(updater);
  }
}

TEST(TemporalPropagationTest, RepeatedEdgeRefreshesTarget) {
  // After 8 -> 7 fires, a second 7 -> 6 edge must change 6's embedding
  // (long temporal dependency, Sec. I limitation 2).
  Rng rng(7);
  TemporalPropagation prop(SmallConfig(Updater::kGru), rng);
  TemporalGraph base(4, 3);
  base.AddEdge(1, 0, 1.0);  // 7->6 analogue.
  base.AddEdge(2, 1, 2.0);  // 8->7.
  TemporalGraph with_refresh = base;
  with_refresh.AddEdge(1, 0, 3.0);  // Second 7->6 after 8's info arrived.
  Tensor h1 = prop.Forward(base, base.ChronologicalEdges());
  Tensor h2 =
      prop.Forward(with_refresh, with_refresh.ChronologicalEdges());
  // Node 0's row must differ.
  Tensor row1 = tensor::Row(h1, 0);
  Tensor row2 = tensor::Row(h2, 0);
  EXPECT_FALSE(tensor::AllClose(row1, row2, 1e-6f, 1e-6f));
}

TEST(TemporalPropagationTest, GradFlowsToEmbeddingAndTimeParams) {
  Rng rng(8);
  TemporalPropagation prop(SmallConfig(Updater::kSum), rng);
  TemporalGraph g = Fig1StyleGraph();
  Tensor h = prop.Forward(g, g.ChronologicalEdges());
  tensor::Sum(tensor::Mul(h, h)).Backward();
  for (const auto& [name, p] : prop.NamedParameters()) {
    float grad_norm = 0.0f;
    for (float gv : p.grad()) grad_norm += gv * gv;
    EXPECT_GT(grad_norm, 0.0f) << "no gradient reached " << name;
  }
}

TEST(TemporalPropagationTest, GradCheckSumUpdater) {
  Rng rng(9);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  config.embed_dim = 4;
  config.time_dim = 2;
  TemporalPropagation prop(config, rng);
  TemporalGraph g = Fig1StyleGraph();
  auto r = tpgnn::testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor h = prop.Forward(g, g.ChronologicalEdges());
        return tensor::Sum(tensor::Mul(h, h));
      },
      prop.Parameters());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(TemporalPropagationTest, GradCheckGruUpdater) {
  Rng rng(10);
  TpGnnConfig config = SmallConfig(Updater::kGru);
  config.embed_dim = 4;
  config.time_dim = 2;
  TemporalPropagation prop(config, rng);
  TemporalGraph g = Fig1StyleGraph();
  auto r = tpgnn::testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor h = prop.Forward(g, g.ChronologicalEdges());
        return tensor::Sum(tensor::Mul(h, h));
      },
      prop.Parameters(), /*eps=*/1e-2f, /*tol=*/3e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

// --- Invariant time basis (DESIGN.md §4.3) --------------------------------

TEST(InvariantBasisTest, PredicatesAndAccumulatorWidth) {
  Rng rng(20);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  config.time_basis = TimeBasis::kInvariant;
  TemporalPropagation prop(config, rng);
  // Output width is unchanged: the widened accumulator collapses back to
  // time_dim at FinalizeState.
  EXPECT_EQ(prop.output_dim(), 12);
  EXPECT_EQ(prop.time_state_dim(), 2 * config.time_dim);
  EXPECT_FALSE(prop.AccumulatorDependsOnMaxTime());
  EXPECT_FALSE(prop.StateDependsOnMaxTime());

  TpGnnConfig absolute = SmallConfig(Updater::kSum);
  TemporalPropagation abs_prop(absolute, rng);
  EXPECT_EQ(abs_prop.time_state_dim(), config.time_dim);
  EXPECT_TRUE(abs_prop.AccumulatorDependsOnMaxTime());

  TpGnnConfig gru = SmallConfig(Updater::kGru);
  TemporalPropagation gru_prop(gru, rng);
  EXPECT_TRUE(gru_prop.StateDependsOnMaxTime());
  gru.time_basis = TimeBasis::kInvariant;
  TemporalPropagation gru_inv(gru, rng);
  EXPECT_FALSE(gru_inv.StateDependsOnMaxTime());
}

// The recorded (autograd) forward and the zero-copy inference forward must
// agree bitwise in the invariant basis, exactly as they do in the absolute
// basis — the deferred correction is mirrored expression by expression.
TEST(InvariantBasisTest, RecordedAndInferenceForwardsBitIdentical) {
  for (Updater updater : {Updater::kSum, Updater::kGru}) {
    for (bool normalize : {true, false}) {
      Rng rng(21);
      TpGnnConfig config = SmallConfig(updater);
      config.time_basis = TimeBasis::kInvariant;
      config.normalize_time = normalize;
      TemporalPropagation prop(config, rng);
      TemporalGraph g = Fig1StyleGraph();
      g.AddEdge(3, 0, 3.0);  // Duplicate timestamp.
      g.AddEdge(0, 2, 7.0);
      Tensor recorded = prop.Forward(g, g.ChronologicalEdges());
      // In scalar SIMD mode the planned inference path is bit-identical to
      // the recorded forward; a vector ISA moves tanh/sigmoid into the
      // kernel-ulp tolerance class (tensor/kernels.h), so the active-mode
      // check is a close-comparison instead.
      Tensor inference;
      {
        tensor::ScopedSimdMode scalar_mode(tensor::SimdMode::kScalar);
        tensor::NoGradGuard no_grad;
        inference = prop.Forward(g, g.ChronologicalEdges());
      }
      ASSERT_EQ(recorded.shape(), inference.shape());
      for (size_t i = 0; i < recorded.data().size(); ++i) {
        EXPECT_EQ(recorded.data()[i], inference.data()[i])
            << "updater " << static_cast<int>(updater) << " normalize "
            << normalize << " element " << i;
      }
      Tensor active;
      {
        tensor::NoGradGuard no_grad;
        active = prop.Forward(g, g.ChronologicalEdges());
      }
      EXPECT_TRUE(tensor::AllClose(recorded, active, 1e-4f, 1e-5f));
    }
  }
}

// The two bases are different models: same parameters, different H.
TEST(InvariantBasisTest, BasesDisagreeButBothReactToTime) {
  Rng rng(22);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  TemporalPropagation absolute(config, rng);
  Rng rng2(22);
  config.time_basis = TimeBasis::kInvariant;
  TemporalPropagation invariant(config, rng2);
  TemporalGraph g = Fig1StyleGraph();
  Tensor ha = absolute.Forward(g, g.ChronologicalEdges());
  Tensor hi = invariant.Forward(g, g.ChronologicalEdges());
  EXPECT_FALSE(tensor::AllClose(ha, hi, 1e-6f, 1e-6f));
  // And the invariant basis still distinguishes timestamp patterns.
  TemporalGraph g2 = g;
  g2.mutable_edges()[0].time = 2.5;
  Tensor hi2 = invariant.Forward(g2, g2.ChronologicalEdges());
  EXPECT_FALSE(tensor::AllClose(hi, hi2, 1e-6f, 1e-6f));
}

TEST(InvariantBasisTest, GradFlowsToAllParams) {
  for (Updater updater : {Updater::kSum, Updater::kGru}) {
    Rng rng(23);
    TpGnnConfig config = SmallConfig(updater);
    config.time_basis = TimeBasis::kInvariant;
    TemporalPropagation prop(config, rng);
    TemporalGraph g = Fig1StyleGraph();
    Tensor h = prop.Forward(g, g.ChronologicalEdges());
    tensor::Sum(tensor::Mul(h, h)).Backward();
    for (const auto& [name, p] : prop.NamedParameters()) {
      float grad_norm = 0.0f;
      for (float gv : p.grad()) grad_norm += gv * gv;
      EXPECT_GT(grad_norm, 0.0f)
          << "no gradient reached " << name << " (updater "
          << static_cast<int>(updater) << ")";
    }
  }
}

TEST(InvariantBasisTest, GradCheckSumUpdater) {
  Rng rng(24);
  TpGnnConfig config = SmallConfig(Updater::kSum);
  config.embed_dim = 4;
  config.time_dim = 2;
  config.time_basis = TimeBasis::kInvariant;
  TemporalPropagation prop(config, rng);
  TemporalGraph g = Fig1StyleGraph();
  auto r = tpgnn::testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor h = prop.Forward(g, g.ChronologicalEdges());
        return tensor::Sum(tensor::Mul(h, h));
      },
      prop.Parameters());
  EXPECT_TRUE(r.ok) << r.message;
}

// The compiled per-edge plan is reused allocation-free: folding 10k edges
// through one PropagationScratch grows the executor arena exactly once and
// never touches the buffer pool — buffer_allocs_per_edge == 0.
TEST(PlannedFoldTest, TenThousandEdgesFoldAllocationFree) {
  for (Updater updater : {Updater::kSum, Updater::kGru}) {
    Rng rng(31);
    TpGnnConfig config = SmallConfig(updater);
    config.time_basis = TimeBasis::kInvariant;
    TemporalPropagation prop(config, rng);

    TemporalGraph g(6, 3);
    for (int64_t v = 0; v < 6; ++v) {
      g.SetNodeFeature(v, {0.1f * static_cast<float>(v), 0.5f, 0.0f});
    }
    for (int i = 0; i < 10000; ++i) {
      g.AddEdge(i % 6, (i + 1) % 6, 1.0 + 0.5 * i);
    }

    tensor::NoGradGuard no_grad;
    Tensor x = prop.EmbedInitial(g);
    Tensor m;
    if (prop.has_time_accumulator()) {
      m = Tensor::Zeros({6, prop.time_state_dim()});
    }
    PropagationScratch scratch;
    const double max_time = g.MaxTime();
    double prev_time = 0.0;
    // Warm the arena on the first edge, then demand zero allocation.
    const auto& edges = g.ChronologicalEdges();
    prop.PropagateEdgeState(x, edges[0], max_time, prev_time, scratch);
    if (prop.has_time_accumulator()) {
      prop.AccumulateEdgeTime(m, edges[0], max_time, scratch);
    }
    prev_time = edges[0].time;
    const uint64_t grows_after_warmup = scratch.exec.arena_grows();
    const util::BufferPoolStats before = util::GetBufferPoolStats();
    for (size_t i = 1; i < edges.size(); ++i) {
      prop.PropagateEdgeState(x, edges[i], max_time, prev_time, scratch);
      if (prop.has_time_accumulator()) {
        prop.AccumulateEdgeTime(m, edges[i], max_time, scratch);
      }
      prev_time = edges[i].time;
    }
    const util::BufferPoolStats after = util::GetBufferPoolStats();
    EXPECT_EQ(scratch.exec.arena_grows(), grows_after_warmup)
        << "updater " << static_cast<int>(updater);
    EXPECT_EQ(after.acquires, before.acquires)
        << "updater " << static_cast<int>(updater);
    EXPECT_EQ(after.node_acquires, before.node_acquires)
        << "updater " << static_cast<int>(updater);
  }
}

TEST(NormalizeTimeTest, ScalesToConfiguredRange) {
  TpGnnConfig config;
  config.normalize_time = true;
  config.time_scale = 10.0;
  EXPECT_DOUBLE_EQ(NormalizeTime(config, 50.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(NormalizeTime(config, 100.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(NormalizeTime(config, 5.0, 0.0), 5.0);  // Degenerate.
  config.normalize_time = false;
  EXPECT_DOUBLE_EQ(NormalizeTime(config, 50.0, 100.0), 50.0);
}

}  // namespace
}  // namespace tpgnn::core
