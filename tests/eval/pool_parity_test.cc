// Determinism contracts of the tensor memory subsystem at training scale:
//  * Training metrics are bit-identical with the buffer pool on and off,
//    for every (batch_size, num_threads) combination — pool reuse and tape
//    recycling are value-invisible.
//  * The zero-copy inference forward (NoGradGuard) produces bit-identical
//    logits to the recorded training-mode forward, across updaters,
//    readouts, and edge aggregations.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/trainer.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace tpgnn::eval {
namespace {

class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : previous_(util::BufferPoolEnabled()) {
    util::SetBufferPoolEnabled(enabled);
  }
  ~ScopedPoolEnabled() { util::SetBufferPoolEnabled(previous_); }

 private:
  bool previous_;
};

core::TpGnnConfig TinyConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

graph::GraphDataset TinyDataset(int64_t count) {
  return data::MakeDataset(data::HdfsSpec(), count, /*seed=*/21);
}

TrainResult TrainWith(int64_t batch_size, int64_t num_threads,
                      bool pool_enabled) {
  ScopedPoolEnabled pool(pool_enabled);
  core::TpGnnModel model(TinyConfig(), 7);
  TrainOptions options;
  options.epochs = 2;
  options.learning_rate = 5e-3f;
  options.seed = 11;
  options.batch_size = batch_size;
  options.num_threads = num_threads;
  return TrainClassifier(model, TinyDataset(24), options);
}

TEST(PoolParityTest, TrainingLossesBitIdenticalPoolOnVsOff) {
  for (int64_t batch_size : {int64_t{1}, int64_t{4}}) {
    for (int64_t num_threads : {int64_t{1}, int64_t{4}}) {
      TrainResult with_pool =
          TrainWith(batch_size, num_threads, /*pool_enabled=*/true);
      TrainResult without_pool =
          TrainWith(batch_size, num_threads, /*pool_enabled=*/false);
      ASSERT_EQ(with_pool.epoch_losses.size(),
                without_pool.epoch_losses.size());
      for (size_t e = 0; e < with_pool.epoch_losses.size(); ++e) {
        EXPECT_EQ(with_pool.epoch_losses[e], without_pool.epoch_losses[e])
            << "batch_size=" << batch_size << " num_threads=" << num_threads
            << " epoch=" << e;
      }
    }
  }
}

// Runs the recorded (grad-enabled) and the zero-copy (NoGradGuard) forward
// over the same graphs. In scalar SIMD mode the two are bitwise equal; under
// a vector ISA the inference path's tanh/sigmoid land in the kernel-ulp
// tolerance class (tensor/kernels.h), so the active-mode comparison uses a
// tolerance instead.
void ExpectInferenceMatchesRecordedForward(const core::TpGnnConfig& config) {
  core::TpGnnModel model(config, 13);
  graph::GraphDataset dataset = TinyDataset(6);
  for (const graph::LabeledGraph& sample : dataset) {
    Rng rng(0);
    tensor::Tensor recorded =
        model.ForwardLogit(sample.graph, /*training=*/false, rng);
    {
      tensor::ScopedSimdMode scalar_mode(tensor::SimdMode::kScalar);
      tensor::NoGradGuard no_grad;
      const float fast =
          model.ForwardLogit(sample.graph, /*training=*/false, rng).item();
      EXPECT_EQ(recorded.item(), fast);
    }
    {
      tensor::NoGradGuard no_grad;
      const float active =
          model.ForwardLogit(sample.graph, /*training=*/false, rng).item();
      EXPECT_NEAR(recorded.item(), active,
                  1e-5f + 1e-4f * std::abs(recorded.item()));
    }
  }
}

TEST(PoolParityTest, InferencePathMatchesRecordedForwardSumUpdater) {
  ExpectInferenceMatchesRecordedForward(TinyConfig());
}

TEST(PoolParityTest, InferencePathMatchesRecordedForwardGruUpdater) {
  core::TpGnnConfig config = TinyConfig();
  config.updater = core::Updater::kGru;
  ExpectInferenceMatchesRecordedForward(config);
}

TEST(PoolParityTest, InferencePathMatchesRecordedForwardLastStateConcat) {
  core::TpGnnConfig config = TinyConfig();
  config.extractor_readout = core::ExtractorReadout::kLastState;
  config.edge_agg = core::EdgeAgg::kConcatenation;
  ExpectInferenceMatchesRecordedForward(config);
}

TEST(PoolParityTest, InferencePathMatchesRecordedForwardWeightedL1) {
  core::TpGnnConfig config = TinyConfig();
  config.edge_agg = core::EdgeAgg::kWeightedL1;
  ExpectInferenceMatchesRecordedForward(config);
}

}  // namespace
}  // namespace tpgnn::eval
