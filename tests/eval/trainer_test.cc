#include "eval/trainer.h"

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/experiment.h"

namespace tpgnn::eval {
namespace {

core::TpGnnConfig TinyConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

graph::GraphDataset TinyDataset(int64_t count) {
  return data::MakeDataset(data::HdfsSpec(), count, /*seed=*/21);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  core::TpGnnModel model(TinyConfig(), 1);
  TrainOptions options;
  options.epochs = 10;
  options.learning_rate = 5e-3f;
  options.seed = 1;
  TrainResult result = TrainClassifier(model, TinyDataset(60), options);
  ASSERT_EQ(result.epoch_losses.size(), 10u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(TrainerTest, MaxEdgesSkipsLargeGraphs) {
  core::TpGnnModel model(TinyConfig(), 2);
  TrainOptions options;
  options.epochs = 1;
  options.max_edges = 1;  // Skips effectively everything.
  TrainResult result = TrainClassifier(model, TinyDataset(10), options);
  EXPECT_EQ(result.epoch_losses[0], 0.0);
}

TEST(TrainerTest, EvaluateProducesValidMetrics) {
  core::TpGnnModel model(TinyConfig(), 3);
  Metrics m = EvaluateClassifier(model, TinyDataset(30));
  EXPECT_GE(m.accuracy, 0.0);
  EXPECT_LE(m.accuracy, 1.0);
  EXPECT_GE(m.f1, 0.0);
  EXPECT_LE(m.f1, 1.0);
}

TEST(TrainerTest, MeasureInferenceIsPositive) {
  core::TpGnnModel model(TinyConfig(), 4);
  EXPECT_GT(MeasureInferenceMicros(model, TinyDataset(5)), 0.0);
}

TEST(ExperimentTest, RunAggregatesSeeds) {
  auto dataset = TinyDataset(60);
  auto split = data::SplitDataset(dataset, 0.5);
  ClassifierFactory factory = [](uint64_t seed) {
    return std::make_unique<core::TpGnnModel>(TinyConfig(), seed);
  };
  ExperimentOptions options;
  options.num_seeds = 2;
  options.train.epochs = 3;
  ExperimentResult result =
      RunExperiment(factory, split.train, split.test, options);
  EXPECT_EQ(result.model_name, "TP-GNN-SUM");
  EXPECT_EQ(result.metrics.runs, 2);
  EXPECT_GT(result.metrics.mean.accuracy, 0.3);
  EXPECT_GT(result.inference_micros_per_graph, 0.0);
}

TEST(ExperimentTest, DeterministicAcrossInvocations) {
  auto dataset = TinyDataset(40);
  auto split = data::SplitDataset(dataset, 0.5);
  ClassifierFactory factory = [](uint64_t seed) {
    return std::make_unique<core::TpGnnModel>(TinyConfig(), seed);
  };
  ExperimentOptions options;
  options.num_seeds = 1;
  options.train.epochs = 2;
  ExperimentResult a = RunExperiment(factory, split.train, split.test, options);
  ExperimentResult b = RunExperiment(factory, split.train, split.test, options);
  EXPECT_DOUBLE_EQ(a.metrics.mean.f1, b.metrics.mean.f1);
  EXPECT_DOUBLE_EQ(a.metrics.mean.precision, b.metrics.mean.precision);
}

}  // namespace
}  // namespace tpgnn::eval
