// Golden regression for end-to-end training determinism: three epochs on
// the smallest HDFS log-session configuration, fixed seeds throughout, with
// per-epoch losses and test AUC pinned to checked-in goldens.
//
// Purpose: silent numeric drift — a reordered reduction, an accidental RNG
// draw, an optimizer change — shows up here as a hard failure even when
// every behavioural test still passes. If a change is *supposed* to alter
// the numbers, regenerate with
//   TPGNN_PRINT_GOLDENS=1 ./eval_golden_determinism_test
// and update the constants below in the same commit, explaining why.
//
// Tolerance: the run is bit-deterministic on a fixed binary (single RNG
// stream, serial reductions at batch_size 1), but goldens must survive
// recompilation at different -O levels, so comparisons allow a small
// relative slack rather than exact equality.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace tpgnn::eval {
namespace {

// Goldens recorded on the reference build (gcc, Release, 2026-08).
constexpr double kGoldenEpochLosses[3] = {0.71099739968776698,
                                          0.70415572524070735,
                                          0.70345779061317448};
constexpr double kGoldenAuc = 0.59595959595959591;
constexpr double kGoldenAccuracy = 0.5;

// Relative slack for cross-optimization-level stability of float math.
constexpr double kRelTol = 1e-5;

core::TpGnnConfig SmallestConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

struct GoldenRun {
  std::vector<double> losses;
  double auc = 0.0;
  double accuracy = 0.0;
};

GoldenRun RunGoldenConfig() {
  // Goldens are recorded against the scalar kernels; a vector ISA would make
  // the inference-side numbers ISA-dependent (tensor/kernels.h).
  tensor::ScopedSimdMode scalar_mode(tensor::SimdMode::kScalar);
  auto dataset = data::MakeDataset(data::HdfsSpec(), 40, /*seed=*/21);
  auto split = data::SplitDataset(dataset, 0.5);

  core::TpGnnModel model(SmallestConfig(), /*seed=*/1);
  TrainOptions options;
  options.epochs = 3;
  options.learning_rate = 5e-3f;
  options.seed = 1;
  GoldenRun run;
  run.losses = TrainClassifier(model, split.train, options).epoch_losses;

  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(0);  // Inference is deterministic; the stream is never drawn.
  for (const auto& example : split.test) {
    scores.push_back(
        model.ForwardLogit(example.graph, /*training=*/false, rng).data()[0]);
    labels.push_back(example.label);
  }
  run.auc = ComputeAuc(scores, labels);
  run.accuracy = EvaluateClassifier(model, split.test).accuracy;
  return run;
}

void ExpectNearRel(double actual, double golden, const char* what) {
  const double tol = kRelTol * (golden < 0 ? -golden : golden) + 1e-12;
  EXPECT_NEAR(actual, golden, tol) << what;
}

TEST(GoldenDeterminismTest, ThreeEpochHdfsRunMatchesGoldens) {
  GoldenRun run = RunGoldenConfig();
  ASSERT_EQ(run.losses.size(), 3u);
  if (std::getenv("TPGNN_PRINT_GOLDENS") != nullptr) {
    std::printf("kGoldenEpochLosses = {%.17g, %.17g, %.17g}\n",
                run.losses[0], run.losses[1], run.losses[2]);
    std::printf("kGoldenAuc = %.17g\nkGoldenAccuracy = %.17g\n", run.auc,
                run.accuracy);
    return;
  }
  for (int e = 0; e < 3; ++e) {
    ExpectNearRel(run.losses[e], kGoldenEpochLosses[e], "epoch loss");
  }
  ExpectNearRel(run.auc, kGoldenAuc, "test AUC");
  ExpectNearRel(run.accuracy, kGoldenAccuracy, "test accuracy");
}

TEST(GoldenDeterminismTest, BackToBackRunsAreBitIdentical) {
  GoldenRun a = RunGoldenConfig();
  GoldenRun b = RunGoldenConfig();
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]) << "epoch " << e;
  }
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace tpgnn::eval
