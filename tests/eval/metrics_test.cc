#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tpgnn::eval {
namespace {

TEST(ConfusionCountsTest, AddRoutesToCells) {
  ConfusionCounts c;
  c.Add(1, 1);
  c.Add(1, 0);
  c.Add(0, 1);
  c.Add(0, 0);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 4);
}

TEST(MetricsTest, PerfectClassifier) {
  ConfusionCounts c;
  c.tp = 10;
  c.tn = 5;
  Metrics m = ComputeMetrics(c);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, AllPositivePredictor) {
  // Predicting everything positive with 70% prevalence: precision 0.7,
  // recall 1.0, F1 ~ 0.8235 (the paper's weak-baseline signature).
  ConfusionCounts c;
  c.tp = 70;
  c.fp = 30;
  Metrics m = ComputeMetrics(c);
  EXPECT_NEAR(m.precision, 0.7, 1e-9);
  EXPECT_NEAR(m.recall, 1.0, 1e-9);
  EXPECT_NEAR(m.f1, 2 * 0.7 / 1.7, 1e-9);
}

TEST(MetricsTest, ZeroDenominatorsAreSafe) {
  ConfusionCounts c;  // Empty.
  Metrics m = ComputeMetrics(c);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
  c.tn = 10;  // Never predicts positive.
  m = ComputeMetrics(c);
  EXPECT_EQ(m.f1, 0.0);
  EXPECT_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, KnownMixedCase) {
  ConfusionCounts c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 4;
  c.tn = 6;
  Metrics m = ComputeMetrics(c);
  EXPECT_NEAR(m.precision, 0.8, 1e-9);
  EXPECT_NEAR(m.recall, 8.0 / 12.0, 1e-9);
  EXPECT_NEAR(m.f1, 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-9);
  EXPECT_NEAR(m.accuracy, 0.7, 1e-9);
}

TEST(AggregateTest, MeanAndStddev) {
  Metrics a;
  a.f1 = 0.9;
  a.precision = 0.8;
  Metrics b;
  b.f1 = 0.7;
  b.precision = 0.6;
  AggregateMetrics agg = Aggregate({a, b});
  EXPECT_EQ(agg.runs, 2);
  EXPECT_NEAR(agg.mean.f1, 0.8, 1e-9);
  EXPECT_NEAR(agg.stddev.f1, std::sqrt(0.02), 1e-9);
  EXPECT_NEAR(agg.mean.precision, 0.7, 1e-9);
}

TEST(AggregateTest, SingleRunHasZeroStddev) {
  Metrics a;
  a.f1 = 0.5;
  AggregateMetrics agg = Aggregate({a});
  EXPECT_EQ(agg.stddev.f1, 0.0);
}

TEST(AggregateTest, EmptyRuns) {
  AggregateMetrics agg = Aggregate({});
  EXPECT_EQ(agg.runs, 0);
  EXPECT_EQ(agg.mean.f1, 0.0);
}

TEST(FormatCellTest, PercentFormatting) {
  EXPECT_EQ(FormatCell(0.9853, 0.0033), "98.53+/-0.33");
}

}  // namespace
}  // namespace tpgnn::eval
