#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace tpgnn::eval {
namespace {

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.9, 0.8, 0.1, 0.2}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.2, 0.9, 0.8}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, SingleClassGivesHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(AucTest, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, TieBetweenClassesCountsHalf) {
  // Pairs: pos 0.5 vs neg 0.5 -> 1/2; pos 0.5 vs neg 0.1 -> 1. AUC = 0.75.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5, 0.5, 0.1}, {1, 0, 0}), 0.75);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  std::vector<double> scores = {0.1, 0.7, 0.3, 0.9, 0.5};
  std::vector<int> labels = {0, 1, 0, 1, 1};
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(100.0 * s - 3.0);
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, labels),
                   ComputeAuc(transformed, labels));
}

}  // namespace
}  // namespace tpgnn::eval
