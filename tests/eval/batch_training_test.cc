// Determinism contracts of the parallel trainer and evaluator:
//  * batch_size=1 (any thread count) is the exact seed trainer.
//  * A given (seed, batch_size) training run is bit-identical regardless of
//    num_threads.
//  * Evaluation metrics are bit-identical between 1 thread and N threads.

#include "eval/trainer.h"

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/datasets.h"

namespace tpgnn::eval {
namespace {

core::TpGnnConfig TinyConfig() {
  core::TpGnnConfig config;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.hidden_dim = 8;
  return config;
}

graph::GraphDataset TinyDataset(int64_t count) {
  return data::MakeDataset(data::HdfsSpec(), count, /*seed=*/21);
}

TrainResult TrainWith(int64_t batch_size, int64_t num_threads,
                      int64_t epochs = 3) {
  core::TpGnnModel model(TinyConfig(), 7);
  TrainOptions options;
  options.epochs = epochs;
  options.learning_rate = 5e-3f;
  options.seed = 11;
  options.batch_size = batch_size;
  options.num_threads = num_threads;
  return TrainClassifier(model, TinyDataset(40), options);
}

TEST(BatchTrainingTest, BatchSizeOneReproducesSeedTrainerExactly) {
  // The seed trainer is TrainOptions' default configuration; batch_size=1
  // must route to the identical serial path whatever num_threads says.
  core::TpGnnModel seed_model(TinyConfig(), 7);
  TrainOptions seed_options;
  seed_options.epochs = 3;
  seed_options.learning_rate = 5e-3f;
  seed_options.seed = 11;
  TrainResult seed = TrainClassifier(seed_model, TinyDataset(40), seed_options);

  TrainResult serial = TrainWith(/*batch_size=*/1, /*num_threads=*/1);
  TrainResult threaded = TrainWith(/*batch_size=*/1, /*num_threads=*/4);
  ASSERT_EQ(seed.epoch_losses.size(), serial.epoch_losses.size());
  for (size_t e = 0; e < seed.epoch_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(seed.epoch_losses[e], serial.epoch_losses[e]);
    EXPECT_DOUBLE_EQ(seed.epoch_losses[e], threaded.epoch_losses[e]);
  }
}

TEST(BatchTrainingTest, BatchedTrainingIsThreadCountInvariant) {
  TrainResult one_thread = TrainWith(/*batch_size=*/4, /*num_threads=*/1);
  TrainResult four_threads = TrainWith(/*batch_size=*/4, /*num_threads=*/4);
  TrainResult three_threads = TrainWith(/*batch_size=*/4, /*num_threads=*/3);
  ASSERT_EQ(one_thread.epoch_losses.size(), four_threads.epoch_losses.size());
  for (size_t e = 0; e < one_thread.epoch_losses.size(); ++e) {
    // Bit-identical: the per-graph tapes and the batch-order reduction do
    // the same float operations in the same order for any thread count.
    EXPECT_EQ(one_thread.epoch_losses[e], four_threads.epoch_losses[e]);
    EXPECT_EQ(one_thread.epoch_losses[e], three_threads.epoch_losses[e]);
  }
}

TEST(BatchTrainingTest, BatchedTrainingLearns) {
  TrainResult result =
      TrainWith(/*batch_size=*/4, /*num_threads=*/4, /*epochs=*/8);
  ASSERT_EQ(result.epoch_losses.size(), 8u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(BatchTrainingTest, MaxEdgesFilterAppliesInBatchedMode) {
  core::TpGnnModel model(TinyConfig(), 2);
  TrainOptions options;
  options.epochs = 1;
  options.max_edges = 1;  // Skips effectively everything.
  options.batch_size = 4;
  options.num_threads = 2;
  TrainResult result = TrainClassifier(model, TinyDataset(10), options);
  EXPECT_EQ(result.epoch_losses[0], 0.0);
}

TEST(BatchTrainingTest, EvaluationIsBitIdenticalAcrossThreadCounts) {
  core::TpGnnModel model(TinyConfig(), 3);
  graph::GraphDataset test = TinyDataset(30);
  Metrics serial = EvaluateClassifier(model, test, /*num_threads=*/1);
  Metrics threaded = EvaluateClassifier(model, test, /*num_threads=*/4);
  EXPECT_EQ(serial.precision, threaded.precision);
  EXPECT_EQ(serial.recall, threaded.recall);
  EXPECT_EQ(serial.f1, threaded.f1);
  EXPECT_EQ(serial.accuracy, threaded.accuracy);
}

TEST(BatchTrainingTest, ParallelInferenceMeasurementIsPositive) {
  core::TpGnnModel model(TinyConfig(), 4);
  EXPECT_GT(MeasureInferenceMicros(model, TinyDataset(6), /*num_threads=*/4),
            0.0);
}

}  // namespace
}  // namespace tpgnn::eval
