// Server behaviour over real loopback sockets: request/response round
// trips, the METRICS RPC, typed teardown of corrupt streams, the
// per-connection overload path with exact events_applied accounting,
// graceful shutdown draining every pending score, client deadlines, and
// broken-pipe reconnects.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "data/datasets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net_test_util.h"
#include "util/net.h"

namespace tpgnn::net {
namespace {

graph::GraphDataset TinyDataset(int count = 1) {
  return data::MakeDataset(data::HdfsSpec(), count, /*seed=*/11);
}

TEST(ServerTest, PingPong) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, IngestBatchAppliesAllEventsAndScores) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  graph::GraphDataset dataset = TinyDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(BeginEvent(1, g));
  for (const graph::TemporalEdge& e : g.edges()) {
    events.push_back(EdgeEvent(1, e.src, e.dst, e.time));
  }
  events.push_back(ScoreEvent(1, dataset[0].label));
  events.push_back(EndEvent(1));

  uint64_t applied = 0;
  ASSERT_TRUE(client.IngestBatch(events, &applied).ok());
  EXPECT_EQ(applied, events.size());
  ASSERT_TRUE(client.DrainResults().ok());

  std::vector<serve::ScoreResult> results = client.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].session_id, 1u);
  EXPECT_EQ(results[0].label, dataset[0].label);
  EXPECT_EQ(results[0].edges_scored,
            static_cast<int64_t>(g.edges().size()));
}

TEST(ServerTest, SynchronousScoreRpc) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  graph::GraphDataset dataset = TinyDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(BeginEvent(1, g));
  for (const graph::TemporalEdge& e : g.edges()) {
    events.push_back(EdgeEvent(1, e.src, e.dst, e.time));
  }
  ASSERT_TRUE(client.IngestAll(events).ok());

  serve::ScoreResult result;
  ASSERT_TRUE(client.Score(1, dataset[0].label, &result).ok());
  EXPECT_EQ(result.session_id, 1u);
  EXPECT_GT(result.probability, 0.0f);
  EXPECT_LT(result.probability, 1.0f);

  // Scoring an unknown session surfaces the engine's typed error in-band.
  serve::ScoreResult missing;
  Status status = client.Score(999, -1, &missing);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), missing.status.code());
}

TEST(ServerTest, MetricsRpcReturnsEngineAndWireCounters) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());

  std::string json;
  ASSERT_TRUE(client.GetMetricsJson(&json).ok());
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"frames_received\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections_accepted\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos) << json;
}

TEST(ServerTest, MalformedStreamGetsTypedErrorThenClose) {
  ServerHarness harness;
  UniqueFd fd;
  ASSERT_TRUE(
      ConnectTcp("127.0.0.1", harness.port(), /*timeout_ms=*/2000, &fd).ok());

  const uint8_t garbage[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01,
                             0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  ASSERT_TRUE(SendAll(fd.get(), garbage, sizeof(garbage), 2000).ok());

  // The server answers with a typed ERROR frame...
  std::vector<uint8_t> in;
  Frame frame;
  size_t consumed = 0;
  for (;;) {
    uint8_t buf[512];
    size_t received = 0;
    ASSERT_TRUE(RecvSome(fd.get(), buf, sizeof(buf), 2000, &received).ok());
    in.insert(in.end(), buf, buf + received);
    ASSERT_TRUE(DecodeFrame(in.data(), in.size(), kDefaultMaxPayloadBytes,
                            &frame, &consumed)
                    .ok());
    if (consumed > 0) break;
  }
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.status_code, StatusCode::kDataLoss);

  // ...then closes the stream: the next read hits EOF (mapped to kDataLoss
  // by RecvSome) rather than hanging.
  uint8_t buf[64];
  size_t received = 0;
  Status eof = RecvSome(fd.get(), buf, sizeof(buf), 2000, &received);
  EXPECT_EQ(eof.code(), StatusCode::kDataLoss);
  EXPECT_EQ(harness.engine().metrics().protocol_errors.load(), 1u);
}

TEST(ServerTest, InflightCapSurfacesOverloadWithExactEventsApplied) {
  ServerOptions server_options;
  server_options.max_inflight_scores = 1;
  ServerHarness harness({}, server_options);
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  graph::GraphDataset dataset = TinyDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(BeginEvent(1, g));
  events.push_back(ScoreEvent(1));
  events.push_back(ScoreEvent(1));  // Over the cap: shed here.
  events.push_back(ScoreEvent(1));

  uint64_t applied = 0;
  Status status = client.IngestBatch(events, &applied);
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(applied, 2u);  // Begin + first Score.
  EXPECT_EQ(client.inflight_scores(), 1u);

  // Draining relieves the cap; the retry loop ships the shed tail.
  ASSERT_TRUE(client.DrainResults().ok());
  std::vector<serve::Event> tail(events.begin() + 2, events.end());
  ASSERT_TRUE(client.IngestAll(tail).ok());
  ASSERT_TRUE(client.DrainResults().ok());
  EXPECT_EQ(client.TakeResults().size(), 3u);
}

TEST(ServerTest, GracefulShutdownDeliversEveryPendingResult) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  graph::GraphDataset dataset = TinyDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(BeginEvent(1, g));
  for (const graph::TemporalEdge& e : g.edges()) {
    events.push_back(EdgeEvent(1, e.src, e.dst, e.time));
  }
  constexpr int kScores = 8;
  for (int i = 0; i < kScores; ++i) {
    events.push_back(ScoreEvent(1));
  }
  ASSERT_TRUE(client.IngestAll(events).ok());

  // Shutdown must flush the engine and deliver all pipelined SCORE_RESULTs
  // before the GOODBYE.
  ASSERT_TRUE(client.Shutdown().ok());
  std::vector<serve::ScoreResult> results = client.TakeResults();
  EXPECT_EQ(results.size(), static_cast<size_t>(kScores));
  for (const serve::ScoreResult& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_EQ(client.inflight_scores(), 0u);
  harness.Stop();
  EXPECT_EQ(harness.engine().metrics().scores_completed.load(),
            static_cast<uint64_t>(kScores));
}

TEST(ServerTest, UnresponsivePeerHitsClientDeadline) {
  // A listener that accepts (via the kernel backlog) but never reads or
  // answers: every RPC must fail with kDeadlineExceeded, not hang.
  UniqueFd listen_fd;
  int port = 0;
  ASSERT_TRUE(ListenTcp("127.0.0.1", 0, /*backlog=*/4, &listen_fd, &port).ok());

  ClientOptions options;
  options.port = port;
  options.io_timeout_ms = 100;
  options.reconnect_on_broken_pipe = false;
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());
  Status status = client.Ping();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
}

TEST(ServerTest, ConnectToDeadPortFailsAfterRetries) {
  // Bind-then-close to get a port that refuses connections.
  int dead_port = 0;
  {
    UniqueFd listen_fd;
    ASSERT_TRUE(
        ListenTcp("127.0.0.1", 0, /*backlog=*/1, &listen_fd, &dead_port).ok());
  }
  ClientOptions options;
  options.port = dead_port;
  options.connect_retries = 2;
  options.retry_backoff_ms = 1;
  Client client(options);
  EXPECT_FALSE(client.Connect().ok());
  EXPECT_FALSE(client.connected());
}

TEST(ServerTest, ClientReconnectsOnceOnBrokenPipe) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());

  client.InjectBrokenPipeForTest();
  // The next send hits the wrecked socket, reconnects, and retries.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.connected());

  // Session state lives in the engine, so a reconnected client can keep
  // scoring sessions it began before the break.
  graph::GraphDataset dataset = TinyDataset();
  const graph::TemporalGraph& g = dataset[0].graph;
  ASSERT_TRUE(client.IngestBatch({BeginEvent(1, g)}).ok());
  client.InjectBrokenPipeForTest();
  serve::ScoreResult result;
  ASSERT_TRUE(client.Score(1, -1, &result).ok());
  EXPECT_TRUE(result.status.ok());
}

TEST(ServerTest, ServesManyConnectionsConcurrently) {
  ServerHarness harness;
  graph::GraphDataset dataset = TinyDataset(/*count=*/6);

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(harness.client_options());
      if (!client.Connect().ok()) {
        ++failures;
        return;
      }
      for (size_t i = static_cast<size_t>(c); i < dataset.size();
           i += kClients) {
        const uint64_t id = i + 1;
        const graph::TemporalGraph& g = dataset[i].graph;
        std::vector<serve::Event> events;
        events.push_back(BeginEvent(id, g));
        for (const graph::TemporalEdge& e : g.edges()) {
          events.push_back(EdgeEvent(id, e.src, e.dst, e.time));
        }
        events.push_back(ScoreEvent(id, dataset[i].label));
        events.push_back(EndEvent(id));
        if (!client.IngestAll(events).ok() || !client.DrainResults().ok()) {
          ++failures;
          return;
        }
        for (const serve::ScoreResult& result : client.TakeResults()) {
          if (!result.status.ok()) ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(harness.engine().metrics().scores_completed.load(),
            dataset.size());
}

}  // namespace
}  // namespace tpgnn::net
