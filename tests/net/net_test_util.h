#ifndef TPGNN_TESTS_NET_NET_TEST_UTIL_H_
#define TPGNN_TESTS_NET_NET_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "graph/temporal_graph.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/event.h"
#include "serve/inference_engine.h"
#include "serve/serve_test_util.h"

// Shared helpers for the network tests: event builders mirroring the engine
// tests, and a harness that runs a real Server on an ephemeral loopback
// port in a background thread.

namespace tpgnn::net {

inline serve::Event BeginEvent(uint64_t id, const graph::TemporalGraph& g,
                               double time = 0.0) {
  serve::Event e;
  e.kind = serve::Event::Kind::kBegin;
  e.session_id = id;
  e.time = time;
  e.num_nodes = g.num_nodes();
  e.feature_dim = g.feature_dim();
  e.features = serve::AllNodeFeatures(g);
  return e;
}

inline serve::Event EdgeEvent(uint64_t id, int64_t src, int64_t dst,
                              double edge_time, double time = 0.0) {
  serve::Event e;
  e.kind = serve::Event::Kind::kEdge;
  e.session_id = id;
  e.time = time;
  e.src = src;
  e.dst = dst;
  e.edge_time = edge_time;
  return e;
}

inline serve::Event ScoreEvent(uint64_t id, int label = -1) {
  serve::Event e;
  e.kind = serve::Event::Kind::kScore;
  e.session_id = id;
  e.label = label;
  return e;
}

inline serve::Event EndEvent(uint64_t id) {
  serve::Event e;
  e.kind = serve::Event::Kind::kEnd;
  e.session_id = id;
  return e;
}

// A live server on 127.0.0.1:<ephemeral> backed by its own engine, with the
// poll loop on a background thread. Stop() (or the destructor) requests a
// graceful shutdown and joins.
class ServerHarness {
 public:
  explicit ServerHarness(const serve::EngineOptions& engine_options = {},
                         ServerOptions server_options = {},
                         uint64_t seed = 5)
      : engine_(serve::TinyServeConfig(), seed, engine_options) {
    server_options.port = 0;
    server_ = std::make_unique<Server>(&engine_, server_options);
    Status status = server_->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "harness start failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerHarness() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  int port() const { return server_->port(); }
  serve::InferenceEngine& engine() { return engine_; }
  Server& server() { return *server_; }

  ClientOptions client_options() const {
    ClientOptions options;
    options.port = port();
    return options;
  }

 private:
  serve::InferenceEngine engine_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

}  // namespace tpgnn::net

#endif  // TPGNN_TESTS_NET_NET_TEST_UTIL_H_
