// Wire-protocol round-trips and framing rules: every frame type encodes and
// decodes to an identical Frame, prefixes report need-more instead of
// erroring, and each class of header/payload corruption maps to its
// documented typed error.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/protocol.h"
#include "serve/event.h"

namespace tpgnn::net {
namespace {

std::vector<uint8_t> Encode(const Frame& frame) {
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  return wire;
}

// Decodes a complete single-frame buffer, asserting full consumption.
Frame DecodeAll(const std::vector<uint8_t>& wire) {
  Frame frame;
  size_t consumed = 0;
  Status status =
      DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes, &frame,
                  &consumed);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(consumed, wire.size());
  return frame;
}

serve::Event MakeBegin() {
  serve::Event e;
  e.kind = serve::Event::Kind::kBegin;
  e.session_id = 42;
  e.time = 1.5;
  e.num_nodes = 4;
  e.feature_dim = 3;
  e.features = {{0, {1.0f, -2.5f, 0.0f}}, {3, {0.25f, 7.0f, -1.0f}}};
  return e;
}

serve::Event MakeEdge() {
  serve::Event e;
  e.kind = serve::Event::Kind::kEdge;
  e.session_id = 42;
  e.time = 2.0;
  e.src = 0;
  e.dst = 3;
  e.edge_time = 0.125;
  return e;
}

TEST(ProtocolTest, PingRoundTrip) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 0xDEADBEEFCAFEull;
  Frame decoded = DecodeAll(Encode(ping));
  EXPECT_EQ(decoded.type, FrameType::kPing);
  EXPECT_EQ(decoded.request_id, ping.request_id);
}

TEST(ProtocolTest, IngestBatchRoundTripAllEventKinds) {
  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = 7;
  batch.events.push_back(MakeBegin());
  batch.events.push_back(MakeEdge());
  serve::Event score;
  score.kind = serve::Event::Kind::kScore;
  score.session_id = 42;
  score.time = 3.0;
  score.label = 1;
  batch.events.push_back(score);
  serve::Event end;
  end.kind = serve::Event::Kind::kEnd;
  end.session_id = 42;
  end.time = 4.0;
  batch.events.push_back(end);

  Frame decoded = DecodeAll(Encode(batch));
  EXPECT_EQ(decoded.type, FrameType::kIngestBatch);
  EXPECT_EQ(decoded.request_id, 7u);
  ASSERT_EQ(decoded.events.size(), 4u);

  const serve::Event& begin = decoded.events[0];
  EXPECT_EQ(begin.kind, serve::Event::Kind::kBegin);
  EXPECT_EQ(begin.session_id, 42u);
  EXPECT_EQ(begin.time, 1.5);
  EXPECT_EQ(begin.num_nodes, 4);
  EXPECT_EQ(begin.feature_dim, 3);
  ASSERT_EQ(begin.features.size(), 2u);
  EXPECT_EQ(begin.features[0].node, 0);
  EXPECT_EQ(begin.features[1].node, 3);
  // Floats travel as raw IEEE-754 bits: exact equality.
  EXPECT_EQ(begin.features[0].features,
            (std::vector<float>{1.0f, -2.5f, 0.0f}));
  EXPECT_EQ(begin.features[1].features,
            (std::vector<float>{0.25f, 7.0f, -1.0f}));

  const serve::Event& edge = decoded.events[1];
  EXPECT_EQ(edge.kind, serve::Event::Kind::kEdge);
  EXPECT_EQ(edge.src, 0);
  EXPECT_EQ(edge.dst, 3);
  EXPECT_EQ(edge.edge_time, 0.125);
  EXPECT_EQ(edge.time, 2.0);

  EXPECT_EQ(decoded.events[2].kind, serve::Event::Kind::kScore);
  EXPECT_EQ(decoded.events[2].label, 1);
  EXPECT_EQ(decoded.events[3].kind, serve::Event::Kind::kEnd);
}

TEST(ProtocolTest, ScoreAndScoreResultRoundTrip) {
  Frame score;
  score.type = FrameType::kScore;
  score.request_id = 9;
  score.session_id = 1234567890123ull;
  score.label = 0;
  Frame decoded = DecodeAll(Encode(score));
  EXPECT_EQ(decoded.type, FrameType::kScore);
  EXPECT_EQ(decoded.session_id, score.session_id);
  EXPECT_EQ(decoded.label, 0);

  Frame result;
  result.type = FrameType::kScoreResult;
  serve::ScoreResult ok;
  ok.session_id = 42;
  ok.logit = -0.75f;
  ok.probability = 0.3208213f;
  ok.edges_scored = 17;
  ok.label = 1;
  ok.queue_micros = 12.5;
  ok.score_micros = 480.0;
  serve::ScoreResult bad;
  bad.session_id = 43;
  bad.status = Status::NotFound("unknown session 43");
  result.results = {ok, bad};

  decoded = DecodeAll(Encode(result));
  ASSERT_EQ(decoded.results.size(), 2u);
  EXPECT_TRUE(decoded.results[0].status.ok());
  EXPECT_EQ(decoded.results[0].session_id, 42u);
  EXPECT_EQ(decoded.results[0].logit, -0.75f);
  EXPECT_EQ(decoded.results[0].probability, 0.3208213f);
  EXPECT_EQ(decoded.results[0].edges_scored, 17);
  EXPECT_EQ(decoded.results[0].label, 1);
  EXPECT_EQ(decoded.results[0].queue_micros, 12.5);
  EXPECT_EQ(decoded.results[0].score_micros, 480.0);
  EXPECT_EQ(decoded.results[1].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.results[1].status.message(), "unknown session 43");
}

TEST(ProtocolTest, ControlFramesRoundTrip) {
  Frame ack;
  ack.type = FrameType::kIngestAck;
  ack.request_id = 3;
  ack.status_code = StatusCode::kNotFound;
  ack.events_applied = 5;
  ack.text = "unknown session";
  Frame decoded = DecodeAll(Encode(ack));
  EXPECT_EQ(decoded.type, FrameType::kIngestAck);
  EXPECT_EQ(decoded.status_code, StatusCode::kNotFound);
  EXPECT_EQ(decoded.events_applied, 5u);
  EXPECT_EQ(decoded.text, "unknown session");

  Frame overloaded;
  overloaded.type = FrameType::kOverloaded;
  overloaded.request_id = 4;
  overloaded.events_applied = 2;
  decoded = DecodeAll(Encode(overloaded));
  EXPECT_EQ(decoded.type, FrameType::kOverloaded);
  EXPECT_EQ(decoded.request_id, 4u);
  EXPECT_EQ(decoded.events_applied, 2u);

  Frame metrics;
  metrics.type = FrameType::kMetricsResponse;
  metrics.text = "{\"counters\": {}}";
  decoded = DecodeAll(Encode(metrics));
  EXPECT_EQ(decoded.type, FrameType::kMetricsResponse);
  EXPECT_EQ(decoded.text, metrics.text);

  for (FrameType type : {FrameType::kPong, FrameType::kMetricsRequest,
                         FrameType::kShutdown, FrameType::kGoodbye,
                         FrameType::kError}) {
    Frame frame;
    frame.type = type;
    EXPECT_EQ(DecodeAll(Encode(frame)).type, type) << FrameTypeName(type);
  }
}

TEST(ProtocolTest, MigrationFramesRoundTrip) {
  // The cluster router's session-migration handshake: EXPORT a session,
  // receive its opaque state blob, IMPORT it on another backend. The blob
  // must travel byte-exact — it carries raw fold-state float bits.
  Frame request;
  request.type = FrameType::kSessionExport;
  request.request_id = 11;
  request.session_id = 0xFEEDFACE01ull;
  Frame decoded = DecodeAll(Encode(request));
  EXPECT_EQ(decoded.type, FrameType::kSessionExport);
  EXPECT_EQ(decoded.request_id, 11u);
  EXPECT_EQ(decoded.session_id, request.session_id);

  Frame state;
  state.type = FrameType::kSessionState;
  state.request_id = 11;
  state.status_code = StatusCode::kOk;
  state.blob = {0x54, 0x50, 0x53, 0x53, 0x00, 0xFF, 0x80, 0x7F};
  decoded = DecodeAll(Encode(state));
  EXPECT_EQ(decoded.type, FrameType::kSessionState);
  EXPECT_EQ(decoded.request_id, 11u);
  EXPECT_EQ(decoded.status_code, StatusCode::kOk);
  EXPECT_EQ(decoded.blob, state.blob);

  Frame failed_state;
  failed_state.type = FrameType::kSessionState;
  failed_state.request_id = 12;
  failed_state.status_code = StatusCode::kNotFound;
  failed_state.text = "unknown session 99";
  decoded = DecodeAll(Encode(failed_state));
  EXPECT_EQ(decoded.type, FrameType::kSessionState);
  EXPECT_EQ(decoded.status_code, StatusCode::kNotFound);
  EXPECT_EQ(decoded.text, failed_state.text);
  EXPECT_TRUE(decoded.blob.empty());

  Frame import;
  import.type = FrameType::kSessionImport;
  import.request_id = 13;
  import.blob = state.blob;
  decoded = DecodeAll(Encode(import));
  EXPECT_EQ(decoded.type, FrameType::kSessionImport);
  EXPECT_EQ(decoded.request_id, 13u);
  EXPECT_EQ(decoded.blob, import.blob);
}

TEST(ProtocolTest, ModelAdminFramesRoundTrip) {
  // The model lifecycle admin surface (DESIGN.md §4.8): LOAD registers a
  // checkpoint, ACTIVATE runs one ModelAdminMode verb, STATUS fetches the
  // registry JSON as a MODEL_INFO reply.
  Frame load;
  load.type = FrameType::kModelLoad;
  load.request_id = 31;
  load.name = "v2";
  load.text = "/ckpt/model_v2.ckpt";
  Frame decoded = DecodeAll(Encode(load));
  EXPECT_EQ(decoded.type, FrameType::kModelLoad);
  EXPECT_EQ(decoded.request_id, 31u);
  EXPECT_EQ(decoded.name, "v2");
  EXPECT_EQ(decoded.text, load.text);

  Frame activate;
  activate.type = FrameType::kModelActivate;
  activate.request_id = 32;
  activate.name = "v2";
  activate.mode = static_cast<uint8_t>(ModelAdminMode::kSetCandidate);
  activate.fraction = 0.125;  // Exact in binary: byte-exact round-trip.
  decoded = DecodeAll(Encode(activate));
  EXPECT_EQ(decoded.type, FrameType::kModelActivate);
  EXPECT_EQ(decoded.request_id, 32u);
  EXPECT_EQ(decoded.name, "v2");
  EXPECT_EQ(decoded.mode,
            static_cast<uint8_t>(ModelAdminMode::kSetCandidate));
  EXPECT_EQ(decoded.fraction, 0.125);

  Frame status;
  status.type = FrameType::kModelStatus;
  status.request_id = 33;
  decoded = DecodeAll(Encode(status));
  EXPECT_EQ(decoded.type, FrameType::kModelStatus);
  EXPECT_EQ(decoded.request_id, 33u);

  Frame info;
  info.type = FrameType::kModelInfo;
  info.request_id = 33;
  info.status_code = StatusCode::kOk;
  info.text = "{\"primary\": \"v2\"}";
  decoded = DecodeAll(Encode(info));
  EXPECT_EQ(decoded.type, FrameType::kModelInfo);
  EXPECT_EQ(decoded.request_id, 33u);
  EXPECT_EQ(decoded.status_code, StatusCode::kOk);
  EXPECT_EQ(decoded.text, info.text);
}

TEST(ProtocolTest, ModelAdminValidationRejectsHostileFields) {
  Frame frame;
  size_t consumed = 0;

  // A version name past the cap cannot drive an allocation downstream.
  Frame long_name;
  long_name.type = FrameType::kModelLoad;
  long_name.request_id = 1;
  long_name.name.assign(kMaxModelNameBytes + 1, 'x');
  std::vector<uint8_t> wire = Encode(long_name);
  Status s = DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                         &frame, &consumed);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();

  // An out-of-range admin verb fails at decode, before any dispatch.
  Frame bad_mode;
  bad_mode.type = FrameType::kModelActivate;
  bad_mode.request_id = 2;
  bad_mode.name = "v2";
  bad_mode.mode = kMaxModelAdminMode + 1;
  wire = Encode(bad_mode);
  s = DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes, &frame,
                  &consumed);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();

  // MODEL_INFO with an unknown status byte is corruption, not a status.
  Frame info;
  info.type = FrameType::kModelInfo;
  info.request_id = 3;
  info.text = "{}";
  wire = Encode(info);
  wire[kFrameHeaderBytes + 1] = 0xEE;  // Status byte follows the rid varint.
  s = DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes, &frame,
                  &consumed);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
}

TEST(ProtocolTest, EveryPrefixReportsNeedMore) {
  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = 1;
  batch.events = {MakeBegin(), MakeEdge()};
  const std::vector<uint8_t> wire = Encode(batch);

  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    size_t consumed = 1;  // Poisoned; must be reset to 0.
    Status status = DecodeFrame(wire.data(), len, kDefaultMaxPayloadBytes,
                                &frame, &consumed);
    EXPECT_TRUE(status.ok()) << "prefix " << len << ": " << status.ToString();
    EXPECT_EQ(consumed, 0u) << "prefix " << len;
  }
}

TEST(ProtocolTest, BackToBackFramesDecodeOneAtATime) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  Frame shutdown;
  shutdown.type = FrameType::kShutdown;

  std::vector<uint8_t> wire = Encode(ping);
  const size_t first_size = wire.size();
  EncodeFrame(shutdown, &wire);

  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &frame, &consumed)
                  .ok());
  EXPECT_EQ(consumed, first_size);
  EXPECT_EQ(frame.type, FrameType::kPing);

  ASSERT_TRUE(DecodeFrame(wire.data() + consumed, wire.size() - consumed,
                          kDefaultMaxPayloadBytes, &frame, &consumed)
                  .ok());
  EXPECT_EQ(frame.type, FrameType::kShutdown);
}

TEST(ProtocolTest, BadMagicVersionReservedOrTypeIsDataLoss) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  const std::vector<uint8_t> good = Encode(ping);

  auto expect_data_loss = [](std::vector<uint8_t> wire, const char* what) {
    Frame frame;
    size_t consumed = 0;
    Status status = DecodeFrame(wire.data(), wire.size(),
                                kDefaultMaxPayloadBytes, &frame, &consumed);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << what;
  };

  std::vector<uint8_t> wire = good;
  wire[0] ^= 0xFF;  // Magic.
  expect_data_loss(wire, "magic");

  wire = good;
  wire[4] = kProtocolVersion + 1;  // Version.
  expect_data_loss(wire, "version");

  wire = good;
  wire[5] = 200;  // Unknown frame type.
  expect_data_loss(wire, "type");

  wire = good;
  wire[6] = 1;  // Reserved bits must be zero.
  expect_data_loss(wire, "reserved");
}

TEST(ProtocolTest, TrailingPayloadBytesAreDataLoss) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  std::vector<uint8_t> wire = Encode(ping);
  // Grow the declared payload by one byte and append filler: the payload
  // now over-runs the frame's actual content.
  uint32_t payload_len;
  std::memcpy(&payload_len, wire.data() + 8, sizeof(payload_len));
  ++payload_len;
  std::memcpy(wire.data() + 8, &payload_len, sizeof(payload_len));
  wire.push_back(0x00);

  Frame frame;
  size_t consumed = 0;
  Status status = DecodeFrame(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                              &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, OversizedPayloadLengthIsInvalidArgumentFromHeaderAlone) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  std::vector<uint8_t> wire = Encode(ping);
  const uint32_t huge = 1u << 20;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));
  wire.resize(kFrameHeaderBytes);  // Header only: no payload arrived yet.

  Frame frame;
  size_t consumed = 0;
  Status status = DecodeFrame(wire.data(), wire.size(),
                              /*max_payload_bytes=*/1024, &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tpgnn::net
