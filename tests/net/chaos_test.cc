// Seeded chaos: replay an EventReplayer stream through the full TCP stack
// while failpoints inject partial I/O, delays, allocation pressure, queue
// rejections, scoring failures, and corrupted wire frames. The invariants
// that must survive every schedule:
//
//   * no crash (the whole binary runs under ASan/UBSan and TSan in CI);
//   * every accepted event is scored exactly once — shed events are
//     reported via events_applied and retried, never dropped or doubled;
//   * every successful score is bit-identical to the fault-free in-process
//     reference (the prefix table of loopback_parity_test);
//   * serve::Metrics error counters equal the injected-fault fire counts
//     exactly — no fault vanishes, none is double-counted.
//
// Determinism: with a fixed failpoint seed the fire schedule is a pure
// function of per-site evaluation indices, so single-threaded replays are
// bit-reproducible end to end (SameSeedSameOutcome pins this down).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "net/client.h"
#include "net/server.h"
#include "net_test_util.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "serve/serve_test_util.h"
#include "util/env.h"
#include "util/failpoint.h"

namespace tpgnn::net {
namespace {

using failpoint::Kind;
using failpoint::ScopedFailpoint;

constexpr uint64_t kSeed = 5;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    failpoint::ResetCounters();
    failpoint::SetSeed(1);
  }
  void TearDown() override {
    failpoint::ClearAll();
    failpoint::ResetCounters();
  }
};

serve::EventReplayer MakeReplayer(const graph::GraphDataset& dataset) {
  serve::ReplayOptions options;
  options.session_start_interval = 0.25;
  options.score_every_edges = 4;
  return serve::EventReplayer(dataset, options);
}

struct PrefixScore {
  float logit = 0.0f;
  float probability = 0.0f;
};

// (session_id, edges ingested at scoring time) -> fault-free score.
using PrefixTable = std::map<std::pair<uint64_t, int64_t>, PrefixScore>;

// Fault-free ground truth: must run with no failpoints installed.
void BuildPrefixTable(const std::vector<serve::Event>& events,
                      PrefixTable* table) {
  ASSERT_EQ(failpoint::ActiveCount(), 0u)
      << "reference table must be built fault-free";
  serve::InferenceEngine engine(serve::TinyServeConfig(), kSeed, {});
  std::map<uint64_t, int64_t> edges_seen;
  std::vector<serve::ScoreResult> results;

  auto score_now = [&](uint64_t session_id) {
    results.clear();
    ASSERT_TRUE(engine.Ingest(ScoreEvent(session_id)).ok());
    engine.Flush(&results);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
    (*table)[{session_id, edges_seen[session_id]}] = {results[0].logit,
                                                      results[0].probability};
  };

  for (const serve::Event& event : events) {
    switch (event.kind) {
      case serve::Event::Kind::kBegin:
        ASSERT_TRUE(engine.Ingest(event).ok());
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kEdge:
        ASSERT_TRUE(engine.Ingest(event).ok());
        ++edges_seen[event.session_id];
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kScore:
      case serve::Event::Kind::kEnd:
        break;
    }
  }
}

// Every OK result must be bitwise equal to the reference score of its
// session at its arrival prefix. `*failed_out` (optional) receives the
// number of failed results, each of which must carry the injected-fault
// marker of `injected_site` (pass nullptr when no failures are expected).
void CheckResults(const PrefixTable& table,
                  const std::vector<serve::ScoreResult>& results,
                  size_t expected_count, const char* injected_site,
                  size_t* failed_out = nullptr) {
  EXPECT_EQ(results.size(), expected_count);
  size_t failed = 0;
  for (const serve::ScoreResult& result : results) {
    if (!result.status.ok()) {
      ++failed;
      ASSERT_NE(injected_site, nullptr) << result.status.ToString();
      EXPECT_NE(result.status.message().find("injected fault"),
                std::string::npos)
          << result.status.ToString();
      EXPECT_NE(result.status.message().find(injected_site),
                std::string::npos)
          << result.status.ToString();
      continue;
    }
    const auto it = table.find({result.session_id, result.edges_scored});
    ASSERT_NE(it, table.end()) << "session " << result.session_id
                               << " prefix " << result.edges_scored;
    EXPECT_EQ(it->second.logit, result.logit)  // Bitwise: floats travel raw.
        << "session " << result.session_id << " prefix "
        << result.edges_scored;
    EXPECT_EQ(it->second.probability, result.probability);
  }
  if (failed_out != nullptr) {
    *failed_out = failed;
  }
}

// Engine/server options with caps far above what the streams here can
// reach, so genuine backpressure never fires and every overload counter
// increment is attributable to an injected fault.
serve::EngineOptions UncappedEngine() {
  serve::EngineOptions options;
  options.max_pending_scores = 1u << 20;
  return options;
}

ServerOptions UncappedServer() {
  ServerOptions options;
  options.max_inflight_scores = 1u << 20;
  return options;
}

// Injected engine-queue rejections surface as real OVERLOADED frames; the
// client's shed-and-retry path must still deliver every score exactly once,
// and overload_rejections must count exactly the injected fires.
TEST_F(ChaosTest, InjectedOverloadIsRetriedAndAccountedExactly) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/11);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
  failpoint::SetSeed(41);
  ScopedFailpoint overload("engine.score_enqueue", 0.2, Kind::kReturnError);

  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  { Status st = client.IngestAll(replayer.events()); ASSERT_TRUE(st.ok()) << st.ToString(); }
  { Status st = client.DrainResults(); ASSERT_TRUE(st.ok()) << st.ToString(); }

  CheckResults(table, client.TakeResults(), replayer.num_score_requests(),
               nullptr);
  const serve::Metrics& metrics = harness.engine().metrics();
  EXPECT_GT(overload.fires(), 0u);
  EXPECT_EQ(metrics.overload_rejections.load(), overload.fires());
  EXPECT_EQ(metrics.scores_failed.load(), 0u);
  EXPECT_EQ(metrics.protocol_errors.load(), 0u);
  EXPECT_EQ(metrics.scores_completed.load(), replayer.num_score_requests());
}

// Injected scoring failures come back as typed SCORE_RESULT errors naming
// the site; scores_failed counts exactly the fires and the OK remainder is
// still bit-identical to the reference.
TEST_F(ChaosTest, InjectedScoreFailuresAreTypedAndCountedExactly) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/11);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
  failpoint::SetSeed(43);
  ScopedFailpoint fail("shard.score", 0.3, Kind::kReturnError);

  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  { Status st = client.IngestAll(replayer.events()); ASSERT_TRUE(st.ok()) << st.ToString(); }
  { Status st = client.DrainResults(); ASSERT_TRUE(st.ok()) << st.ToString(); }

  size_t failed = 0;
  CheckResults(table, client.TakeResults(), replayer.num_score_requests(),
               "shard.score", &failed);
  const serve::Metrics& metrics = harness.engine().metrics();
  EXPECT_GT(fail.fires(), 0u);
  EXPECT_EQ(failed, fail.fires());
  EXPECT_EQ(metrics.scores_failed.load(), fail.fires());
  EXPECT_EQ(metrics.scores_completed.load(),
            replayer.num_score_requests() - fail.fires());
  EXPECT_EQ(metrics.protocol_errors.load(), 0u);
}

// Partial reads/writes, dispatch stalls, and pool allocation failures are
// *recoverable* faults: the stack must absorb them invisibly. Every score
// arrives, bit-identical, and every error counter stays at zero.
TEST_F(ChaosTest, IoFaultScheduleIsInvisibleToResults) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/13);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
  failpoint::SetSeed(47);
  ScopedFailpoint recv("net.recv", 0.25, Kind::kShortIo, /*arg=*/7);
  ScopedFailpoint send("net.send", 0.25, Kind::kShortIo, /*arg=*/5);
  ScopedFailpoint send_all("net.send_all", 0.2, Kind::kShortIo, /*arg=*/9);
  ScopedFailpoint recv_some("net.recv_some", 0.2, Kind::kShortIo, /*arg=*/11);
  ScopedFailpoint dispatch("server.dispatch", 0.05, Kind::kDelay,
                           /*arg=*/300);
  ScopedFailpoint pool("pool.acquire", 0.3, Kind::kAllocFail);

  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  { Status st = client.IngestAll(replayer.events()); ASSERT_TRUE(st.ok()) << st.ToString(); }
  { Status st = client.DrainResults(); ASSERT_TRUE(st.ok()) << st.ToString(); }

  CheckResults(table, client.TakeResults(), replayer.num_score_requests(),
               nullptr);
  // The schedule actually bit: the wire faults and pool faults fired.
  EXPECT_GT(recv.fires() + recv_some.fires(), 0u);
  EXPECT_GT(send.fires() + send_all.fires(), 0u);
  EXPECT_GT(pool.fires(), 0u);
  const serve::Metrics& metrics = harness.engine().metrics();
  EXPECT_EQ(metrics.protocol_errors.load(), 0u);
  EXPECT_EQ(metrics.scores_failed.load(), 0u);
  EXPECT_EQ(metrics.overload_rejections.load(), 0u);
}

// Corrupted frames from the client always surface as a typed ERROR + torn
// connection, protocol_errors counts exactly the injected fires, and a
// fresh connection recovers every time.
TEST_F(ChaosTest, CorruptClientFramesAreTypedCountedAndRecoverable) {
  ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
  failpoint::SetSeed(53);

  constexpr uint64_t kCorruptions = 3;
  ClientOptions options = harness.client_options();
  options.reconnect_on_broken_pipe = false;  // Surface every failure.
  for (uint64_t i = 0; i < kCorruptions; ++i) {
    Client client(options);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Ping().ok());
    {
      ScopedFailpoint corrupt("client.corrupt_frame", 1.0, Kind::kCorruptByte,
                              /*arg=*/0, /*max_fires=*/1);
      Status s = client.Ping();
      ASSERT_FALSE(s.ok());
      EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
      EXPECT_EQ(corrupt.fires(), 1u);
    }
    // The torn connection is gone for good; a new one works immediately.
    Client fresh(options);
    ASSERT_TRUE(fresh.Connect().ok());
    EXPECT_TRUE(fresh.Ping().ok());
  }
  EXPECT_EQ(harness.engine().metrics().protocol_errors.load(), kCorruptions);
  EXPECT_EQ(failpoint::FireCount("client.corrupt_frame"), kCorruptions);
}

// Corruption on the server->client leg is detected by the client decoder as
// a typed kDataLoss; the client tears the stream down and reconnects clean.
TEST_F(ChaosTest, CorruptServerFramesAreDetectedByClient) {
  ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
  failpoint::SetSeed(59);

  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());
  {
    ScopedFailpoint corrupt("server.corrupt_frame", 1.0, Kind::kCorruptByte,
                            /*arg=*/0, /*max_fires=*/1);
    Status s = client.Ping();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
    EXPECT_EQ(corrupt.fires(), 1u);
  }
  EXPECT_FALSE(client.connected());  // Decoder failure tears the stream down.
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());
}

// Injected connect flaps are absorbed by Connect()'s own retry loop as long
// as the flap count stays below the attempt budget.
TEST_F(ChaosTest, ConnectFlapsAreAbsorbedByRetries) {
  ServerHarness harness({}, {}, kSeed);
  failpoint::SetSeed(61);
  ScopedFailpoint flap("client.connect", 1.0, Kind::kReturnError, /*arg=*/0,
                       /*max_fires=*/2);

  ClientOptions options = harness.client_options();
  options.connect_retries = 3;
  options.retry_backoff_ms = 1;
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(flap.fires(), 2u);
  EXPECT_TRUE(client.Ping().ok());

  // One more flap than attempts: Connect must fail typed.
  failpoint::SetSeed(61);
  ScopedFailpoint wall("client.connect", 1.0, Kind::kReturnError, /*arg=*/0,
                       /*max_fires=*/4);
  Client blocked(options);
  Status s = blocked.Connect();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("client.connect"), std::string::npos);
}

// With a fixed seed and a single-threaded drain (max_batch = 1), the whole
// chaos run is reproducible: the same requests fail, the same fire counts
// accumulate, and the same scores come out bit-identical.
TEST_F(ChaosTest, SameSeedSameOutcome) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/4, /*seed=*/17);
  serve::EventReplayer replayer = MakeReplayer(dataset);

  struct RunRecord {
    std::vector<int> ingest_codes;
    std::vector<std::pair<bool, float>> scores;  // (ok, logit).
    uint64_t enqueue_fires = 0;
    uint64_t score_fires = 0;
    bool operator==(const RunRecord& other) const {
      return ingest_codes == other.ingest_codes && scores == other.scores &&
             enqueue_fires == other.enqueue_fires &&
             score_fires == other.score_fires;
    }
  };

  auto run = [&](uint64_t seed) {
    failpoint::SetSeed(seed);
    ScopedFailpoint enqueue("engine.score_enqueue", 0.25, Kind::kReturnError);
    ScopedFailpoint score("shard.score", 0.25, Kind::kReturnError);
    serve::EngineOptions options = UncappedEngine();
    options.max_batch = 1;  // Sequential drain: deterministic fire order.
    serve::InferenceEngine engine(serve::TinyServeConfig(), kSeed, options);
    RunRecord record;
    std::vector<serve::ScoreResult> results;
    for (const serve::Event& event : replayer.events()) {
      record.ingest_codes.push_back(
          static_cast<int>(engine.Ingest(event).code()));
    }
    engine.Flush(&results);
    for (const serve::ScoreResult& r : results) {
      record.scores.emplace_back(r.status.ok(), r.logit);
    }
    record.enqueue_fires = enqueue.fires();
    record.score_fires = score.fires();
    return record;
  };

  const RunRecord a = run(71);
  const RunRecord b = run(71);
  const RunRecord c = run(72);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.enqueue_fires + a.score_fires, 0u);
  EXPECT_FALSE(a == c);  // A different seed draws a different schedule.
}

// The flagship sweep: all fault families at once, across three distinct
// seeds (CI overrides the seed via TPGNN_CHAOS_SEED to widen coverage under
// ASan/UBSan and TSan). Every invariant must hold for every seed.
TEST_F(ChaosTest, SweepAllFaultFamiliesAcrossSeeds) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/19);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  std::vector<uint64_t> seeds = {101, 202, 303};
  if (const int64_t env = GetEnvInt("TPGNN_CHAOS_SEED", -1); env >= 0) {
    seeds = {static_cast<uint64_t>(env)};
  }

  for (const uint64_t seed : seeds) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ServerHarness harness(UncappedEngine(), UncappedServer(), kSeed);
    failpoint::SetSeed(seed);
    ScopedFailpoint recv("net.recv", 0.15, Kind::kShortIo, /*arg=*/7);
    ScopedFailpoint send("net.send", 0.15, Kind::kShortIo, /*arg=*/5);
    // Every client write is truncated to 9 bytes: I/O-fault coverage must
    // not depend on how many syscalls the kernel's segment coalescing
    // happens to leave for the probabilistic sites (under sanitizers the
    // timing shifts enough that a low-probability schedule can evaluate a
    // handful of times and never fire).
    ScopedFailpoint send_all("net.send_all", 1.0, Kind::kShortIo, /*arg=*/9);
    ScopedFailpoint recv_some("net.recv_some", 0.1, Kind::kShortIo,
                              /*arg=*/11);
    ScopedFailpoint dispatch("server.dispatch", 0.02, Kind::kDelay,
                             /*arg=*/200);
    ScopedFailpoint pool("pool.acquire", 0.2, Kind::kAllocFail);
    ScopedFailpoint enqueue("engine.score_enqueue", 0.05, Kind::kReturnError);
    ScopedFailpoint begin("shard.begin", 0.2, Kind::kReturnError);

    Client client(harness.client_options());
    ASSERT_TRUE(client.Connect().ok());
    { Status st = client.IngestAll(replayer.events()); ASSERT_TRUE(st.ok()) << st.ToString(); }
    { Status st = client.DrainResults(); ASSERT_TRUE(st.ok()) << st.ToString(); }

    // Exactly once, bit-identical, despite every fault family firing.
    CheckResults(table, client.TakeResults(), replayer.num_score_requests(),
                 nullptr);
    const serve::Metrics& metrics = harness.engine().metrics();
    EXPECT_EQ(metrics.scores_completed.load(), replayer.num_score_requests());
    EXPECT_EQ(metrics.scores_failed.load(), 0u);
    EXPECT_EQ(metrics.protocol_errors.load(), 0u);
    // Every overload rejection is attributable to an injected fire — the
    // genuine caps are uncapped in this harness.
    EXPECT_EQ(metrics.overload_rejections.load(),
              enqueue.fires() + begin.fires());
    EXPECT_GT(enqueue.fires() + begin.fires(), 0u);
    // send_all fires on every write, so short-I/O coverage is guaranteed
    // deterministically; recv/send/recv_some stay probabilistic extras.
    EXPECT_GT(send_all.fires(), 0u);
    (void)recv;
    (void)send;
    (void)recv_some;
  }
}

}  // namespace
}  // namespace tpgnn::net
