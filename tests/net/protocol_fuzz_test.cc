// Adversarial-input sweep over DecodeFrame: truncations, single-bit flips,
// oversized length prefixes, wrong versions, and deterministic random
// garbage. The contract under attack: every outcome is kOk (complete frame
// or need-more), kDataLoss, or kInvalidArgument — never a crash, abort, or
// out-of-bounds access. CI runs this binary under ASan/UBSan, which turns
// any OOB read the assertions cannot see into a hard failure.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/protocol.h"
#include "serve/event.h"

namespace tpgnn::net {
namespace {

// Deterministic PRNG (splitmix64) so failures reproduce exactly.
uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Decodes and asserts the documented outcome set; returns the status code.
StatusCode DecodeExpectingNoCrash(const std::vector<uint8_t>& wire) {
  Frame frame;
  size_t consumed = 0;
  Status status = DecodeFrame(wire.data(), wire.size(),
                              kDefaultMaxPayloadBytes, &frame, &consumed);
  const StatusCode code = status.code();
  EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kDataLoss ||
              code == StatusCode::kInvalidArgument)
      << status.ToString();
  if (code == StatusCode::kOk && consumed > 0) {
    EXPECT_LE(consumed, wire.size());
  }
  return code;
}

// A corpus exercising every frame type and payload shape.
std::vector<std::vector<uint8_t>> Corpus() {
  std::vector<std::vector<uint8_t>> corpus;

  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = 11;
  serve::Event begin;
  begin.kind = serve::Event::Kind::kBegin;
  begin.session_id = 42;
  begin.num_nodes = 3;
  begin.feature_dim = 2;
  begin.features = {{0, {1.0f, 2.0f}}, {1, {3.0f, 4.0f}}, {2, {5.0f, 6.0f}}};
  batch.events.push_back(begin);
  serve::Event edge;
  edge.kind = serve::Event::Kind::kEdge;
  edge.session_id = 42;
  edge.src = 0;
  edge.dst = 2;
  edge.edge_time = 1.25;
  batch.events.push_back(edge);
  serve::Event score;
  score.kind = serve::Event::Kind::kScore;
  score.session_id = 42;
  score.label = 1;
  batch.events.push_back(score);
  serve::Event end;
  end.kind = serve::Event::Kind::kEnd;
  end.session_id = 42;
  batch.events.push_back(end);
  corpus.emplace_back();
  EncodeFrame(batch, &corpus.back());

  Frame results;
  results.type = FrameType::kScoreResult;
  serve::ScoreResult ok;
  ok.session_id = 7;
  ok.logit = 0.5f;
  ok.probability = 0.622f;
  ok.edges_scored = 9;
  results.results.push_back(ok);
  serve::ScoreResult bad;
  bad.session_id = 8;
  bad.status = Status::NotFound("no such session");
  results.results.push_back(bad);
  corpus.emplace_back();
  EncodeFrame(results, &corpus.back());

  Frame metrics;
  metrics.type = FrameType::kMetricsResponse;
  metrics.text = "{\"counters\": {\"events_ingested\": 3}}";
  corpus.emplace_back();
  EncodeFrame(metrics, &corpus.back());

  Frame ack;
  ack.type = FrameType::kIngestAck;
  ack.request_id = 13;
  ack.status_code = StatusCode::kOverloaded;
  ack.events_applied = 2;
  ack.text = "queue full";
  corpus.emplace_back();
  EncodeFrame(ack, &corpus.back());

  for (FrameType type :
       {FrameType::kPing, FrameType::kPong, FrameType::kScore,
        FrameType::kMetricsRequest, FrameType::kShutdown, FrameType::kGoodbye,
        FrameType::kOverloaded, FrameType::kError}) {
    Frame frame;
    frame.type = type;
    frame.request_id = 99;
    frame.session_id = 1;
    corpus.emplace_back();
    EncodeFrame(frame, &corpus.back());
  }

  // Model lifecycle admin frames: string name + path, verb byte + f64
  // fraction, and the JSON-bearing MODEL_INFO reply.
  Frame model_load;
  model_load.type = FrameType::kModelLoad;
  model_load.request_id = 41;
  model_load.name = "v2";
  model_load.text = "/ckpt/v2.ckpt";
  corpus.emplace_back();
  EncodeFrame(model_load, &corpus.back());

  Frame model_activate;
  model_activate.type = FrameType::kModelActivate;
  model_activate.request_id = 42;
  model_activate.name = "v2";
  model_activate.mode = static_cast<uint8_t>(ModelAdminMode::kSetCandidate);
  model_activate.fraction = 0.25;
  corpus.emplace_back();
  EncodeFrame(model_activate, &corpus.back());

  Frame model_status;
  model_status.type = FrameType::kModelStatus;
  model_status.request_id = 43;
  corpus.emplace_back();
  EncodeFrame(model_status, &corpus.back());

  Frame model_info;
  model_info.type = FrameType::kModelInfo;
  model_info.request_id = 43;
  model_info.status_code = StatusCode::kOk;
  model_info.text = "{\"primary\": \"v2\", \"versions\": []}";
  corpus.emplace_back();
  EncodeFrame(model_info, &corpus.back());
  return corpus;
}

TEST(ProtocolFuzzTest, TruncationAtEveryLengthNeverCrashes) {
  for (const std::vector<uint8_t>& wire : Corpus()) {
    for (size_t len = 0; len <= wire.size(); ++len) {
      std::vector<uint8_t> prefix(wire.begin(),
                                  wire.begin() + static_cast<ptrdiff_t>(len));
      const StatusCode code = DecodeExpectingNoCrash(prefix);
      // A clean prefix of a valid frame is either need-more or (at full
      // length) a complete frame — never an error.
      EXPECT_EQ(code, StatusCode::kOk) << "prefix length " << len;
    }
  }
}

TEST(ProtocolFuzzTest, EverySingleBitFlipIsTypedOrBenign) {
  for (const std::vector<uint8_t>& wire : Corpus()) {
    for (size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = wire;
        mutated[byte] = static_cast<uint8_t>(mutated[byte] ^ (1u << bit));
        DecodeExpectingNoCrash(mutated);
      }
    }
  }
}

TEST(ProtocolFuzzTest, BitFlipThenTruncateNeverCrashes) {
  uint64_t rng = 0x5EEDF00Dull;
  for (const std::vector<uint8_t>& wire : Corpus()) {
    for (int round = 0; round < 200; ++round) {
      std::vector<uint8_t> mutated = wire;
      const size_t byte = SplitMix(&rng) % mutated.size();
      mutated[byte] = static_cast<uint8_t>(SplitMix(&rng));
      mutated.resize(SplitMix(&rng) % (mutated.size() + 1));
      DecodeExpectingNoCrash(mutated);
    }
  }
}

TEST(ProtocolFuzzTest, RandomGarbageNeverCrashes) {
  uint64_t rng = 0xBADC0FFEEull;
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> garbage(SplitMix(&rng) % 256);
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(SplitMix(&rng));
    }
    DecodeExpectingNoCrash(garbage);
  }
}

TEST(ProtocolFuzzTest, GarbageWithValidHeaderNeverCrashes) {
  // The hard case: a well-formed header whose payload is noise — every
  // varint / string / count inside is attacker-controlled.
  uint64_t rng = 0xFEEDFACEull;
  for (int round = 0; round < 2000; ++round) {
    const uint8_t types[] = {1, 2,  3,  4,  5,  6,  7,  8,  9, 10,
                             11, 12, 13, 14, 15, 16, 17, 18, 19};
    const size_t payload_len = SplitMix(&rng) % 128;
    std::vector<uint8_t> wire(kFrameHeaderBytes + payload_len);
    const uint32_t magic = kFrameMagic;
    std::memcpy(wire.data(), &magic, sizeof(magic));
    wire[4] = kProtocolVersion;
    wire[5] = types[SplitMix(&rng) % (sizeof(types))];
    wire[6] = 0;
    wire[7] = 0;
    const uint32_t len32 = static_cast<uint32_t>(payload_len);
    std::memcpy(wire.data() + 8, &len32, sizeof(len32));
    for (size_t i = kFrameHeaderBytes; i < wire.size(); ++i) {
      wire[i] = static_cast<uint8_t>(SplitMix(&rng));
    }
    DecodeExpectingNoCrash(wire);
  }
}

TEST(ProtocolFuzzTest, HostileLengthPrefixes) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  std::vector<uint8_t> wire;
  EncodeFrame(ping, &wire);

  // Maximum u32 payload length: rejected from the header alone, before any
  // allocation in the payload decoder could be reached.
  for (uint32_t hostile : {0xFFFFFFFFu, kDefaultMaxPayloadBytes + 1, 1u << 30}) {
    std::vector<uint8_t> mutated = wire;
    std::memcpy(mutated.data() + 8, &hostile, sizeof(hostile));
    Frame frame;
    size_t consumed = 0;
    Status status = DecodeFrame(mutated.data(), mutated.size(),
                                kDefaultMaxPayloadBytes, &frame, &consumed);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << hostile;
  }

  // A batch claiming 2^60 events in a tiny payload must fail typed, not
  // attempt the allocation.
  std::vector<uint8_t> hostile_batch;
  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = 1;
  EncodeFrame(batch, &hostile_batch);
  // Rewrite the payload: request_id varint then a huge event count.
  std::vector<uint8_t> payload;
  AppendVarint(1, &payload);
  AppendVarint(1ull << 60, &payload);
  hostile_batch.resize(kFrameHeaderBytes);
  const uint32_t len32 = static_cast<uint32_t>(payload.size());
  std::memcpy(hostile_batch.data() + 8, &len32, sizeof(len32));
  hostile_batch.insert(hostile_batch.end(), payload.begin(), payload.end());
  EXPECT_EQ(DecodeExpectingNoCrash(hostile_batch), StatusCode::kDataLoss);
}

TEST(ProtocolFuzzTest, WrongVersionRejectedBeforePayloadArrives) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 1;
  std::vector<uint8_t> wire;
  EncodeFrame(ping, &wire);
  wire.resize(kFrameHeaderBytes);  // Payload still in flight.
  for (uint8_t version : {0, 2, 3, 255}) {
    std::vector<uint8_t> mutated = wire;
    mutated[4] = version;
    Frame frame;
    size_t consumed = 0;
    Status status = DecodeFrame(mutated.data(), mutated.size(),
                                kDefaultMaxPayloadBytes, &frame, &consumed);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << int{version};
  }
}

}  // namespace
}  // namespace tpgnn::net
