// End-to-end parity: scores produced through the full network stack
// (client -> wire protocol -> server -> engine) must be bit-identical to an
// in-process InferenceEngine fed the same events. The engine scores a
// session lazily when the queue drains, and a score is a pure function of
// the session's arrival prefix at that moment (ServeParityTest pins this
// down shard-level). So the reference here is a prefix table — the
// in-process logit of every session after every arrival prefix — and every
// networked result must match the table entry for its (session,
// edges_scored), no matter where the server's engine pumps landed.
// Exercised across shard counts, connection counts, out-of-order edge
// arrival, and the overload/retry path.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "net/client.h"
#include "net/server.h"
#include "net_test_util.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "serve/serve_test_util.h"

namespace tpgnn::net {
namespace {

constexpr uint64_t kSeed = 5;

serve::EventReplayer MakeReplayer(const graph::GraphDataset& dataset) {
  serve::ReplayOptions options;
  options.session_start_interval = 0.25;
  options.score_every_edges = 4;
  return serve::EventReplayer(dataset, options);
}

struct PrefixScore {
  float logit = 0.0f;
  float probability = 0.0f;
};

// (session_id, edges ingested at scoring time) -> in-process score.
using PrefixTable = std::map<std::pair<uint64_t, int64_t>, PrefixScore>;

// Builds the reference table by replaying each session's events through an
// in-process engine and scoring synchronously (enqueue + flush) after the
// Begin and after every edge, so every arrival prefix has its bitwise
// ground truth. End events are skipped: they would tear down state, and
// every session's edges precede its End anyway.
void BuildPrefixTable(const std::vector<serve::Event>& events,
                      PrefixTable* table) {
  serve::InferenceEngine engine(serve::TinyServeConfig(), kSeed, {});
  std::map<uint64_t, int64_t> edges_seen;
  std::vector<serve::ScoreResult> results;

  auto score_now = [&](uint64_t session_id) {
    results.clear();
    ASSERT_TRUE(engine.Ingest(ScoreEvent(session_id)).ok());
    engine.Flush(&results);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
    ASSERT_EQ(results[0].edges_scored, edges_seen[session_id]);
    (*table)[{session_id, edges_seen[session_id]}] = {
        results[0].logit, results[0].probability};
  };

  for (const serve::Event& event : events) {
    switch (event.kind) {
      case serve::Event::Kind::kBegin:
        ASSERT_TRUE(engine.Ingest(event).ok());
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kEdge:
        ASSERT_TRUE(engine.Ingest(event).ok());
        ++edges_seen[event.session_id];
        score_now(event.session_id);
        break;
      case serve::Event::Kind::kScore:
      case serve::Event::Kind::kEnd:
        break;
    }
  }
}

// Every networked result must be bitwise equal to the reference score of
// its session at its arrival prefix.
void ExpectPrefixParity(const PrefixTable& table,
                        const std::vector<serve::ScoreResult>& results,
                        size_t expected_count) {
  ASSERT_EQ(results.size(), expected_count);
  for (const serve::ScoreResult& result : results) {
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    const auto it = table.find({result.session_id, result.edges_scored});
    ASSERT_NE(it, table.end())
        << "session " << result.session_id << " prefix "
        << result.edges_scored;
    EXPECT_EQ(it->second.logit, result.logit)  // Bitwise: floats travel raw.
        << "session " << result.session_id << " prefix "
        << result.edges_scored;
    EXPECT_EQ(it->second.probability, result.probability);
  }
}

TEST(LoopbackParityTest, SingleConnectionMatchesInProcessExactly) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/6, /*seed=*/11);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  ServerHarness harness({}, {}, kSeed);
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(replayer.events()).ok());
  ASSERT_TRUE(client.DrainResults().ok());

  ExpectPrefixParity(table, client.TakeResults(),
                     replayer.num_score_requests());
}

TEST(LoopbackParityTest, SynchronousScoresMatchExactPrefixes) {
  // Synchronous discipline: ship a prefix, then a blocking Score RPC. The
  // drain point is then pinned — the result must be the score of exactly
  // the shipped prefix, not merely some valid prefix.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/3, /*seed=*/11);
  std::vector<serve::Event> all;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const uint64_t id = i + 1;
    all.push_back(BeginEvent(id, dataset[i].graph));
    for (const graph::TemporalEdge& e : dataset[i].graph.edges()) {
      all.push_back(EdgeEvent(id, e.src, e.dst, e.time));
    }
  }
  PrefixTable table;
  BuildPrefixTable(all, &table);

  ServerHarness harness({}, {}, kSeed);
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  for (size_t i = 0; i < dataset.size(); ++i) {
    const uint64_t id = i + 1;
    const graph::TemporalGraph& g = dataset[i].graph;
    ASSERT_TRUE(client.IngestBatch({BeginEvent(id, g)}).ok());
    int64_t shipped = 0;
    for (const graph::TemporalEdge& e : g.edges()) {
      ASSERT_TRUE(client.IngestBatch({EdgeEvent(id, e.src, e.dst, e.time)})
                      .ok());
      ++shipped;
      if (shipped % 5 != 0 && shipped != g.num_edges()) continue;
      serve::ScoreResult result;
      ASSERT_TRUE(client.Score(id, -1, &result).ok());
      ASSERT_EQ(result.edges_scored, shipped);
      const auto it = table.find({id, shipped});
      ASSERT_NE(it, table.end());
      EXPECT_EQ(it->second.logit, result.logit)
          << "session " << id << " prefix " << shipped;
    }
  }
}

TEST(LoopbackParityTest, ShardAndConnectionCountsNeverChangeABit) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/8, /*seed=*/13);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  for (int shards : {1, 3}) {
    for (int connections : {1, 3}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " connections=" + std::to_string(connections));
      serve::EngineOptions engine_options;
      engine_options.num_shards = shards;
      ServerHarness harness(engine_options, {}, kSeed);

      // Session affinity: partition sessions across connections; each
      // session's events stay in order on its own connection.
      std::vector<std::vector<serve::Event>> per_connection(
          static_cast<size_t>(connections));
      for (const serve::Event& event : replayer.events()) {
        per_connection[event.session_id % static_cast<uint64_t>(connections)]
            .push_back(event);
      }
      std::vector<serve::ScoreResult> networked;
      std::mutex mu;
      std::vector<std::thread> threads;
      for (int c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
          Client client(harness.client_options());
          ASSERT_TRUE(client.Connect().ok());
          ASSERT_TRUE(
              client.IngestAll(per_connection[static_cast<size_t>(c)]).ok());
          ASSERT_TRUE(client.DrainResults().ok());
          std::vector<serve::ScoreResult> results = client.TakeResults();
          std::lock_guard<std::mutex> lock(mu);
          networked.insert(networked.end(), results.begin(), results.end());
        });
      }
      for (std::thread& t : threads) t.join();

      ExpectPrefixParity(table, networked, replayer.num_score_requests());
    }
  }
}

TEST(LoopbackParityTest, OutOfOrderEdgeArrivalMatchesInProcess) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/2, /*seed=*/17);

  // A stream whose edges arrive out of chronological order (reversed
  // pairs), forcing the shard's refold path on both sides. The reference
  // table is keyed by arrival prefix, so it sees the same disorder.
  std::vector<serve::Event> events;
  size_t score_requests = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const uint64_t id = i + 1;
    const graph::TemporalGraph& g = dataset[i].graph;
    events.push_back(BeginEvent(id, g));
    const std::vector<graph::TemporalEdge>& edges = g.edges();
    for (size_t e = 0; e + 1 < edges.size(); e += 2) {
      events.push_back(
          EdgeEvent(id, edges[e + 1].src, edges[e + 1].dst, edges[e + 1].time));
      events.push_back(
          EdgeEvent(id, edges[e].src, edges[e].dst, edges[e].time));
      events.push_back(ScoreEvent(id));
      ++score_requests;
    }
    events.push_back(ScoreEvent(id, dataset[i].label));
    ++score_requests;
    events.push_back(EndEvent(id));
  }
  PrefixTable table;
  BuildPrefixTable(events, &table);

  ServerHarness harness({}, {}, kSeed);
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(events).ok());
  ASSERT_TRUE(client.DrainResults().ok());

  EXPECT_GT(harness.engine().metrics().state_refolds.load(), 0u);
  ExpectPrefixParity(table, client.TakeResults(), score_requests);
}

TEST(LoopbackParityTest, OverloadRetryPathPreservesParity) {
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/5, /*seed=*/19);
  serve::EventReplayer replayer = MakeReplayer(dataset);
  PrefixTable table;
  BuildPrefixTable(replayer.events(), &table);

  // Tiny queue and in-flight caps: the stream cannot ship without hitting
  // OVERLOADED frames, so IngestAll's drain-and-retry loop must fire — and
  // must not duplicate or drop a single event.
  serve::EngineOptions engine_options;
  engine_options.max_pending_scores = 2;
  engine_options.max_batch = 2;
  ServerOptions server_options;
  server_options.max_inflight_scores = 2;
  ServerHarness harness(engine_options, server_options, kSeed);

  ClientOptions client_options = harness.client_options();
  client_options.max_events_per_batch = 16;
  Client client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.IngestAll(replayer.events()).ok());
  ASSERT_TRUE(client.DrainResults().ok());

  ExpectPrefixParity(table, client.TakeResults(),
                     replayer.num_score_requests());
}

}  // namespace
}  // namespace tpgnn::net
