// Seed-corpus regression for the wire protocol: the most interesting frames
// from the fuzz sweep (every frame type, truncations, corrupt headers,
// hostile lengths) are checked into tests/net/corpus/ as .bin files and
// decoded byte-exactly on every CI run. This pins three contracts at once:
//
//   * encoder stability — EncodeFrame emits the same bytes as the frozen
//     corpus (a silent wire-format change breaks old peers);
//   * decoder stability — each corpus file decodes to the same typed
//     outcome (OK / need-more / kDataLoss / kInvalidArgument) forever;
//   * roundtrip identity — decode(encode(frame)) re-encodes to the same
//     bytes for every well-formed corpus entry.
//
// Regenerate after an INTENTIONAL format change with:
//   TPGNN_REGEN_CORPUS=1 ./net_corpus_test
// and commit the new .bin files together with the protocol change.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "serve/event.h"
#include "util/env.h"

#ifndef TPGNN_TEST_CORPUS_DIR
#error "TPGNN_TEST_CORPUS_DIR must point at the checked-in corpus directory"
#endif

namespace tpgnn::net {
namespace {

struct CorpusEntry {
  std::string name;            // File stem under tests/net/corpus/.
  std::vector<uint8_t> bytes;  // The frozen wire bytes.
  StatusCode expected_code = StatusCode::kOk;
  // For kOk: 0 means need-more (incomplete frame), else the full size.
  size_t expected_consumed = 0;
  bool roundtrip = false;  // Decode + re-encode must reproduce `bytes`.
};

// Deterministic PRNG, same as the fuzz sweep, so the garbage entry is
// reproducible from source alone.
uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<uint8_t> Encode(const Frame& frame) {
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  return wire;
}

void AddValid(std::vector<CorpusEntry>* corpus, const std::string& name,
              const Frame& frame) {
  CorpusEntry entry;
  entry.name = name;
  entry.bytes = Encode(frame);
  entry.expected_code = StatusCode::kOk;
  entry.expected_consumed = entry.bytes.size();
  entry.roundtrip = true;
  corpus->push_back(std::move(entry));
}

// The frozen corpus, reconstructed from source. Every entry is
// deterministic: no timestamps, no randomness beyond fixed-seed SplitMix.
std::vector<CorpusEntry> BuildCorpus() {
  std::vector<CorpusEntry> corpus;

  // --- Well-formed frames: one per type, plus the payload-heavy shapes ---
  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = 11;
  serve::Event begin;
  begin.kind = serve::Event::Kind::kBegin;
  begin.session_id = 42;
  begin.num_nodes = 3;
  begin.feature_dim = 2;
  begin.features = {{0, {1.0f, 2.0f}}, {1, {3.0f, 4.0f}}, {2, {5.0f, 6.0f}}};
  batch.events.push_back(begin);
  serve::Event edge;
  edge.kind = serve::Event::Kind::kEdge;
  edge.session_id = 42;
  edge.src = 0;
  edge.dst = 2;
  edge.edge_time = 1.25;
  batch.events.push_back(edge);
  serve::Event score;
  score.kind = serve::Event::Kind::kScore;
  score.session_id = 42;
  score.label = 1;
  batch.events.push_back(score);
  serve::Event end;
  end.kind = serve::Event::Kind::kEnd;
  end.session_id = 42;
  batch.events.push_back(end);
  AddValid(&corpus, "ingest_batch_full", batch);

  Frame empty_batch;
  empty_batch.type = FrameType::kIngestBatch;
  empty_batch.request_id = 12;
  AddValid(&corpus, "ingest_batch_empty", empty_batch);

  Frame results;
  results.type = FrameType::kScoreResult;
  serve::ScoreResult ok;
  ok.session_id = 7;
  ok.logit = 0.5f;
  ok.probability = 0.622f;
  ok.edges_scored = 9;
  results.results.push_back(ok);
  serve::ScoreResult bad;
  bad.session_id = 8;
  bad.status = Status::NotFound("no such session");
  results.results.push_back(bad);
  AddValid(&corpus, "score_result_mixed", results);

  Frame metrics;
  metrics.type = FrameType::kMetricsResponse;
  metrics.text = "{\"counters\": {\"events_ingested\": 3}}";
  AddValid(&corpus, "metrics_response", metrics);

  Frame ack;
  ack.type = FrameType::kIngestAck;
  ack.request_id = 13;
  ack.status_code = StatusCode::kOverloaded;
  ack.events_applied = 2;
  ack.text = "queue full";
  AddValid(&corpus, "ingest_ack_overloaded", ack);

  // The migration handshake (cluster serving): EXPORT request, state blob
  // reply, IMPORT carrying the same opaque bytes. The blob includes 0x00,
  // 0xFF, and high-bit bytes so a framing change that mangles binary
  // payloads trips the byte-exact check.
  Frame session_export;
  session_export.type = FrameType::kSessionExport;
  session_export.request_id = 21;
  session_export.session_id = 0xFEEDFACE01ull;
  AddValid(&corpus, "session_export", session_export);

  Frame session_state;
  session_state.type = FrameType::kSessionState;
  session_state.request_id = 21;
  session_state.status_code = StatusCode::kOk;
  session_state.blob = {0x54, 0x50, 0x53, 0x53, 0x00, 0xFF, 0x80, 0x7F, 0x01};
  AddValid(&corpus, "session_state_snapshot", session_state);

  Frame session_state_miss;
  session_state_miss.type = FrameType::kSessionState;
  session_state_miss.request_id = 22;
  session_state_miss.status_code = StatusCode::kNotFound;
  session_state_miss.text = "unknown session 99";
  AddValid(&corpus, "session_state_not_found", session_state_miss);

  Frame session_import;
  session_import.type = FrameType::kSessionImport;
  session_import.request_id = 23;
  session_import.blob = session_state.blob;
  AddValid(&corpus, "session_import", session_import);

  // Model lifecycle admin (DESIGN.md §4.8): LOAD with a path, ACTIVATE
  // carrying the verb byte + A/B fraction, STATUS, and the MODEL_INFO JSON
  // reply.
  Frame model_load;
  model_load.type = FrameType::kModelLoad;
  model_load.request_id = 31;
  model_load.name = "v2";
  model_load.text = "/ckpt/model_v2.ckpt";
  AddValid(&corpus, "model_load", model_load);

  Frame model_activate;
  model_activate.type = FrameType::kModelActivate;
  model_activate.request_id = 32;
  model_activate.name = "v2";
  model_activate.mode = static_cast<uint8_t>(ModelAdminMode::kSetCandidate);
  model_activate.fraction = 0.125;  // Exact in binary: frozen byte-stable.
  AddValid(&corpus, "model_activate_candidate", model_activate);

  Frame model_status;
  model_status.type = FrameType::kModelStatus;
  model_status.request_id = 33;
  AddValid(&corpus, "model_status", model_status);

  Frame model_info;
  model_info.type = FrameType::kModelInfo;
  model_info.request_id = 33;
  model_info.status_code = StatusCode::kOk;
  model_info.text = "{\"primary\": \"v2\", \"versions\": []}";
  AddValid(&corpus, "model_info_ok", model_info);

  const struct {
    FrameType type;
    const char* name;
  } simple[] = {
      {FrameType::kPing, "ping"},
      {FrameType::kPong, "pong"},
      {FrameType::kScore, "score"},
      {FrameType::kMetricsRequest, "metrics_request"},
      {FrameType::kShutdown, "shutdown"},
      {FrameType::kGoodbye, "goodbye"},
      {FrameType::kOverloaded, "overloaded"},
      {FrameType::kError, "error"},
  };
  for (const auto& s : simple) {
    Frame frame;
    frame.type = s.type;
    frame.request_id = 99;
    frame.session_id = 1;
    AddValid(&corpus, std::string("simple_") + s.name, frame);
  }

  // --- Incomplete frames: decoder must ask for more, consuming nothing ---
  {
    CorpusEntry entry;
    entry.name = "truncated_header";
    entry.bytes = Encode(batch);
    entry.bytes.resize(kFrameHeaderBytes - 5);
    entry.expected_code = StatusCode::kOk;
    entry.expected_consumed = 0;  // Need-more.
    corpus.push_back(std::move(entry));
  }
  {
    CorpusEntry entry;
    entry.name = "truncated_payload";
    entry.bytes = Encode(batch);
    entry.bytes.resize(kFrameHeaderBytes + 3);
    entry.expected_code = StatusCode::kOk;
    entry.expected_consumed = 0;  // Need-more.
    corpus.push_back(std::move(entry));
  }

  // --- Corrupt headers: typed kDataLoss, stream unrecoverable ---
  {
    CorpusEntry entry;
    entry.name = "bad_magic";
    entry.bytes = Encode(batch);
    entry.bytes[1] ^= 0x40;
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }
  {
    CorpusEntry entry;
    entry.name = "wrong_version";
    entry.bytes = Encode(batch);
    entry.bytes[4] = kProtocolVersion + 1;
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }
  {
    CorpusEntry entry;
    entry.name = "reserved_bits_set";
    entry.bytes = Encode(batch);
    entry.bytes[6] = 0x01;
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }
  {
    CorpusEntry entry;
    entry.name = "unknown_frame_type";
    entry.bytes = Encode(empty_batch);
    entry.bytes[5] = 0xEE;
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }

  {
    // An out-of-range admin verb byte: typed kDataLoss at decode, so a
    // hostile peer can never push an unknown verb into dispatch.
    CorpusEntry entry;
    entry.name = "model_activate_bad_mode";
    entry.bytes = Encode(model_activate);
    // Payload: rid varint (1 byte), name length varint (1), "v2" (2), mode.
    entry.bytes[kFrameHeaderBytes + 4] = kMaxModelAdminMode + 1;
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }

  // --- Hostile lengths: rejected from the header, no allocation ---
  {
    CorpusEntry entry;
    entry.name = "hostile_length_max_u32";
    entry.bytes = Encode(batch);
    const uint32_t hostile = 0xFFFFFFFFu;
    std::memcpy(entry.bytes.data() + 8, &hostile, sizeof(hostile));
    entry.expected_code = StatusCode::kInvalidArgument;
    corpus.push_back(std::move(entry));
  }
  {
    // A batch claiming 2^60 events in a tiny payload: typed kDataLoss, the
    // allocation is never attempted.
    CorpusEntry entry;
    entry.name = "hostile_event_count";
    entry.bytes = Encode(empty_batch);
    std::vector<uint8_t> payload;
    AppendVarint(1, &payload);
    AppendVarint(1ull << 60, &payload);
    entry.bytes.resize(kFrameHeaderBytes);
    const uint32_t len32 = static_cast<uint32_t>(payload.size());
    std::memcpy(entry.bytes.data() + 8, &len32, sizeof(len32));
    entry.bytes.insert(entry.bytes.end(), payload.begin(), payload.end());
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }

  // --- Valid header, garbage payload: the hard fuzz case, frozen ---
  {
    CorpusEntry entry;
    entry.name = "garbage_payload_valid_header";
    uint64_t rng = 0xFEEDFACEull;
    const size_t payload_len = 96;
    entry.bytes.resize(kFrameHeaderBytes + payload_len);
    const uint32_t magic = kFrameMagic;
    std::memcpy(entry.bytes.data(), &magic, sizeof(magic));
    entry.bytes[4] = kProtocolVersion;
    entry.bytes[5] = 3;  // INGEST_BATCH: the payload-richest decoder.
    entry.bytes[6] = 0;
    entry.bytes[7] = 0;
    const uint32_t len32 = static_cast<uint32_t>(payload_len);
    std::memcpy(entry.bytes.data() + 8, &len32, sizeof(len32));
    for (size_t i = kFrameHeaderBytes; i < entry.bytes.size(); ++i) {
      entry.bytes[i] = static_cast<uint8_t>(SplitMix(&rng));
    }
    entry.expected_code = StatusCode::kDataLoss;
    corpus.push_back(std::move(entry));
  }

  return corpus;
}

std::string CorpusPath(const std::string& name) {
  return std::string(TPGNN_TEST_CORPUS_DIR) + "/" + name + ".bin";
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return false;
  }
  bytes->assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
  return true;
}

// TPGNN_REGEN_CORPUS=1 rewrites the corpus from source (intentional format
// changes only); the verification below then runs against the fresh files.
void MaybeRegenerate(const std::vector<CorpusEntry>& corpus) {
  if (GetEnvInt("TPGNN_REGEN_CORPUS", 0) == 0) {
    return;
  }
  for (const CorpusEntry& entry : corpus) {
    std::ofstream os(CorpusPath(entry.name), std::ios::binary);
    ASSERT_TRUE(os.good()) << CorpusPath(entry.name);
    os.write(reinterpret_cast<const char*>(entry.bytes.data()),
             static_cast<std::streamsize>(entry.bytes.size()));
    ASSERT_TRUE(os.good()) << CorpusPath(entry.name);
  }
}

TEST(ProtocolCorpusTest, CheckedInBytesMatchTheEncoder) {
  const std::vector<CorpusEntry> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 20u);
  MaybeRegenerate(corpus);
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.name);
    std::vector<uint8_t> on_disk;
    ASSERT_TRUE(ReadFileBytes(CorpusPath(entry.name), &on_disk))
        << "missing corpus file " << CorpusPath(entry.name)
        << " — regenerate with TPGNN_REGEN_CORPUS=1 and commit it";
    // Byte-exact: the encoder (and the surgery that built the hostile
    // entries) emits today exactly what was frozen.
    EXPECT_EQ(on_disk, entry.bytes);
  }
}

TEST(ProtocolCorpusTest, EveryCorpusFileDecodesToItsFrozenOutcome) {
  for (const CorpusEntry& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    std::vector<uint8_t> wire;
    ASSERT_TRUE(ReadFileBytes(CorpusPath(entry.name), &wire));
    Frame frame;
    size_t consumed = 0;
    Status status = DecodeFrame(wire.data(), wire.size(),
                                kDefaultMaxPayloadBytes, &frame, &consumed);
    EXPECT_EQ(status.code(), entry.expected_code) << status.ToString();
    if (entry.expected_code == StatusCode::kOk) {
      EXPECT_EQ(consumed, entry.expected_consumed);
    }
    if (entry.roundtrip) {
      ASSERT_TRUE(status.ok()) << status.ToString();
      ASSERT_EQ(consumed, wire.size());
      // Decode-then-encode reproduces the frozen bytes exactly.
      std::vector<uint8_t> reencoded;
      EncodeFrame(frame, &reencoded);
      EXPECT_EQ(reencoded, wire);
    }
  }
}

// The corpus decoder contract also holds for every truncation of every
// corpus file — the cheap always-on slice of the fuzz sweep.
TEST(ProtocolCorpusTest, EveryTruncationOfEveryCorpusFileIsTypedOrBenign) {
  for (const CorpusEntry& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    std::vector<uint8_t> wire;
    ASSERT_TRUE(ReadFileBytes(CorpusPath(entry.name), &wire));
    for (size_t len = 0; len <= wire.size(); ++len) {
      Frame frame;
      size_t consumed = 0;
      Status status = DecodeFrame(wire.data(), len, kDefaultMaxPayloadBytes,
                                  &frame, &consumed);
      const StatusCode code = status.code();
      EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << "len " << len << ": " << status.ToString();
    }
  }
}

}  // namespace
}  // namespace tpgnn::net
