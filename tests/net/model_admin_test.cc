// The model lifecycle admin surface over real loopback sockets
// (DESIGN.md §4.8): MODEL_LOAD a checkpoint into a running server,
// walk the candidate/shadow roles, MODEL_ACTIVATE the new version, and
// verify the rolled checkpoint actually serves its parameters end to end.
// Server-side errors travel back as the typed status of the ack.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net_test_util.h"
#include "nn/checkpoint.h"

namespace tpgnn::net {
namespace {

constexpr uint64_t kCheckpointSeed = 7;

std::string WriteCheckpoint(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "model_admin_" + tag +
                           ".ckpt";
  const core::TpGnnConfig config = serve::TinyServeConfig();
  core::TpGnnModel model(config, kCheckpointSeed);
  Status s = nn::SaveParameters(model, path, core::ConfigMetadata(config));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return path;
}

TEST(ModelAdminTest, LoadRolesActivateAndStatusRoundTrip) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  const std::string path = WriteCheckpoint("roundtrip");
  ASSERT_TRUE(client.ModelLoad("v2", path).ok());

  std::string json;
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_NE(json.find("\"primary\": \"v0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"v2\""), std::string::npos) << json;

  // Candidate on, then off; shadow on, then off — each observable in the
  // status JSON the same client reads back.
  ASSERT_TRUE(
      client.ModelActivate("v2", ModelAdminMode::kSetCandidate, 0.25).ok());
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_NE(json.find("\"candidate\": \"v2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ab_fraction\": 0.25"), std::string::npos) << json;
  ASSERT_TRUE(
      client.ModelActivate("", ModelAdminMode::kClearCandidate).ok());

  ASSERT_TRUE(client.ModelActivate("v2", ModelAdminMode::kSetShadow).ok());
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_NE(json.find("\"shadow\": \"v2\""), std::string::npos) << json;
  ASSERT_TRUE(client.ModelActivate("", ModelAdminMode::kClearShadow).ok());

  ASSERT_TRUE(
      client.ModelActivate("v2", ModelAdminMode::kActivateDrain).ok());
  ASSERT_TRUE(client.ModelStatus(&json).ok());
  EXPECT_NE(json.find("\"primary\": \"v2\""), std::string::npos) << json;

  // The rolled checkpoint serves its own parameters: a fresh session's
  // score is bit-identical to the checkpoint model's offline forward.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/1, /*seed=*/11);
  const graph::TemporalGraph& g = dataset[0].graph;
  std::vector<serve::Event> events;
  events.push_back(BeginEvent(1, g));
  for (const graph::TemporalEdge& e : g.edges()) {
    events.push_back(EdgeEvent(1, e.src, e.dst, e.time));
  }
  events.push_back(ScoreEvent(1));
  ASSERT_TRUE(client.IngestAll(events).ok());
  ASSERT_TRUE(client.DrainResults().ok());
  std::vector<serve::ScoreResult> results = client.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  core::TpGnnModel reference(serve::TinyServeConfig(), kCheckpointSeed);
  EXPECT_EQ(results[0].logit, serve::OfflineLogit(reference, g));

  std::remove(path.c_str());
}

TEST(ModelAdminTest, ServerErrorsSurfaceAsTypedAckStatus) {
  ServerHarness harness;
  Client client(harness.client_options());
  ASSERT_TRUE(client.Connect().ok());

  // Missing checkpoint file.
  EXPECT_EQ(client.ModelLoad("v2", "/no/such/file.ckpt").code(),
            StatusCode::kNotFound);
  // Unknown version.
  EXPECT_EQ(client.ModelActivate("ghost", ModelAdminMode::kActivateDrain)
                .code(),
            StatusCode::kNotFound);
  // Duplicate name.
  const std::string path = WriteCheckpoint("dup");
  ASSERT_TRUE(client.ModelLoad("v2", path).ok());
  EXPECT_EQ(client.ModelLoad("v2", path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());

  // The connection survives typed admin failures — it is an application
  // status, not a protocol error.
  EXPECT_TRUE(client.Ping().ok());
  std::string json;
  EXPECT_TRUE(client.ModelStatus(&json).ok());
}

}  // namespace
}  // namespace tpgnn::net
