#include "graph/adjacency.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tpgnn::graph {
namespace {

using tensor::Tensor;

std::vector<TemporalEdge> PathEdges() {
  return {{0, 1, 1.0}, {1, 2, 2.0}};
}

TEST(AdjacencyTest, DirectedNoSelfLoops) {
  Tensor a = DenseAdjacency(3, PathEdges(),
                            {.symmetric = false, .add_self_loops = false});
  EXPECT_EQ(a.at({0, 1}), 1.0f);
  EXPECT_EQ(a.at({1, 0}), 0.0f);
  EXPECT_EQ(a.at({0, 0}), 0.0f);
}

TEST(AdjacencyTest, SymmetricWithSelfLoops) {
  Tensor a = DenseAdjacency(3, PathEdges());
  EXPECT_EQ(a.at({0, 1}), 1.0f);
  EXPECT_EQ(a.at({1, 0}), 1.0f);
  EXPECT_EQ(a.at({2, 2}), 1.0f);
}

TEST(AdjacencyTest, RepeatedEdgesCollapse) {
  std::vector<TemporalEdge> edges = {{0, 1, 1.0}, {0, 1, 2.0}, {0, 1, 3.0}};
  Tensor a = DenseAdjacency(2, edges,
                            {.symmetric = false, .add_self_loops = false});
  EXPECT_EQ(a.at({0, 1}), 1.0f);
}

TEST(AdjacencyTest, SymmetricNormalizeRowsOfRegularGraph) {
  // Complete graph on 3 nodes with self loops: degree 3 everywhere, every
  // entry 1/3.
  std::vector<TemporalEdge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  Tensor a = DenseAdjacency(3, edges);
  Tensor norm = SymmetricNormalize(a);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(norm.at({i, j}), 1.0f / 3.0f, 1e-6f);
    }
  }
}

TEST(AdjacencyTest, SymmetricNormalizeHandlesIsolatedNode) {
  Tensor a = DenseAdjacency(3, {{0, 1, 1.0}},
                            {.symmetric = true, .add_self_loops = false});
  Tensor norm = SymmetricNormalize(a);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(norm.at({2, j}), 0.0f);
  }
}

TEST(AdjacencyTest, RowNormalizeRowsSumToOne) {
  Tensor a = DenseAdjacency(3, PathEdges());
  Tensor norm = RowNormalize(a);
  for (int64_t i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 3; ++j) total += norm.at({i, j});
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
}

TEST(AdjacencyTest, LaplacianRowsSumToZero) {
  Tensor a = DenseAdjacency(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}},
                            {.symmetric = true, .add_self_loops = false});
  Tensor lap = Laplacian(a);
  for (int64_t i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 4; ++j) total += lap.at({i, j});
    EXPECT_NEAR(total, 0.0f, 1e-6f);
  }
  EXPECT_EQ(lap.at({1, 1}), 2.0f);  // Middle of the path has degree 2.
  EXPECT_EQ(lap.at({0, 1}), -1.0f);
}

TEST(AdjacencyTest, NormalizedLaplacianDiagonalOnes) {
  Tensor a = DenseAdjacency(3, {{0, 1, 1}, {1, 2, 1}},
                            {.symmetric = true, .add_self_loops = false});
  Tensor lap = NormalizedLaplacian(a);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(lap.at({i, i}), 1.0f, 1e-6f);
  }
  // Off-diagonal of path: -1/sqrt(d_i d_j) = -1/sqrt(2).
  EXPECT_NEAR(lap.at({0, 1}), -1.0f / std::sqrt(2.0f), 1e-6f);
}

}  // namespace
}  // namespace tpgnn::graph
