#include "graph/influence.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tpgnn::graph {
namespace {

TEST(InfluenceTest, DirectEdgeInfluences) {
  TemporalGraph g(3, 1);
  g.AddEdge(0, 1, 1.0);
  InfluenceClosure closure(g);
  EXPECT_TRUE(closure.Influences(0, 1));
  EXPECT_FALSE(closure.Influences(1, 0));
  EXPECT_FALSE(closure.Influences(0, 2));
}

TEST(InfluenceTest, TimeRespectingPathInfluences) {
  TemporalGraph g(3, 1);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);  // 1 <= 2: valid path 0 -> 1 -> 2.
  InfluenceClosure closure(g);
  EXPECT_TRUE(closure.Influences(0, 2));
}

TEST(InfluenceTest, TimeViolatingPathDoesNotInfluence) {
  TemporalGraph g(3, 1);
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(1, 2, 2.0);  // Second hop happens before the first: invalid.
  InfluenceClosure closure(g);
  EXPECT_FALSE(closure.Influences(0, 2));
  EXPECT_TRUE(closure.Influences(0, 1));
  EXPECT_TRUE(closure.Influences(1, 2));
}

TEST(InfluenceTest, Figure1LongDependency) {
  // Mirrors the paper's Fig. 1 intuition: late information from v9 flows to
  // v6 only if the second (v7 -> v6) interaction happens after v9's edge.
  TemporalGraph normal(10, 1);
  normal.AddEdge(7, 6, 4.9);
  normal.AddEdge(9, 8, 6.0);
  normal.AddEdge(8, 7, 7.0);
  InfluenceClosure closure_normal(normal);
  EXPECT_TRUE(closure_normal.Influences(9, 7));
  EXPECT_FALSE(closure_normal.Influences(9, 6));

  TemporalGraph abnormal(10, 1);
  abnormal.AddEdge(7, 6, 4.9);
  abnormal.AddEdge(9, 8, 6.0);
  abnormal.AddEdge(8, 7, 7.0);
  abnormal.AddEdge(7, 6, 7.4);  // Second interaction after v9's info arrived.
  InfluenceClosure closure_abnormal(abnormal);
  EXPECT_TRUE(closure_abnormal.Influences(9, 6));
}

TEST(InfluenceTest, EqualTimestampsFollowProcessingOrder) {
  std::vector<TemporalEdge> order1 = {{0, 1, 1.0}, {1, 2, 1.0}};
  InfluenceClosure c1(3, order1);
  EXPECT_TRUE(c1.Influences(0, 2));  // (0,1) processed before (1,2).

  std::vector<TemporalEdge> order2 = {{1, 2, 1.0}, {0, 1, 1.0}};
  InfluenceClosure c2(3, order2);
  EXPECT_FALSE(c2.Influences(0, 2));
}

TEST(InfluenceTest, InfluencersOfCollectsAllAncestors) {
  TemporalGraph g(4, 1);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  InfluenceClosure closure(g);
  EXPECT_EQ(closure.InfluencersOf(3), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(closure.InfluencersOf(0), (std::vector<int64_t>{}));
}

TEST(InfluenceTest, SelfLoopMakesNodeItsOwnInfluencer) {
  TemporalGraph g(2, 1);
  g.AddEdge(0, 0, 1.0);
  InfluenceClosure closure(g);
  EXPECT_TRUE(closure.Influences(0, 0));
}

TEST(InfluenceTest, RepeatedEdgeRefreshesInformation) {
  // First 7->6 at t=1 carries nothing extra; after 8->7 at t=2, a second
  // 7->6 at t=3 carries 8's information to 6.
  TemporalGraph g(9, 1);
  g.AddEdge(7, 6, 1.0);
  g.AddEdge(8, 7, 2.0);
  g.AddEdge(7, 6, 3.0);
  InfluenceClosure closure(g);
  EXPECT_TRUE(closure.Influences(8, 6));
}

TEST(InfluenceTest, RejectsUnsortedEdgeList) {
  std::vector<TemporalEdge> bad = {{0, 1, 2.0}, {1, 2, 1.0}};
  EXPECT_DEATH(InfluenceClosure(3, bad), "sorted");
}

TEST(InfluenceTest, RandomGraphClosureMatchesPathSearch) {
  // Property: closure result equals brute-force search over all valid paths
  // (via DFS over time-respecting edge sequences).
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 6;
    TemporalGraph g(n, 1);
    const int m = 10;
    for (int e = 0; e < m; ++e) {
      g.AddEdge(rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                static_cast<double>(e + 1));  // Distinct increasing times.
    }
    InfluenceClosure closure(g);
    auto edges = g.ChronologicalEdges();
    // Brute force: reach[v] from u via DFS over edges with increasing index
    // when following time order (times are distinct here).
    for (int64_t u = 0; u < n; ++u) {
      std::vector<bool> reachable(static_cast<size_t>(n), false);
      // state: (node, min_next_edge_index)
      std::vector<std::pair<int64_t, size_t>> stack = {{u, 0}};
      while (!stack.empty()) {
        auto [node, start] = stack.back();
        stack.pop_back();
        for (size_t i = start; i < edges.size(); ++i) {
          if (edges[i].src == node) {
            if (!reachable[static_cast<size_t>(edges[i].dst)]) {
              reachable[static_cast<size_t>(edges[i].dst)] = true;
            }
            stack.emplace_back(edges[i].dst, i + 1);
          }
        }
      }
      for (int64_t v = 0; v < n; ++v) {
        EXPECT_EQ(closure.Influences(u, v), reachable[static_cast<size_t>(v)])
            << "trial " << trial << " u=" << u << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace tpgnn::graph
