#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/pooling.h"
#include "tensor/ops.h"

namespace tpgnn::graph {
namespace {

GraphDataset MakeDataset() {
  GraphDataset ds;
  TemporalGraph g1(4, 3);
  g1.AddEdge(0, 1, 1.0);
  g1.AddEdge(1, 2, 2.0);
  ds.push_back({g1, 1});
  TemporalGraph g2(2, 3);
  g2.AddEdge(0, 1, 1.0);
  ds.push_back({g2, 0});
  return ds;
}

TEST(StatsTest, EmptyDataset) {
  DatasetStats s = ComputeDatasetStats({});
  EXPECT_EQ(s.graph_count, 0);
  EXPECT_EQ(s.negative_ratio, 0.0);
}

TEST(StatsTest, ComputesAverages) {
  DatasetStats s = ComputeDatasetStats(MakeDataset());
  EXPECT_EQ(s.graph_count, 2);
  EXPECT_DOUBLE_EQ(s.negative_ratio, 0.5);
  EXPECT_DOUBLE_EQ(s.avg_nodes, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_edges, 1.5);
  EXPECT_EQ(s.feature_dim, 3);
}

TEST(StatsTest, FormatRowContainsFields) {
  DatasetStats s = ComputeDatasetStats(MakeDataset());
  std::string row = FormatStatsRow("Demo", s);
  EXPECT_NE(row.find("Demo"), std::string::npos);
  EXPECT_NE(row.find("50.0%"), std::string::npos);
}

TEST(PoolingTest, MeanPoolAveragesRows) {
  tensor::Tensor h = tensor::Tensor::FromVector({2, 3}, {1, 2, 3, 3, 4, 5});
  tensor::Tensor pooled = MeanPool(h);
  EXPECT_EQ(pooled.shape(), (tensor::Shape{3}));
  EXPECT_EQ(pooled.data(), (std::vector<float>{2, 3, 4}));
}

TEST(PoolingTest, SumPoolAddsRows) {
  tensor::Tensor h = tensor::Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(SumPool(h).data(), (std::vector<float>{4, 6}));
}

TEST(PoolingTest, PoolingIsDifferentiable) {
  tensor::Tensor h =
      tensor::Tensor::FromVector({2, 2}, {1, 2, 3, 4}, /*requires_grad=*/true);
  tensor::Sum(MeanPool(h)).Backward();
  EXPECT_FLOAT_EQ(h.grad()[0], 0.5f);
}

}  // namespace
}  // namespace tpgnn::graph
