#include "graph/snapshot.h"

#include <gtest/gtest.h>

namespace tpgnn::graph {
namespace {

TemporalGraph MakeGraph() {
  TemporalGraph g(4, 1);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 4.0);
  g.AddEdge(2, 3, 9.0);
  g.AddEdge(3, 0, 10.0);
  return g;
}

TEST(SnapshotTest, WindowModePartitionsEdges) {
  auto snaps = MakeSnapshots(MakeGraph(), 2, SnapshotMode::kWindow);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].edges.size(), 2u);  // t=1, t=4 in [0,5).
  EXPECT_EQ(snaps[1].edges.size(), 2u);  // t=9, t=10.
}

TEST(SnapshotTest, EveryEdgeAssignedExactlyOnce) {
  auto snaps = MakeSnapshots(MakeGraph(), 5, SnapshotMode::kWindow);
  size_t total = 0;
  for (const auto& s : snaps) total += s.edges.size();
  EXPECT_EQ(total, 4u);
}

TEST(SnapshotTest, CumulativeModeGrows) {
  auto snaps = MakeSnapshots(MakeGraph(), 4, SnapshotMode::kCumulative);
  ASSERT_EQ(snaps.size(), 4u);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].edges.size(), snaps[i - 1].edges.size());
  }
  EXPECT_EQ(snaps.back().edges.size(), 4u);
}

TEST(SnapshotTest, MaxTimeEdgeLandsInLastWindow) {
  auto snaps = MakeSnapshots(MakeGraph(), 10, SnapshotMode::kWindow);
  EXPECT_FALSE(snaps.back().edges.empty());
}

TEST(SnapshotTest, WindowBoundsCoverHorizon) {
  auto snaps = MakeSnapshots(MakeGraph(), 4);
  EXPECT_DOUBLE_EQ(snaps.front().window_start, 0.0);
  EXPECT_DOUBLE_EQ(snaps.back().window_end, 10.0);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(snaps[i].window_start, snaps[i - 1].window_end);
  }
}

TEST(SnapshotTest, EdgelessGraphYieldsEmptySnapshots) {
  TemporalGraph g(3, 1);
  auto snaps = MakeSnapshots(g, 3);
  ASSERT_EQ(snaps.size(), 3u);
  for (const auto& s : snaps) EXPECT_TRUE(s.edges.empty());
}

TEST(SnapshotTest, AllZeroTimestampsGoToFirstWindow) {
  TemporalGraph g(3, 1);
  g.AddEdge(0, 1, 0.0);
  g.AddEdge(1, 2, 0.0);
  auto snaps = MakeSnapshots(g, 4);
  EXPECT_EQ(snaps[0].edges.size(), 2u);
}

}  // namespace
}  // namespace tpgnn::graph
