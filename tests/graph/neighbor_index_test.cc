#include "graph/neighbor_index.h"

#include <gtest/gtest.h>

namespace tpgnn::graph {
namespace {

TemporalGraph MakeGraph() {
  TemporalGraph g(4, 1);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 1, 2.0);
  g.AddEdge(3, 1, 3.0);
  g.AddEdge(1, 0, 4.0);
  return g;
}

TEST(NeighborIndexTest, RecentReturnsMostRecentFirst) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/false);
  auto recent = index.Recent(1, 10.0, 2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].node, 3);
  EXPECT_EQ(recent[0].time, 3.0);
  EXPECT_EQ(recent[1].node, 2);
}

TEST(NeighborIndexTest, StrictlyBeforeQueryTime) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/false);
  auto recent = index.Recent(1, 3.0, 5);
  ASSERT_EQ(recent.size(), 2u);  // t=3 edge excluded.
  EXPECT_EQ(recent[0].node, 2);
}

TEST(NeighborIndexTest, DirectedIndexOnlySeesInEdges) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/false);
  // Node 0 only has the in-edge (1, 0, 4.0).
  auto recent = index.Recent(0, 10.0, 5);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].node, 1);
}

TEST(NeighborIndexTest, UndirectedSeesBothEndpoints) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/true);
  auto recent = index.Recent(0, 10.0, 5);
  // Edge (0,1,1.0) visible from node 0 too.
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].time, 4.0);
  EXPECT_EQ(recent[1].time, 1.0);
}

TEST(NeighborIndexTest, KLimitsResult) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/false);
  EXPECT_EQ(index.Recent(1, 10.0, 1).size(), 1u);
  EXPECT_EQ(index.Recent(1, 10.0, 0).size(), 0u);
}

TEST(NeighborIndexTest, NoNeighborsBeforeEarliestTime) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/true);
  EXPECT_TRUE(index.Recent(1, 0.5, 5).empty());
}

TEST(NeighborIndexTest, AllBeforeIsChronological) {
  TemporalNeighborIndex index(MakeGraph(), /*undirected=*/false);
  auto all = index.AllBefore(1, 2.5);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].time, 1.0);
  EXPECT_EQ(all[1].time, 2.0);
}

TEST(NeighborIndexTest, IsolatedNode) {
  TemporalGraph g(3, 1);
  g.AddEdge(0, 1, 1.0);
  TemporalNeighborIndex index(g);
  EXPECT_TRUE(index.Recent(2, 10.0, 3).empty());
  EXPECT_TRUE(index.AllBefore(2, 10.0).empty());
}

}  // namespace
}  // namespace tpgnn::graph
