#include "graph/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "util/rng.h"

namespace tpgnn::graph {
namespace {

using tensor::Tensor;

TEST(EigenTest, DiagonalMatrix) {
  Tensor m = Tensor::FromVector({3, 3}, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  auto d = JacobiEigenDecomposition(m);
  ASSERT_EQ(d.eigenvalues.size(), 3u);
  EXPECT_NEAR(d.eigenvalues[0], 1.0, 1e-9);
  EXPECT_NEAR(d.eigenvalues[1], 2.0, 1e-9);
  EXPECT_NEAR(d.eigenvalues[2], 3.0, 1e-9);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3.
  Tensor m = Tensor::FromVector({2, 2}, {2, 1, 1, 2});
  auto d = JacobiEigenDecomposition(m);
  EXPECT_NEAR(d.eigenvalues[0], 1.0, 1e-9);
  EXPECT_NEAR(d.eigenvalues[1], 3.0, 1e-9);
}

TEST(EigenTest, EigenvectorsSatisfyDefinition) {
  Rng rng(1);
  const int64_t n = 8;
  // Random symmetric matrix.
  Tensor m = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      float v = rng.UniformFloat(-1.0f, 1.0f);
      m.MutableAt({i, j}) = v;
      m.MutableAt({j, i}) = v;
    }
  }
  auto d = JacobiEigenDecomposition(m);
  for (int64_t k = 0; k < n; ++k) {
    const auto& vec = d.eigenvectors[static_cast<size_t>(k)];
    for (int64_t i = 0; i < n; ++i) {
      double mv = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        mv += static_cast<double>(m.at({i, j})) * vec[static_cast<size_t>(j)];
      }
      EXPECT_NEAR(mv, d.eigenvalues[static_cast<size_t>(k)] *
                          vec[static_cast<size_t>(i)],
                  1e-6);
    }
  }
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(2);
  const int64_t n = 6;
  Tensor m = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      float v = rng.UniformFloat(-1.0f, 1.0f);
      m.MutableAt({i, j}) = v;
      m.MutableAt({j, i}) = v;
    }
  }
  auto d = JacobiEigenDecomposition(m);
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        dot += d.eigenvectors[static_cast<size_t>(a)][static_cast<size_t>(i)] *
               d.eigenvectors[static_cast<size_t>(b)][static_cast<size_t>(i)];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(3);
  const int64_t n = 10;
  Tensor m = Tensor::Zeros({n, n});
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      float v = rng.UniformFloat(-2.0f, 2.0f);
      m.MutableAt({i, j}) = v;
      m.MutableAt({j, i}) = v;
      if (i == j) trace += v;
    }
  }
  auto d = JacobiEigenDecomposition(m);
  double sum = 0.0;
  for (double ev : d.eigenvalues) sum += ev;
  EXPECT_NEAR(sum, trace, 1e-6);
}

TEST(EigenTest, LaplacianSmallestEigenvalueIsZero) {
  // Connected path graph: Laplacian has exactly one zero eigenvalue.
  Tensor adj = DenseAdjacency(5, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}},
                              {.symmetric = true, .add_self_loops = false});
  auto d = JacobiEigenDecomposition(Laplacian(adj));
  EXPECT_NEAR(d.eigenvalues[0], 0.0, 1e-8);
  EXPECT_GT(d.eigenvalues[1], 1e-6);  // Algebraic connectivity > 0.
}

TEST(EigenTest, DisconnectedGraphHasTwoZeroEigenvalues) {
  // Two disjoint edges -> two connected components -> two zero eigenvalues.
  Tensor adj = DenseAdjacency(4, {{0, 1, 1}, {2, 3, 1}},
                              {.symmetric = true, .add_self_loops = false});
  auto d = JacobiEigenDecomposition(Laplacian(adj));
  EXPECT_NEAR(d.eigenvalues[0], 0.0, 1e-8);
  EXPECT_NEAR(d.eigenvalues[1], 0.0, 1e-8);
  EXPECT_GT(d.eigenvalues[2], 1e-6);
}

}  // namespace
}  // namespace tpgnn::graph
