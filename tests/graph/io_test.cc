#include "graph/io.h"

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace tpgnn::graph {
namespace {

TemporalGraph MakeGraph() {
  TemporalGraph g(3, 2);
  g.SetNodeFeature(0, {0.5f, -1.25f});
  g.SetNodeFeature(2, {3.0f, 0.125f});
  g.AddEdge(0, 1, 1.5);
  g.AddEdge(1, 2, 2.75);
  g.AddEdge(0, 2, 2.75);  // Tie.
  return g;
}

TEST(GraphIoTest, RoundTripThroughStream) {
  TemporalGraph original = MakeGraph();
  std::stringstream stream;
  ASSERT_TRUE(WriteGraph(stream, original).ok());
  TemporalGraph loaded(1, 1);
  ASSERT_TRUE(ReadGraph(stream, &loaded).ok());
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.feature_dim(), original.feature_dim());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (int64_t v = 0; v < original.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_feature(v), original.node_feature(v));
  }
  for (size_t i = 0; i < original.edges().size(); ++i) {
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
  }
}

TEST(GraphIoTest, RejectsWrongMagic) {
  std::stringstream stream("not-a-graph 1\n");
  TemporalGraph g(1, 1);
  Status status = ReadGraph(stream, &g);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsTruncatedEdges) {
  TemporalGraph original = MakeGraph();
  std::stringstream stream;
  ASSERT_TRUE(WriteGraph(stream, original).ok());
  std::string text = stream.str();
  text = text.substr(0, text.rfind('E'));  // Cut the last edge line.
  std::stringstream truncated(text);
  TemporalGraph g(1, 1);
  EXPECT_FALSE(ReadGraph(truncated, &g).ok());
}

TEST(GraphIoTest, RejectsOutOfRangeEdge) {
  std::stringstream stream(
      "tpgnn-graph 1\n2 1 1\nF 0\nF 0\nE 0 5 1.0\n");
  TemporalGraph g(1, 1);
  EXPECT_FALSE(ReadGraph(stream, &g).ok());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  TemporalGraph original(0, 3);
  std::stringstream stream;
  ASSERT_TRUE(WriteGraph(stream, original).ok());
  TemporalGraph loaded(1, 1);
  ASSERT_TRUE(ReadGraph(stream, &loaded).ok());
  EXPECT_EQ(loaded.num_nodes(), 0);
  EXPECT_EQ(loaded.num_edges(), 0);
}

TEST(DatasetIoTest, RoundTripThroughFile) {
  GraphDataset dataset;
  dataset.push_back({MakeGraph(), 1});
  dataset.push_back({MakeGraph(), 0});
  const std::string path = ::testing::TempDir() + "/tpgnn_dataset_test.txt";
  ASSERT_TRUE(SaveDataset(path, dataset).ok());
  GraphDataset loaded;
  ASSERT_TRUE(LoadDataset(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].label, 1);
  EXPECT_EQ(loaded[1].label, 0);
  EXPECT_EQ(loaded[0].graph.num_edges(), 3);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  GraphDataset loaded;
  Status status = LoadDataset("/nonexistent/path/ds.txt", &loaded);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, EmptyDatasetRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tpgnn_empty_ds.txt";
  ASSERT_TRUE(SaveDataset(path, {}).ok());
  GraphDataset loaded;
  ASSERT_TRUE(LoadDataset(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpgnn::graph
