#include "graph/temporal_graph.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tpgnn::graph {
namespace {

TEST(TemporalGraphTest, EmptyGraph) {
  TemporalGraph g(0, 3);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.MaxTime(), 0.0);
}

TEST(TemporalGraphTest, AddEdgesAndCount) {
  TemporalGraph g(3, 2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 1, 3.0);  // Repeated pair at a later time is allowed.
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.MaxTime(), 3.0);
}

TEST(TemporalGraphTest, FeaturesDefaultToZero) {
  TemporalGraph g(2, 3);
  EXPECT_EQ(g.node_feature(0), (std::vector<float>{0, 0, 0}));
}

TEST(TemporalGraphTest, SetNodeFeature) {
  TemporalGraph g(2, 2);
  g.SetNodeFeature(1, {1.5f, -2.0f});
  EXPECT_EQ(g.node_feature(1), (std::vector<float>{1.5f, -2.0f}));
  tensor::Tensor x = g.FeatureMatrix();
  EXPECT_EQ(x.shape(), (tensor::Shape{2, 2}));
  EXPECT_EQ(x.at({1, 0}), 1.5f);
  EXPECT_EQ(x.at({0, 0}), 0.0f);
}

TEST(TemporalGraphTest, ChronologicalSortIsStable) {
  TemporalGraph g(4, 1);
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 5.0);
  g.AddEdge(3, 0, 3.0);
  auto sorted = g.ChronologicalEdges();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].time, 1.0);
  EXPECT_EQ(sorted[1].time, 3.0);
  // Ties keep insertion order: (0,1,5) before (2,3,5).
  EXPECT_EQ(sorted[2].src, 0);
  EXPECT_EQ(sorted[3].src, 2);
}

TEST(TemporalGraphTest, ShuffledEdgesPermuteOnlyTies) {
  TemporalGraph g(6, 1);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 2.0);
  g.AddEdge(3, 4, 2.0);
  g.AddEdge(4, 5, 3.0);
  Rng rng(1);
  bool saw_permutation = false;
  for (int trial = 0; trial < 20; ++trial) {
    auto shuffled = g.ChronologicalEdgesShuffled(rng);
    ASSERT_EQ(shuffled.size(), 5u);
    // Global chronological order must hold.
    for (size_t i = 1; i < shuffled.size(); ++i) {
      EXPECT_LE(shuffled[i - 1].time, shuffled[i].time);
    }
    // Endpoints of the tie block are fixed.
    EXPECT_EQ(shuffled[0].src, 0);
    EXPECT_EQ(shuffled[4].src, 4);
    // The tie block must contain the same three edges.
    std::set<int64_t> mid = {shuffled[1].src, shuffled[2].src,
                             shuffled[3].src};
    EXPECT_EQ(mid, (std::set<int64_t>{1, 2, 3}));
    if (shuffled[1].src != 1 || shuffled[2].src != 2) {
      saw_permutation = true;
    }
  }
  EXPECT_TRUE(saw_permutation);
}

TEST(TemporalGraphTest, EdgeEquality) {
  TemporalEdge a{0, 1, 2.0};
  TemporalEdge b{0, 1, 2.0};
  TemporalEdge c{0, 1, 3.0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(TemporalGraphDeathTest, RejectsInvalidEndpoint) {
  TemporalGraph g(2, 1);
  EXPECT_DEATH(g.AddEdge(0, 2, 1.0), "Check failed");
  EXPECT_DEATH(g.AddEdge(-1, 0, 1.0), "Check failed");
}

TEST(TemporalGraphDeathTest, RejectsNegativeTime) {
  TemporalGraph g(2, 1);
  EXPECT_DEATH(g.AddEdge(0, 1, -0.5), "Check failed");
}

TEST(TemporalGraphDeathTest, RejectsWrongFeatureDim) {
  TemporalGraph g(2, 3);
  EXPECT_DEATH(g.SetNodeFeature(0, {1.0f}), "Check failed");
}

}  // namespace
}  // namespace tpgnn::graph
