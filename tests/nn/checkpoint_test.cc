#include "nn/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

class TwoLayer : public Module {
 public:
  explicit TwoLayer(uint64_t seed) : rng_(seed), fc1_(4, 8, rng_),
                                     fc2_(8, 2, rng_) {
    RegisterChild("fc1", &fc1_);
    RegisterChild("fc2", &fc2_);
  }

  tensor::Tensor Forward(const tensor::Tensor& x) const {
    return fc2_.Forward(tensor::Relu(fc1_.Forward(x)));
  }

 private:
  Rng rng_;
  Linear fc1_;
  Linear fc2_;
};

TEST(CheckpointTest, SaveLoadRestoresOutputs) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt.txt";
  TwoLayer source(1);
  Rng rng(9);
  tensor::Tensor x = tensor::Tensor::Uniform({3, 4}, -1, 1, rng);
  tensor::Tensor expected = source.Forward(x);
  ASSERT_TRUE(SaveParameters(source, path).ok());

  TwoLayer target(2);  // Different init.
  EXPECT_FALSE(tensor::AllClose(target.Forward(x), expected, 1e-5f, 1e-5f));
  ASSERT_TRUE(LoadParameters(target, path).ok());
  EXPECT_TRUE(tensor::AllClose(target.Forward(x), expected, 1e-6f, 1e-6f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchIsRejected) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt2.txt";
  TwoLayer source(1);
  ASSERT_TRUE(SaveParameters(source, path).ok());
  Rng rng(3);
  GruCell other(4, 8, rng);
  Status status = LoadParameters(other, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  TwoLayer model(1);
  EXPECT_EQ(LoadParameters(model, "/nonexistent/ckpt.txt").code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, CorruptFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt3.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage contents", f);
  std::fclose(f);
  TwoLayer model(1);
  EXPECT_FALSE(LoadParameters(model, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripPreservesExactValuesApproximately) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt4.txt";
  Rng rng(5);
  Linear fc(3, 3, rng);
  std::vector<float> before = fc.Parameters()[0].data();
  ASSERT_TRUE(SaveParameters(fc, path).ok());
  Rng rng2(6);
  Linear fc2(3, 3, rng2);
  ASSERT_TRUE(LoadParameters(fc2, path).ok());
  std::vector<float> after = fc2.Parameters()[0].data();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-6f);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MetadataRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt5.txt";
  TwoLayer source(1);
  CheckpointMetadata metadata;
  metadata["model"] = "tp-gnn";
  metadata["hidden_dim"] = "32";
  metadata["note"] = "value with spaces";
  ASSERT_TRUE(SaveParameters(source, path, metadata).ok());

  CheckpointMetadata head_only;
  ASSERT_TRUE(ReadCheckpointMetadata(path, &head_only).ok());
  EXPECT_EQ(head_only, metadata);

  TwoLayer target(2);
  CheckpointMetadata loaded;
  ASSERT_TRUE(LoadParameters(target, path, &loaded).ok());
  EXPECT_EQ(loaded, metadata);
  std::remove(path.c_str());
}

// Reads a saved file and splits it into (value region, whole file). The
// value region is the parameter count line through the last parameter
// line — what the v3 crc32 trailer protects. Legacy-format tests splice it
// under v1/v2 headers.
std::string SavedValueRegion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  const size_t after_header = bytes.find('\n') + 1;
  const size_t after_meta = bytes.find('\n', after_header) + 1;
  const size_t crc = bytes.rfind("\ncrc32 ") + 1;
  EXPECT_LT(after_meta, crc) << bytes;
  return bytes.substr(after_meta, crc - after_meta);
}

TEST(CheckpointTest, EmptyMetadataWritesVersionThreeWithEmptyMetaBlock) {
  // Every new save carries the integrity trailer, so even metadata-free
  // files are version 3 with a `meta 0` block.
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt6.txt";
  TwoLayer source(1);
  ASSERT_TRUE(SaveParameters(source, path).ok());
  std::ifstream in(path);
  std::string magic, tag;
  int version = 0;
  size_t entries = 99;
  in >> magic >> version >> tag >> entries;
  EXPECT_EQ(magic, "tpgnn-params");
  EXPECT_EQ(version, 3);
  EXPECT_EQ(tag, "meta");
  EXPECT_EQ(entries, 0u);
  in.close();

  CheckpointMetadata metadata{{"stale", "x"}};
  ASSERT_TRUE(ReadCheckpointMetadata(path, &metadata).ok());
  EXPECT_TRUE(metadata.empty());  // Cleared, not appended to.
  std::remove(path.c_str());
}

TEST(CheckpointTest, VersionOneFileStillLoads) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt7.txt";
  TwoLayer source(1);
  ASSERT_TRUE(SaveParameters(source, path).ok());
  // Rewrite as a legacy v1 file: bare header, no meta block, no trailer.
  {
    const std::string body = SavedValueRegion(path);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "tpgnn-params 1\n" << body;
  }

  Rng rng(9);
  tensor::Tensor x = tensor::Tensor::Uniform({3, 4}, -1, 1, rng);
  tensor::Tensor expected = source.Forward(x);
  TwoLayer target(2);
  CheckpointMetadata metadata;
  ASSERT_TRUE(LoadParameters(target, path, &metadata).ok());
  EXPECT_TRUE(metadata.empty());
  EXPECT_TRUE(tensor::AllClose(target.Forward(x), expected, 1e-6f, 1e-6f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, VersionTwoFileStillLoads) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt7b.txt";
  TwoLayer source(1);
  ASSERT_TRUE(SaveParameters(source, path).ok());
  // Rewrite as a legacy v2 file: meta block, no crc32 trailer.
  {
    const std::string body = SavedValueRegion(path);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "tpgnn-params 2\nmeta 1\nnote legacy\n" << body;
  }

  Rng rng(9);
  tensor::Tensor x = tensor::Tensor::Uniform({3, 4}, -1, 1, rng);
  tensor::Tensor expected = source.Forward(x);
  TwoLayer target(2);
  CheckpointMetadata metadata;
  ASSERT_TRUE(LoadParameters(target, path, &metadata).ok());
  EXPECT_EQ(metadata, (CheckpointMetadata{{"note", "legacy"}}));
  EXPECT_TRUE(tensor::AllClose(target.Forward(x), expected, 1e-6f, 1e-6f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, ValueCorruptionFailsChecksum) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt7c.txt";
  TwoLayer source(1);
  ASSERT_TRUE(SaveParameters(source, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string bytes = buffer.str();
  // Perturb one digit of the last value — a change the grammar alone
  // cannot catch. The checksum must.
  const size_t pos = bytes.rfind(' ', bytes.rfind("\ncrc32 ") - 2) + 1;
  bytes[pos] = bytes[pos] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  TwoLayer victim(2);
  Status s = LoadParameters(victim, path);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("crc32 mismatch"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, InvalidMetadataKeysRejectedAtSave) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt8.txt";
  TwoLayer source(1);
  EXPECT_EQ(SaveParameters(source, path, {{"bad key", "v"}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SaveParameters(source, path, {{"", "v"}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SaveParameters(source, path, {{"k", "line\nbreak"}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, DuplicateMetadataKeyInFileRejected) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt9.txt";
  std::ofstream out(path);
  out << "tpgnn-params 2\nmeta 2\nk a\nk b\n0\n";
  out.close();
  CheckpointMetadata metadata;
  EXPECT_FALSE(ReadCheckpointMetadata(path, &metadata).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnknownVersionRejected) {
  const std::string path = ::testing::TempDir() + "/tpgnn_ckpt10.txt";
  std::ofstream out(path);
  out << "tpgnn-params 9\n0\n";
  out.close();
  TwoLayer model(1);
  Status status = LoadParameters(model, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("version"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpgnn::nn
