// Torn and bit-flipped snapshots: Load must return a typed error naming the
// damaged field — never crash, and never hand back a silently-wrong model.
//
// Two sweeps per format flavor (v3 without metadata, v3 with metadata):
//   * truncation at every byte boundary — models a crash-torn write;
//   * a flipped bit in every byte — models media corruption.
// Plus the "checkpoint.read" / "checkpoint.write" failpoints, which inject
// the same damage through the production read/write path itself.
//
// Version 3 closed the old checksum gap: the crc32 trailer covers the
// whole value region, so damage to float characters or their separators —
// previously able to parse into a silently perturbed model — now fails
// typed before any value is read, and every truncation removes or damages
// the trailer. The one remaining lenient region is the metadata *payload*
// (key/value lines), which sits outside the checksum by design and is
// validated semantically by its consumers, not the loader.

#include "nn/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

using failpoint::Kind;
using failpoint::ScopedFailpoint;

class TinyModel : public Module {
 public:
  explicit TinyModel(uint64_t seed) : rng_(seed), fc1_(3, 4, rng_),
                                      fc2_(4, 2, rng_) {
    RegisterChild("fc1", &fc1_);
    RegisterChild("fc2", &fc2_);
  }

 private:
  Rng rng_;
  Linear fc1_;
  Linear fc2_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  ASSERT_TRUE(os.good()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::string SnapshotBytes(bool with_metadata, const std::string& path) {
  TinyModel model(7);
  Status s = with_metadata
                 ? SaveParameters(model, path, {{"epoch", "3"}, {"lr", "0.1"}})
                 : SaveParameters(model, path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return ReadFile(path);
}

std::vector<float> Flatten(const Module& m) {
  std::vector<float> values;
  for (const auto& [name, p] : m.NamedParameters()) {
    const auto& data = p.data();
    values.insert(values.end(), data.begin(), data.end());
  }
  return values;
}

// Marks the bytes of a v3 snapshot whose damage must produce a typed load
// error: with the crc32 trailer that is *everything* — the header and
// meta framing are grammar-checked, and the value region plus trailer are
// checksummed. The only lenient bytes left are the metadata payload lines
// (key/value content and their newlines), which sit outside the checksum
// and are validated by their consumers, not the loader.
std::vector<bool> StructuralMask(const std::string& bytes, bool has_meta) {
  std::vector<bool> strict(bytes.size(), true);
  if (!has_meta) {
    return strict;  // `meta 0`: no payload lines, every byte is protected.
  }
  const size_t header_end = bytes.find('\n');
  const size_t meta_line_end = bytes.find('\n', header_end + 1);
  const size_t entries = std::stoul(bytes.substr(header_end + 6));
  size_t pos = meta_line_end + 1;
  for (size_t i = 0; i < entries; ++i) {
    const size_t eol = bytes.find('\n', pos);
    for (size_t j = pos; j <= eol; ++j) {
      strict[j] = false;
    }
    pos = eol + 1;
  }
  return strict;
}

class CheckpointCorruptionTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    failpoint::SetSeed(1);
    path_ = ::testing::TempDir() + "/tpgnn_corrupt_ckpt.txt";
    pristine_ = SnapshotBytes(GetParam(), path_);
    TinyModel reference(7);
    reference_values_ = Flatten(reference);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::remove(path_.c_str());
  }

  void ExpectTypedLoadError(const Status& s, const std::string& where) {
    ASSERT_FALSE(s.ok()) << "corruption " << where << " loaded successfully";
    EXPECT_FALSE(s.message().empty()) << where;
    EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument ||
                s.code() == StatusCode::kFailedPrecondition ||
                s.code() == StatusCode::kNotFound ||
                s.code() == StatusCode::kDataLoss)
        << s.ToString() << " " << where;
  }

  std::string path_;
  std::string pristine_;
  std::vector<float> reference_values_;
};

INSTANTIATE_TEST_SUITE_P(Formats, CheckpointCorruptionTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "V3Metadata" : "V3Plain";
                         });

TEST_P(CheckpointCorruptionTest, PristineSnapshotRoundtrips) {
  TinyModel victim(99);
  Status s = LoadParameters(victim, path_);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // precision(9) at save time makes the float round-trip exact.
  EXPECT_EQ(Flatten(victim), reference_values_);
}

TEST_P(CheckpointCorruptionTest, TruncationAtEveryByteFailsTyped) {
  // Every cut removes or damages the crc32 trailer (it is the last line),
  // so no torn prefix of a v3 file may ever load — including cuts inside
  // the final float that used to slip through the old checksum gap.
  for (size_t len = 0; len < pristine_.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    WriteFile(path_, pristine_.substr(0, len));
    TinyModel victim(99);
    Status s = LoadParameters(victim, path_);
    ExpectTypedLoadError(s, "at byte " + std::to_string(len));
    // A failed load leaves a usable (re-savable) module behind, not a
    // half-filled one that crashes downstream.
    EXPECT_TRUE(SaveParameters(victim, path_).ok());
  }
}

TEST_P(CheckpointCorruptionTest, BitFlipInEveryByteFailsTypedWhereStructural) {
  const std::vector<bool> strict = StructuralMask(pristine_, GetParam());
  for (size_t pos = 0; pos < pristine_.size(); ++pos) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    std::string mutated = pristine_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    WriteFile(path_, mutated);
    TinyModel victim(99);
    Status s = LoadParameters(victim, path_);
    if (strict[pos]) {
      ExpectTypedLoadError(s, "at byte " + std::to_string(pos));
    } else if (!s.ok()) {
      EXPECT_FALSE(s.message().empty());
    } else {
      // Metadata-payload flip that survived parsing: the values were still
      // checksum-verified, so the model must match the reference exactly.
      EXPECT_EQ(Flatten(victim), reference_values_);
      EXPECT_TRUE(SaveParameters(victim, path_).ok());
    }
  }
}

TEST_P(CheckpointCorruptionTest, ErrorsNameTheDamagedField) {
  struct Case {
    const char* what;
    std::string bytes;
    const char* expect_in_message;
  };
  std::vector<Case> cases;
  cases.push_back({"bad magic", "tpgnn-parXms 1\n2\n", "not a tpgnn-params"});
  cases.push_back({"bad version", "tpgnn-params 9\n", "unsupported"});
  cases.push_back({"bad count", "tpgnn-params 1\nxyz\n",
                   "malformed parameter count"});
  cases.push_back({"bad header", "tpgnn-params 1\n1\nfc1.weight x\n",
                   "malformed parameter header"});
  cases.push_back({"bad values", "tpgnn-params 1\n1\nfc1.weight 2 0.5 oops\n",
                   "malformed parameter values: fc1.weight"});
  cases.push_back({"duplicate",
                   "tpgnn-params 1\n2\na 1 0.5\na 1 0.5\n", "duplicate"});
  cases.push_back({"wrong names",
                   "tpgnn-params 1\n4\na 1 0\nb 1 0\nc 1 0\nd 1 0\n",
                   "missing parameter"});
  cases.push_back({"missing crc trailer",
                   "tpgnn-params 3\nmeta 0\n1\na 1 0.5\n",
                   "missing crc32 trailer"});
  cases.push_back({"malformed crc trailer",
                   "tpgnn-params 3\nmeta 0\n1\na 1 0.5\ncrc32 xyz\n",
                   "malformed crc32 trailer"});
  cases.push_back({"crc mismatch",
                   "tpgnn-params 3\nmeta 0\n1\na 1 0.5\ncrc32 00000000\n",
                   "crc32 mismatch"});
  if (GetParam()) {
    cases.push_back({"bad meta header", "tpgnn-params 2\nmeXa 2\n",
                     "malformed metadata header"});
    cases.push_back({"torn meta block", "tpgnn-params 2\nmeta 2\nepoch 3\n",
                     "truncated metadata block"});
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.what);
    WriteFile(path_, c.bytes);
    TinyModel victim(99);
    Status s = LoadParameters(victim, path_);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find(c.expect_in_message), std::string::npos)
        << s.ToString();
  }
}

TEST_P(CheckpointCorruptionTest, InjectedReadCorruptionFailsTypedOrLoadsClean) {
  // The corrupt_byte failpoint flips one seed-determined bit inside the
  // production read path — sweeping seeds covers many byte positions.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    failpoint::SetSeed(seed);
    TinyModel victim(99);
    Status s;
    {
      ScopedFailpoint corrupt("checkpoint.read", 1.0, Kind::kCorruptByte);
      s = LoadParameters(victim, path_);
      EXPECT_EQ(corrupt.fires(), 1u);
    }
    if (s.ok()) {
      // The flip landed outside the checksummed value region (metadata
      // payload, or a version-byte downgrade to a trailer-less format):
      // the values that loaded must still match the reference exactly.
      EXPECT_EQ(Flatten(victim), reference_values_);
      EXPECT_TRUE(SaveParameters(victim, path_).ok());
      pristine_ = SnapshotBytes(GetParam(), path_);  // Restore for next seed.
    } else {
      EXPECT_FALSE(s.message().empty()) << s.ToString();
    }
  }
}

TEST_P(CheckpointCorruptionTest, InjectedTornReadFailsTyped) {
  for (uint64_t budget : {0ull, 1ull, 10ull, 40ull}) {
    SCOPED_TRACE("torn read of " + std::to_string(budget) + " bytes");
    ScopedFailpoint torn("checkpoint.read", 1.0, Kind::kShortIo, budget);
    TinyModel victim(99);
    Status s = LoadParameters(victim, path_);
    ASSERT_FALSE(s.ok());
    EXPECT_FALSE(s.message().empty());
  }
}

TEST_P(CheckpointCorruptionTest, TornWriteReportsErrorAndNeverLoads) {
  const std::string torn_path =
      ::testing::TempDir() + "/tpgnn_torn_ckpt.txt";
  for (uint64_t budget : {0ull, 5ull, 25ull, 60ull}) {
    SCOPED_TRACE("torn write of " + std::to_string(budget) + " bytes");
    ScopedFailpoint torn("checkpoint.write", 1.0, Kind::kShortIo, budget);
    TinyModel model(7);
    // A crash-torn write must surface as an error to the saver...
    Status s = GetParam()
                   ? SaveParameters(model, torn_path, {{"epoch", "3"}})
                   : SaveParameters(model, torn_path);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("checkpoint.write"), std::string::npos)
        << s.ToString();
    // ...and the prefix it left on disk must never load as a full model.
    TinyModel victim(99);
    EXPECT_FALSE(LoadParameters(victim, torn_path).ok());
  }
  std::remove(torn_path.c_str());
}

TEST_P(CheckpointCorruptionTest, InjectedWriteErrorLeavesNoFileBehind) {
  const std::string fail_path =
      ::testing::TempDir() + "/tpgnn_failed_ckpt.txt";
  ScopedFailpoint fail("checkpoint.write", 1.0, Kind::kReturnError);
  TinyModel model(7);
  Status s = SaveParameters(model, fail_path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checkpoint.write"), std::string::npos);
  std::ifstream probe(fail_path);
  EXPECT_FALSE(probe.good()) << "failed save created " << fail_path;
}

}  // namespace
}  // namespace tpgnn::nn
