#include "nn/attention.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(AttentionTest, IdenticalKeysGiveUniformWeights) {
  Tensor q = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  Tensor k = Tensor::FromVector({3, 2}, {0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f});
  Tensor v = Tensor::FromVector({3, 1}, {1.0f, 2.0f, 3.0f});
  Tensor out = ScaledDotProductAttention(q, k, v);
  EXPECT_NEAR(out.at({0, 0}), 2.0f, 1e-5f);  // Uniform average of values.
}

TEST(AttentionTest, StrongMatchDominates) {
  Tensor q = Tensor::FromVector({1, 2}, {10.0f, 0.0f});
  Tensor k = Tensor::FromVector({2, 2}, {10.0f, 0.0f, -10.0f, 0.0f});
  Tensor v = Tensor::FromVector({2, 1}, {1.0f, -1.0f});
  Tensor out = ScaledDotProductAttention(q, k, v);
  EXPECT_GT(out.at({0, 0}), 0.99f);
}

TEST(AttentionTest, MaskExcludesKeys) {
  Tensor q = Tensor::FromVector({1, 2}, {1.0f, 1.0f});
  Tensor k = Tensor::FromVector({2, 2}, {1.0f, 1.0f, 1.0f, 1.0f});
  Tensor v = Tensor::FromVector({2, 1}, {5.0f, -7.0f});
  Tensor mask = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  Tensor out = ScaledDotProductAttention(q, k, v, &mask);
  EXPECT_NEAR(out.at({0, 0}), 5.0f, 1e-4f);
}

TEST(AttentionTest, OutputShapeMultiQuery) {
  Rng rng(1);
  Tensor q = Tensor::Uniform({4, 3}, -1, 1, rng);
  Tensor k = Tensor::Uniform({6, 3}, -1, 1, rng);
  Tensor v = Tensor::Uniform({6, 5}, -1, 1, rng);
  EXPECT_EQ(ScaledDotProductAttention(q, k, v).shape(), (Shape{4, 5}));
}

TEST(AttentionTest, GradCheckThroughAttention) {
  Rng rng(2);
  Tensor q = Tensor::Uniform({2, 3}, -1, 1, rng, true);
  Tensor k = Tensor::Uniform({3, 3}, -1, 1, rng, true);
  Tensor v = Tensor::Uniform({3, 2}, -1, 1, rng, true);
  auto r = testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor out = ScaledDotProductAttention(q, k, v);
        return tensor::Sum(tensor::Mul(out, out));
      },
      {q, k, v});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(MultiheadAttentionTest, ShapeAndHeadSplit) {
  Rng rng(3);
  MultiheadAttention mha(8, 2, rng);
  EXPECT_EQ(mha.num_heads(), 2);
  Tensor q = Tensor::Uniform({3, 8}, -1, 1, rng);
  Tensor kv = Tensor::Uniform({5, 8}, -1, 1, rng);
  EXPECT_EQ(mha.Forward(q, kv, kv).shape(), (Shape{3, 8}));
}

TEST(MultiheadAttentionTest, MaskChangesOutput) {
  Rng rng(4);
  MultiheadAttention mha(4, 1, rng);
  Tensor q = Tensor::Uniform({1, 4}, -1, 1, rng);
  Tensor kv = Tensor::Uniform({3, 4}, -1, 1, rng);
  Tensor mask = Tensor::FromVector({1, 3}, {1.0f, 0.0f, 0.0f});
  Tensor full = mha.Forward(q, kv, kv);
  Tensor masked = mha.Forward(q, kv, kv, &mask);
  EXPECT_FALSE(tensor::AllClose(full, masked, 1e-5f, 1e-5f));
}

TEST(MultiheadAttentionTest, GradCheckParameters) {
  Rng rng(5);
  MultiheadAttention mha(4, 2, rng);
  Tensor q = Tensor::Uniform({2, 4}, -1, 1, rng);
  Tensor kv = Tensor::Uniform({3, 4}, -1, 1, rng);
  auto r = testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor out = mha.Forward(q, kv, kv);
        return tensor::Sum(tensor::Mul(out, out));
      },
      mha.Parameters(), /*eps=*/1e-2f, /*tol=*/3e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace tpgnn::nn
