#include <cmath>

#include <gtest/gtest.h>

#include "nn/gru_cell.h"
#include "nn/lstm_cell.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(GruCellTest, OutputShape) {
  Rng rng(1);
  GruCell cell(3, 5, rng);
  Tensor x = Tensor::Uniform({2, 3}, -1, 1, rng);
  Tensor h = Tensor::Zeros({2, 5});
  EXPECT_EQ(cell.Forward(x, h).shape(), (Shape{2, 5}));
}

TEST(GruCellTest, OutputBounded) {
  Rng rng(2);
  GruCell cell(3, 4, rng);
  Tensor x = Tensor::Uniform({1, 3}, -10, 10, rng);
  Tensor h = Tensor::Uniform({1, 4}, -1, 1, rng);
  for (int step = 0; step < 50; ++step) {
    h = cell.Forward(x, h);
  }
  // Convex combination of tanh candidates and bounded start stays bounded.
  for (float v : h.data()) {
    EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
  }
}

TEST(GruCellTest, DependsOnInput) {
  Rng rng(3);
  GruCell cell(2, 3, rng);
  Tensor h = Tensor::Zeros({1, 3});
  Tensor x1 = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  Tensor x2 = Tensor::FromVector({1, 2}, {0.0f, 1.0f});
  EXPECT_FALSE(
      tensor::AllClose(cell.Forward(x1, h), cell.Forward(x2, h), 1e-5f, 1e-5f));
}

TEST(GruCellTest, DependsOnHiddenState) {
  Rng rng(4);
  GruCell cell(2, 3, rng);
  Tensor x = Tensor::FromVector({1, 2}, {0.5f, -0.5f});
  Tensor h1 = Tensor::Zeros({1, 3});
  Tensor h2 = Tensor::Full({1, 3}, 0.5f);
  EXPECT_FALSE(
      tensor::AllClose(cell.Forward(x, h1), cell.Forward(x, h2), 1e-5f, 1e-5f));
}

TEST(GruCellTest, ParameterCount) {
  Rng rng(5);
  GruCell cell(4, 8, rng);
  // 3 gates x (4x8 + 8x8 + 8).
  EXPECT_EQ(cell.ParameterCount(), 3 * (32 + 64 + 8));
}

TEST(GruCellTest, GradCheckAllParameters) {
  Rng rng(6);
  GruCell cell(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 2}, -1, 1, rng, true);
  Tensor h = Tensor::Uniform({1, 3}, -1, 1, rng, true);
  std::vector<Tensor> params = cell.Parameters();
  params.push_back(x);
  params.push_back(h);
  auto r = testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor out = cell.Forward(x, h);
        return tensor::Sum(tensor::Mul(out, out));
      },
      params);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GruCellTest, GradThroughUnrolledSequence) {
  Rng rng(7);
  GruCell cell(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 2}, -1, 1, rng, true);
  auto r = testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        Tensor h = Tensor::Zeros({1, 3});
        for (int step = 0; step < 4; ++step) {
          h = cell.Forward(x, h);
        }
        return tensor::Sum(tensor::Mul(h, h));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(LstmCellTest, OutputShapes) {
  Rng rng(8);
  LstmCell cell(3, 5, rng);
  auto s0 = cell.InitialState(2);
  EXPECT_EQ(s0.h.shape(), (Shape{2, 5}));
  Tensor x = Tensor::Uniform({2, 3}, -1, 1, rng);
  auto s1 = cell.Forward(x, s0);
  EXPECT_EQ(s1.h.shape(), (Shape{2, 5}));
  EXPECT_EQ(s1.c.shape(), (Shape{2, 5}));
}

TEST(LstmCellTest, HiddenBoundedByTanh) {
  Rng rng(9);
  LstmCell cell(2, 4, rng);
  auto s = cell.InitialState(1);
  Tensor x = Tensor::Uniform({1, 2}, -5, 5, rng);
  for (int step = 0; step < 20; ++step) {
    s = cell.Forward(x, s);
  }
  for (float v : s.h.data()) {
    EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
  }
}

TEST(LstmCellTest, GradCheck) {
  Rng rng(10);
  LstmCell cell(2, 3, rng);
  Tensor x = Tensor::Uniform({1, 2}, -1, 1, rng, true);
  std::vector<Tensor> params = cell.Parameters();
  params.push_back(x);
  auto r = testing::GradCheck(
      [&](const std::vector<Tensor>&) {
        auto s = cell.InitialState(1);
        s = cell.Forward(x, s);
        s = cell.Forward(x, s);
        return tensor::Sum(tensor::Mul(s.h, s.h));
      },
      params);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(LstmCellTest, StatePersistsInformation) {
  Rng rng(11);
  LstmCell cell(2, 3, rng);
  Tensor spike = Tensor::FromVector({1, 2}, {5.0f, -5.0f});
  Tensor silence = Tensor::Zeros({1, 2});
  auto with_spike = cell.Forward(spike, cell.InitialState(1));
  auto without = cell.Forward(silence, cell.InitialState(1));
  for (int step = 0; step < 3; ++step) {
    with_spike = cell.Forward(silence, with_spike);
    without = cell.Forward(silence, without);
  }
  EXPECT_FALSE(tensor::AllClose(with_spike.h, without.h, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace tpgnn::nn
