#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

using tensor::Tensor;

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromVector({1}, {5.0f}, true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = tensor::Mul(x, x);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-4f);
}

TEST(SgdTest, StepIsLinearInGradient) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Sgd opt({x}, 0.5f);
  opt.ZeroGrad();
  tensor::Scale(x, 3.0f).Backward();  // grad = 3.
  opt.Step();
  EXPECT_NEAR(x.item(), 1.0f - 0.5f * 3.0f, 1e-6f);
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromVector({2}, {4.0f, -3.0f}, true);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor loss = tensor::Sum(tensor::Mul(x, x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(x.data()[1], 0.0f, 1e-2f);
}

TEST(AdamTest, FitsLinearRegression) {
  Rng rng(1);
  Linear fc(2, 1, rng);
  // Ground truth: y = 2*x0 - x1 + 0.5.
  Tensor xs = Tensor::Uniform({32, 2}, -1, 1, rng);
  std::vector<float> ys(32);
  for (int i = 0; i < 32; ++i) {
    ys[static_cast<size_t>(i)] =
        2.0f * xs.at({i, 0}) - xs.at({i, 1}) + 0.5f;
  }
  Tensor target = Tensor::FromVector({32, 1}, ys);
  Adam opt(fc.Parameters(), 0.05f);
  float final_loss = 0.0f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    Tensor pred = fc.Forward(xs);
    Tensor diff = tensor::Sub(pred, target);
    Tensor loss = tensor::Mean(tensor::Mul(diff, diff));
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Adam opt({x}, 0.01f);
  opt.ZeroGrad();
  tensor::Scale(x, 5.0f).Backward();
  opt.Step();
  EXPECT_NEAR(x.item(), 1.0f - 0.01f, 1e-4f);
}

TEST(OptimizerTest, ZeroGradResetsAccumulation) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Sgd opt({x}, 1.0f);
  tensor::Scale(x, 2.0f).Backward();
  tensor::Scale(x, 2.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(OptimizerTest, MultipleParameterGroups) {
  Tensor a = Tensor::FromVector({1}, {2.0f}, true);
  Tensor b = Tensor::FromVector({1}, {-2.0f}, true);
  Sgd opt({a, b}, 0.5f);
  opt.ZeroGrad();
  tensor::Sum(tensor::Add(tensor::Mul(a, a), tensor::Mul(b, b))).Backward();
  opt.Step();
  EXPECT_NEAR(a.item(), 0.0f, 1e-6f);  // 2 - 0.5*4
  EXPECT_NEAR(b.item(), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace tpgnn::nn
