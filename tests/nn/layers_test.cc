#include <cmath>

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/time_encoding.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor w = XavierUniform(100, 50, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LT(v, bound);
  }
}

TEST(InitTest, ScaledUniformBounds) {
  Rng rng(2);
  Tensor w = ScaledUniform({64, 64}, 64, rng);
  for (float v : w.data()) {
    EXPECT_LE(std::abs(v), 0.125f);
  }
}

TEST(LinearTest, OutputShape) {
  Rng rng(3);
  Linear fc(4, 7, rng);
  Tensor x = Tensor::Uniform({5, 4}, -1, 1, rng);
  EXPECT_EQ(fc.Forward(x).shape(), (Shape{5, 7}));
}

TEST(LinearTest, NoBiasMapsZeroToZero) {
  Rng rng(4);
  Linear fc(3, 2, rng, /*bias=*/false);
  Tensor y = fc.Forward(Tensor::Zeros({1, 3}));
  EXPECT_EQ(y.data(), (std::vector<float>{0, 0}));
}

TEST(LinearTest, MatchesManualAffine) {
  Rng rng(5);
  Linear fc(2, 2, rng);
  Tensor x = Tensor::FromVector({1, 2}, {1.0f, -1.0f});
  Tensor y = fc.Forward(x);
  auto named = fc.NamedParameters();
  const Tensor& w = named[0].second;
  const Tensor& b = named[1].second;
  for (int64_t j = 0; j < 2; ++j) {
    float expect = w.at({0, j}) * 1.0f + w.at({1, j}) * -1.0f + b.at({j});
    EXPECT_NEAR(y.at({0, j}), expect, 1e-6f);
  }
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(6);
  Linear fc(3, 2, rng);
  Tensor x = Tensor::Uniform({2, 3}, -1, 1, rng, /*requires_grad=*/true);
  std::vector<Tensor> params = fc.Parameters();
  params.push_back(x);
  auto r = testing::GradCheck(
      [&fc, &x](const std::vector<Tensor>&) {
        Tensor y = fc.Forward(x);
        return tensor::Sum(tensor::Mul(y, y));
      },
      params);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(EmbeddingTest, LookupShapeAndAliasing) {
  Rng rng(7);
  Embedding emb(10, 4, rng);
  Tensor e = emb.Forward({0, 3, 3});
  EXPECT_EQ(e.shape(), (Shape{3, 4}));
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(e.at({1, c}), e.at({2, c}));
  }
}

TEST(EmbeddingTest, GradientFlowsToRows) {
  Rng rng(8);
  Embedding emb(5, 3, rng);
  Tensor e = emb.Forward({1, 1});
  tensor::Sum(e).Backward();
  Tensor w = emb.Parameters()[0];
  // Row 1 selected twice -> grad 2; other rows untouched.
  EXPECT_EQ(w.grad()[1 * 3], 2.0f);
  EXPECT_EQ(w.grad()[0], 0.0f);
}

TEST(Time2VecTest, OutputDimAndLinearFirstCoordinate) {
  Rng rng(9);
  Time2Vec t2v(6, rng);
  Tensor a = t2v.Forward(1.0f);
  Tensor b = t2v.Forward(2.0f);
  Tensor c = t2v.Forward(3.0f);
  EXPECT_EQ(a.shape(), (Shape{6}));
  // First coordinate is affine in t: equal increments.
  EXPECT_NEAR(b.at({0}) - a.at({0}), c.at({0}) - b.at({0}), 1e-5f);
}

TEST(Time2VecTest, PeriodicCoordinatesBounded) {
  Rng rng(10);
  Time2Vec t2v(8, rng);
  for (float t : {0.0f, 1.5f, 100.0f, 1e4f}) {
    Tensor y = t2v.Forward(t);
    for (int64_t i = 1; i < 8; ++i) {
      EXPECT_LE(std::abs(y.at({i})), 1.0f + 1e-6f);
    }
  }
}

TEST(Time2VecTest, BatchMatchesSingle) {
  Rng rng(11);
  Time2Vec t2v(4, rng);
  Tensor batch = t2v.Forward(std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(batch.shape(), (Shape{2, 4}));
  Tensor single = t2v.Forward(2.0f);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(batch.at({1, c}), single.at({c}));
  }
}

TEST(Time2VecTest, DistinguishesTimestamps) {
  Rng rng(12);
  Time2Vec t2v(6, rng);
  Tensor a = t2v.Forward(1.0f);
  Tensor b = t2v.Forward(5.0f);
  EXPECT_FALSE(tensor::AllClose(a, b, 1e-4f, 1e-4f));
}

TEST(Time2VecTest, GradCheck) {
  Rng rng(13);
  Time2Vec t2v(4, rng);
  auto r = testing::GradCheck(
      [&t2v](const std::vector<Tensor>&) {
        Tensor y = t2v.Forward(1.7f);
        return tensor::Sum(tensor::Mul(y, y));
      },
      t2v.Parameters());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(BochnerTimeEncodingTest, NormAndShape) {
  Rng rng(14);
  BochnerTimeEncoding enc(16, rng);
  Tensor y = enc.Forward(3.0f);
  EXPECT_EQ(y.shape(), (Shape{16}));
  // Each coordinate is cos(.)/sqrt(d) -> |y_i| <= 1/4.
  for (float v : y.data()) {
    EXPECT_LE(std::abs(v), 0.25f + 1e-6f);
  }
}

TEST(BochnerTimeEncodingTest, GradCheck) {
  Rng rng(15);
  BochnerTimeEncoding enc(4, rng);
  auto r = testing::GradCheck(
      [&enc](const std::vector<Tensor>&) {
        Tensor y = enc.Forward(0.9f);
        return tensor::Sum(tensor::Mul(y, y));
      },
      enc.Parameters());
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace tpgnn::nn
