#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tpgnn::nn {
namespace {

class Composite : public Module {
 public:
  explicit Composite(Rng& rng) : inner_(2, 3, rng) {
    own_ = RegisterParameter("own", tensor::Tensor::Zeros({4}));
    RegisterChild("inner", &inner_);
  }

  Linear inner_;
  tensor::Tensor own_;
};

TEST(ModuleTest, ParametersIncludeChildren) {
  Rng rng(1);
  Composite m(rng);
  // own (4) + inner weight (2x3) + inner bias (3).
  EXPECT_EQ(m.Parameters().size(), 3u);
  EXPECT_EQ(m.ParameterCount(), 4 + 6 + 3);
}

TEST(ModuleTest, NamedParametersArePrefixed) {
  Rng rng(2);
  Composite m(rng);
  auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "own");
  EXPECT_EQ(named[1].first, "inner/weight");
  EXPECT_EQ(named[2].first, "inner/bias");
}

TEST(ModuleTest, RegisteredParametersRequireGrad) {
  Rng rng(3);
  Composite m(rng);
  for (const auto& p : m.Parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST(ModuleTest, ParametersAliasModuleStorage) {
  Rng rng(4);
  Composite m(rng);
  auto params = m.Parameters();
  params[0].MutableData()[0] = 42.0f;
  EXPECT_EQ(m.own_.data()[0], 42.0f);
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  Rng rng(5);
  Composite m(rng);
  tensor::Tensor loss = tensor::Sum(m.own_);
  loss.Backward();
  EXPECT_EQ(m.own_.grad()[0], 1.0f);
  m.ZeroGrad();
  EXPECT_EQ(m.own_.grad()[0], 0.0f);
}

}  // namespace
}  // namespace tpgnn::nn
